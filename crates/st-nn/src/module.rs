//! The [`Module`] trait: anything that owns trainable parameters.
//!
//! Modules expose their parameters as a flat, stable-ordered list so that
//! optimizers, gradient clipping and state serialization can treat every
//! model uniformly.

use st_tensor::{Array, Param};

use crate::serialize::CheckpointError;

/// A component owning trainable parameters.
pub trait Module {
    /// All trainable parameters, in a deterministic order.
    fn params(&self) -> Vec<&Param>;

    /// Total number of trainable scalars.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Parameters grouped into *logical tensors* for grouped gradient-norm
    /// clipping ([`st_tensor::optim::clip_grad_norm_grouped`]): each inner
    /// list is one logical tensor, in row order when its members are the
    /// consecutive blocks of a row-sharded table. Flattened, the groups
    /// must equal [`Module::params`] exactly (same order). The default —
    /// one singleton group per parameter — reproduces ungrouped clipping
    /// bit for bit; only blocked modules (and containers holding them)
    /// override it.
    fn param_groups(&self) -> Vec<Vec<&Param>> {
        self.params().into_iter().map(|p| vec![p]).collect()
    }

    /// Export parameter values as `(name, value)` pairs in [`Module::params`]
    /// order.
    fn state(&self) -> Vec<(String, Array)> {
        self.params()
            .iter()
            .map(|p| (p.name().to_string(), p.value().clone()))
            .collect()
    }

    /// Load parameter values produced by [`Module::state`]. Any count, name,
    /// or shape mismatch is an error — state files are not forward
    /// compatible. On error the module may be partially updated; restore
    /// into a scratch instance when all-or-nothing semantics are needed.
    fn load_state(&self, state: &[(String, Array)]) -> Result<(), CheckpointError> {
        let params = self.params();
        load_entries("param", &params, state, |p, value| *p.value_mut() = value)
    }

    /// Non-trainable state tensors (e.g. batch-norm running statistics) as
    /// `(name, value)` pairs in a deterministic order. Most modules have
    /// none.
    fn buffers(&self) -> Vec<(String, Array)> {
        Vec::new()
    }

    /// Load buffer values produced by [`Module::buffers`], with the same
    /// strictness as [`Module::load_state`].
    fn load_buffers(&self, buffers: &[(String, Array)]) -> Result<(), CheckpointError> {
        if buffers.is_empty() && self.buffers().is_empty() {
            return Ok(());
        }
        Err(CheckpointError::Count {
            what: "buffer",
            expected: self.buffers().len(),
            found: buffers.len(),
        })
    }

    /// Zero every parameter's gradient accumulator.
    fn zero_grads(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

/// Shared strict-matching loop for [`Module::load_state`] /
/// [`Module::load_buffers`] implementations: checks count, then per-entry
/// name and shape, applying `store` on each match.
pub(crate) fn load_entries<T, F>(
    what: &'static str,
    targets: &[T],
    entries: &[(String, Array)],
    mut store: F,
) -> Result<(), CheckpointError>
where
    T: EntryTarget,
    F: FnMut(&T, Array),
{
    if targets.len() != entries.len() {
        return Err(CheckpointError::Count {
            what,
            expected: targets.len(),
            found: entries.len(),
        });
    }
    for (t, (name, value)) in targets.iter().zip(entries) {
        if t.entry_name() != *name {
            return Err(CheckpointError::Name {
                expected: t.entry_name().to_string(),
                found: name.clone(),
            });
        }
        if t.entry_shape() != value.shape() {
            return Err(CheckpointError::Shape {
                name: name.clone(),
                expected: t.entry_shape(),
                found: value.shape().to_vec(),
            });
        }
        store(t, value.clone());
    }
    Ok(())
}

/// A named, shaped slot that [`load_entries`] can validate against.
pub(crate) trait EntryTarget {
    fn entry_name(&self) -> String;
    fn entry_shape(&self) -> Vec<usize>;
}

impl EntryTarget for &Param {
    fn entry_name(&self) -> String {
        self.name().to_string()
    }
    fn entry_shape(&self) -> Vec<usize> {
        self.value().shape().to_vec()
    }
}

impl EntryTarget for (String, Array) {
    fn entry_name(&self) -> String {
        self.0.clone()
    }
    fn entry_shape(&self) -> Vec<usize> {
        self.1.shape().to_vec()
    }
}

/// Activation functions selectable in MLPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Leaky ReLU with slope 0.01.
    LeakyRelu,
    /// No activation.
    Identity,
}

impl Activation {
    /// Apply this activation to a tape variable.
    pub fn apply<'t>(self, x: st_tensor::Var<'t>) -> st_tensor::Var<'t> {
        use st_tensor::ops;
        match self {
            Activation::Relu => ops::relu(x),
            Activation::Tanh => ops::tanh(x),
            Activation::Sigmoid => ops::sigmoid(x),
            Activation::LeakyRelu => ops::leaky_relu(x, 0.01),
            Activation::Identity => x,
        }
    }

    /// Apply this activation in place on a plain array — the tape-free
    /// counterpart of [`Activation::apply`], same f32 arithmetic.
    pub fn apply_mut(self, a: &mut Array) {
        use st_tensor::infer;
        match self {
            Activation::Relu => infer::relu_mut(a),
            Activation::Tanh => infer::tanh_mut(a),
            Activation::Sigmoid => infer::sigmoid_mut(a),
            Activation::LeakyRelu => infer::leaky_relu_mut(a, 0.01),
            Activation::Identity => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::{Array, Param, Tape};

    struct Toy {
        a: Param,
        b: Param,
    }

    impl Module for Toy {
        fn params(&self) -> Vec<&Param> {
            vec![&self.a, &self.b]
        }
    }

    fn toy() -> Toy {
        Toy {
            a: Param::new("a", Array::vector(vec![1.0, 2.0])),
            b: Param::new("b", Array::vector(vec![3.0])),
        }
    }

    #[test]
    fn num_params_counts_scalars() {
        assert_eq!(toy().num_params(), 3);
    }

    #[test]
    fn state_roundtrip() {
        let m1 = toy();
        *m1.a.value_mut() = Array::vector(vec![9.0, 8.0]);
        let m2 = toy();
        m2.load_state(&m1.state()).unwrap();
        assert_eq!(m2.a.value().data(), &[9.0, 8.0]);
        assert_eq!(m2.b.value().data(), &[3.0]);
    }

    #[test]
    fn load_state_rejects_bad_shape() {
        let m = toy();
        let err = m
            .load_state(&[
                ("a".into(), Array::vector(vec![1.0])),
                ("b".into(), Array::vector(vec![1.0])),
            ])
            .unwrap_err();
        match err {
            crate::serialize::CheckpointError::Shape { name, .. } => assert_eq!(name, "a"),
            other => panic!("expected shape error, got {other:?}"),
        }
    }

    #[test]
    fn load_state_rejects_bad_count_and_name() {
        let m = toy();
        match m.load_state(&[("a".into(), Array::vector(vec![1.0, 2.0]))]) {
            Err(crate::serialize::CheckpointError::Count {
                expected: 2,
                found: 1,
                ..
            }) => {}
            other => panic!("expected count error, got {other:?}"),
        }
        match m.load_state(&[
            ("a".into(), Array::vector(vec![1.0, 2.0])),
            ("wrong".into(), Array::vector(vec![1.0])),
        ]) {
            Err(crate::serialize::CheckpointError::Name { expected, found }) => {
                assert_eq!(expected, "b");
                assert_eq!(found, "wrong");
            }
            other => panic!("expected name error, got {other:?}"),
        }
    }

    #[test]
    fn default_buffers_are_empty_and_strict() {
        let m = toy();
        assert!(m.buffers().is_empty());
        m.load_buffers(&[]).unwrap();
        assert!(m
            .load_buffers(&[("x".into(), Array::vector(vec![1.0]))])
            .is_err());
    }

    #[test]
    fn zero_grads_clears_all() {
        let m = toy();
        m.a.accumulate_grad(&Array::vector(vec![1.0, 1.0]));
        m.zero_grads();
        assert_eq!(m.a.grad().sum(), 0.0);
    }

    #[test]
    fn activations_apply() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![-1.0, 2.0]));
        assert_eq!(Activation::Relu.apply(x).value().data(), &[0.0, 2.0]);
        assert_eq!(Activation::Identity.apply(x).value().data(), &[-1.0, 2.0]);
        let s = Activation::Sigmoid.apply(x).value();
        assert!(s.data()[0] < 0.5 && s.data()[1] > 0.5);
    }
}
