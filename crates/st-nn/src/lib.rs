//! `st-nn`: neural network layers on top of the `st-tensor` autodiff engine.
//!
//! Provides every layer DeepST and its baselines need: [`linear::Linear`] /
//! [`linear::Mlp`], stacked [`gru::Gru`], [`embedding::Embedding`] lookup
//! tables, and the traffic CNN stack ([`conv::ConvBlock`],
//! [`conv::BatchNorm2d`], [`conv::TrafficCnn`]). All layers implement
//! [`module::Module`] for uniform parameter handling. The [`analyze`] module
//! runs the `st-tensor` graph analyzer over a recorded forward pass plus a
//! module's full parameter list (catching never-bound parameters).

/// Module-level static analysis of recorded forward passes.
pub mod analyze;
/// Convolution blocks and batch normalization for the traffic CNN.
pub mod conv;
/// Road-segment embedding lookup tables.
pub mod embedding;
/// GRU cells and stacked recurrent layers.
pub mod gru;
/// Linear layers and multi-layer perceptrons.
pub mod linear;
/// The [`module::Module`] trait: uniform parameter/buffer handling.
pub mod module;
/// Checkpoint serialization (v1 text and v2 bit-exact formats).
pub mod serialize;

pub use analyze::{analyze_module_graph, analyze_module_graph_with};
pub use conv::{BatchNorm2d, BnBatchStats, ConvBlock, TrafficCnn};
pub use embedding::Embedding;
pub use gru::{Gru, GruCell, PackedGru, PackedGruCell};
pub use linear::{Linear, Mlp, PackedMlp};
pub use module::{Activation, Module};
pub use serialize::{
    checkpoint, checkpoint_v2, load, load_v2, restore, restore_v2, save, save_v2, Checkpoint,
    CheckpointError, CheckpointV2, OptStateRecord, TensorRecord, TrainStateRecord,
};
