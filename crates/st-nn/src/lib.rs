//! `st-nn`: neural network layers on top of the `st-tensor` autodiff engine.
//!
//! Provides every layer DeepST and its baselines need: [`linear::Linear`] /
//! [`linear::Mlp`], stacked [`gru::Gru`], [`embedding::Embedding`] lookup
//! tables, and the traffic CNN stack ([`conv::ConvBlock`],
//! [`conv::BatchNorm2d`], [`conv::TrafficCnn`]). All layers implement
//! [`module::Module`] for uniform parameter handling.

pub mod conv;
pub mod embedding;
pub mod gru;
pub mod linear;
pub mod module;
pub mod serialize;

pub use conv::{BatchNorm2d, BnBatchStats, ConvBlock, TrafficCnn};
pub use embedding::Embedding;
pub use gru::{Gru, GruCell};
pub use linear::{Linear, Mlp};
pub use module::{Activation, Module};
pub use serialize::{
    checkpoint, checkpoint_v2, load, load_v2, restore, restore_v2, save, save_v2, Checkpoint,
    CheckpointError, CheckpointV2, OptStateRecord, TensorRecord, TrainStateRecord,
};
