//! Gated Recurrent Units (Cho et al. / Chung et al. [38] in the paper).
//!
//! DeepST squeezes the past traveled route `r_{1:i}` into its representation
//! with a (stacked) GRU (§IV-B):
//!
//! ```text
//! h_i = 0                    (i = 1)
//! h_i = GRU(h_{i-1}, r_{i-1}) (i ≥ 2)
//! ```

use rand::rngs::StdRng;

use st_tensor::{infer, init, ops, Array, Binder, Param, ScratchArena, Var};

use crate::module::Module;

/// A single GRU cell.
///
/// Gate equations (standard formulation):
/// ```text
/// r  = σ(x·W_r + h·U_r + b_r)
/// z  = σ(x·W_z + h·U_z + b_z)
/// n  = tanh(x·W_n + r ⊙ (h·U_n) + b_n)
/// h' = (1 − z) ⊙ n + z ⊙ h
/// ```
pub struct GruCell {
    name: String,
    /// Input-to-hidden weights, `[in, 3·hidden]` laid out `[r | z | n]`.
    wx: Param,
    /// Hidden-to-hidden weights, `[hidden, 3·hidden]`.
    wh: Param,
    /// Gate biases, `[3·hidden]`.
    b: Param,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Xavier-initialized GRU cell.
    pub fn new(name: &str, in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        assert!(
            in_dim > 0 && hidden > 0,
            "GruCell '{name}': dims must be positive, got in_dim={in_dim}, hidden={hidden}"
        );
        Self {
            name: name.to_string(),
            wx: Param::new(format!("{name}.wx"), init::xavier(in_dim, 3 * hidden, rng)),
            wh: Param::new(format!("{name}.wh"), init::xavier(hidden, 3 * hidden, rng)),
            b: Param::new(format!("{name}.b"), Array::zeros(&[3 * hidden])),
            in_dim,
            hidden,
        }
    }

    /// Hidden state size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input size.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// One step: `x [n, in]`, `h [n, hidden]` → new hidden `[n, hidden]`.
    ///
    /// Rejects mis-shaped inputs with a diagnostic naming this cell, instead
    /// of a shape panic deep inside the GEMM kernel.
    pub fn step<'t, 'p>(&'p self, bind: &Binder<'t, 'p>, x: Var<'t>, h: Var<'t>) -> Var<'t> {
        let xs = x.value().shape().to_vec();
        let hs = h.value().shape().to_vec();
        assert!(
            xs.len() == 2 && xs[1] == self.in_dim,
            "GruCell '{}': input shape {:?} incompatible with expected [n, {}]",
            self.name,
            xs,
            self.in_dim
        );
        assert!(
            hs.len() == 2 && hs[1] == self.hidden && hs[0] == xs[0],
            "GruCell '{}': state shape {:?} incompatible with expected [{}, {}]",
            self.name,
            hs,
            xs[0],
            self.hidden
        );
        let hsz = self.hidden;
        let wx = bind.var(&self.wx);
        let wh = bind.var(&self.wh);
        let b = bind.var(&self.b);
        let gx = ops::affine(x, wx, b); // [n, 3h]
        let gh = ops::matmul(h, wh); // [n, 3h]
        let r = ops::sigmoid(ops::add(
            ops::slice_cols(gx, 0, hsz),
            ops::slice_cols(gh, 0, hsz),
        ));
        let z = ops::sigmoid(ops::add(
            ops::slice_cols(gx, hsz, 2 * hsz),
            ops::slice_cols(gh, hsz, 2 * hsz),
        ));
        let n = ops::tanh(ops::add(
            ops::slice_cols(gx, 2 * hsz, 3 * hsz),
            ops::mul(r, ops::slice_cols(gh, 2 * hsz, 3 * hsz)),
        ));
        // h' = (1 − z)⊙n + z⊙h = n − z⊙n + z⊙h
        ops::add(ops::sub(n, ops::mul(z, n)), ops::mul(z, h))
    }

    /// Tape-free step `x [n, in]`, `h [n, hidden]` → new hidden, sharing
    /// weights with [`GruCell::step`] and matching it bit-for-bit. The `n`
    /// axis batches independent sequences (e.g. live beam candidates), so
    /// one call steps the whole beam through a single pair of GEMMs.
    pub fn infer_step(&self, arena: &mut ScratchArena, x: &Array, h: &Array) -> Array {
        assert!(
            x.ndim() == 2 && x.shape()[1] == self.in_dim,
            "GruCell '{}': input shape {:?} incompatible with expected [n, {}]",
            self.name,
            x.shape(),
            self.in_dim
        );
        assert!(
            h.ndim() == 2 && h.shape()[1] == self.hidden && h.shape()[0] == x.shape()[0],
            "GruCell '{}': state shape {:?} incompatible with expected [{}, {}]",
            self.name,
            h.shape(),
            x.shape()[0],
            self.hidden
        );
        let hsz = self.hidden;
        let gx = infer::affine(arena, x, &self.wx.value(), &self.b.value()); // [n, 3h]
        let gh = infer::matmul(arena, h, &self.wh.value()); // [n, 3h]
        let rows = x.shape()[0];
        let mut out = arena.alloc(&[rows, hsz]);
        for r in 0..rows {
            let gxr = gx.row(r);
            let ghr = gh.row(r);
            let hr = h.row(r);
            let orow = out.row_mut(r);
            for j in 0..hsz {
                // Same per-element arithmetic (and rounding order) as the
                // taped slice/add/mul/activation chain in `step`.
                let rg = st_tensor::mathfn::sigmoid(gxr[j] + ghr[j]);
                let z = st_tensor::mathfn::sigmoid(gxr[hsz + j] + ghr[hsz + j]);
                let n = st_tensor::mathfn::tanh(gxr[2 * hsz + j] + rg * ghr[2 * hsz + j]);
                orow[j] = (n - z * n) + (z * hr[j]);
            }
        }
        arena.recycle(gx);
        arena.recycle(gh);
        out
    }
}

impl Module for GruCell {
    fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.b]
    }
}

/// A stack of GRU cells; layer `k` feeds layer `k+1`.
pub struct Gru {
    cells: Vec<GruCell>,
}

impl Gru {
    /// A stacked GRU with `layers` cells: the first maps `in_dim → hidden`,
    /// the rest `hidden → hidden`.
    pub fn new(name: &str, in_dim: usize, hidden: usize, layers: usize, rng: &mut StdRng) -> Self {
        assert!(layers >= 1);
        let cells = (0..layers)
            .map(|k| {
                let d = if k == 0 { in_dim } else { hidden };
                GruCell::new(&format!("{name}.{k}"), d, hidden, rng)
            })
            .collect();
        Self { cells }
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.cells.len()
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.cells[0].hidden()
    }

    /// Fresh zero state for a batch of `n` sequences: one `[n, hidden]` per layer.
    pub fn zero_state<'t>(&self, bind: &Binder<'t, '_>, n: usize) -> Vec<Var<'t>> {
        self.cells
            .iter()
            .map(|c| bind.input(Array::zeros(&[n, c.hidden()])))
            .collect()
    }

    /// One step through the stack. `state` holds one hidden per layer and is
    /// replaced with the new state; the top layer's output is returned.
    pub fn step<'t, 'p>(
        &'p self,
        bind: &Binder<'t, 'p>,
        x: Var<'t>,
        state: &mut Vec<Var<'t>>,
    ) -> Var<'t> {
        assert_eq!(state.len(), self.cells.len(), "state/layer count mismatch");
        let mut inp = x;
        for (cell, h) in self.cells.iter().zip(state.iter_mut()) {
            let new_h = cell.step(bind, inp, *h);
            *h = new_h;
            inp = new_h;
        }
        inp
    }

    /// Fresh zero state for `n` batched sequences, drawn from `arena`:
    /// one `[n, hidden]` array per layer.
    pub fn infer_zero_state(&self, arena: &mut ScratchArena, n: usize) -> Vec<Array> {
        self.cells
            .iter()
            .map(|c| arena.alloc(&[n, c.hidden()]))
            .collect()
    }

    /// Tape-free step through the stack, matching [`Gru::step`]
    /// bit-for-bit. `state` holds one `[n, hidden]` per layer and is
    /// replaced in place (old arrays are recycled into `arena`); the top
    /// layer's new state is the step output — read it via `state.last()`.
    pub fn infer_step(&self, arena: &mut ScratchArena, x: &Array, state: &mut [Array]) {
        assert_eq!(state.len(), self.cells.len(), "state/layer count mismatch");
        for (k, cell) in self.cells.iter().enumerate() {
            let new_h = if k == 0 {
                cell.infer_step(arena, x, &state[0])
            } else {
                let (prev, rest) = state.split_at(k);
                cell.infer_step(arena, &prev[k - 1], &rest[0])
            };
            arena.recycle(std::mem::replace(&mut state[k], new_h));
        }
    }
}

impl Module for Gru {
    fn params(&self) -> Vec<&Param> {
        self.cells.iter().flat_map(|c| c.params()).collect()
    }
}

/// A [`GruCell`] with its weights packed once for the decode hot loop.
///
/// The fused step runs two pre-packed GEMMs (`x·Wx`, `h·Wh`) and the
/// [`infer::gru_gates_fused`] epilogue, which activates the gates with the
/// crate-owned polynomial sigmoid/tanh and rewrites the hidden state in
/// place — no per-call weight packing, no intermediate gate buffers, and
/// bit-identical output to [`GruCell::infer_step`] / [`GruCell::step`].
pub struct PackedGruCell {
    wx: infer::PackedWeights,
    wh: infer::PackedWeights,
    b: Vec<f32>,
    in_dim: usize,
    hidden: usize,
}

impl PackedGruCell {
    /// Pack a cell's current weights.
    pub fn pack(cell: &GruCell) -> Self {
        Self {
            wx: infer::PackedWeights::pack(&cell.wx.value()),
            wh: infer::PackedWeights::pack(&cell.wh.value()),
            b: cell.b.value().data().to_vec(),
            in_dim: cell.in_dim,
            hidden: cell.hidden,
        }
    }

    /// Hidden state size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Fused tape-free step: `x [n, in]`, `h [n, hidden]` updated in place.
    pub fn infer_step_fused(&self, arena: &mut ScratchArena, x: &Array, h: &mut Array) {
        assert!(
            x.ndim() == 2 && x.shape()[1] == self.in_dim,
            "PackedGruCell: input shape {:?} incompatible with [n, {}]",
            x.shape(),
            self.in_dim
        );
        let mut gx = self.gate_x(arena, x); // [n, 3h], bias-free
        self.infer_step_fused_pregx(arena, &mut gx, h);
        arena.recycle(gx);
    }

    /// The input half of the gate pre-activations alone: `x·Wx` (bias-free,
    /// `[n, 3·hidden]`). Split out so callers whose `x` rows depend only on
    /// a token (an embedding lookup) can memoize rows across steps.
    pub fn gate_x(&self, arena: &mut ScratchArena, x: &Array) -> Array {
        infer::matmul_packed(arena, x, &self.wx)
    }

    /// [`PackedGruCell::infer_step_fused`] with `gx = x·Wx` already computed
    /// (by [`PackedGruCell::gate_x`], possibly row-cached). `gx` is consumed
    /// as scratch. Bit-identical to the unsplit step.
    pub fn infer_step_fused_pregx(&self, arena: &mut ScratchArena, gx: &mut Array, h: &mut Array) {
        assert!(
            gx.ndim() == 2 && gx.shape()[1] == 3 * self.hidden,
            "PackedGruCell: gx shape {:?} incompatible with [n, {}]",
            gx.shape(),
            3 * self.hidden
        );
        assert!(
            h.shape() == [gx.shape()[0], self.hidden],
            "PackedGruCell: state shape {:?} incompatible with [{}, {}]",
            h.shape(),
            gx.shape()[0],
            self.hidden
        );
        let gh = infer::matmul_packed(arena, h, &self.wh); // [n, 3h]
        infer::gru_gates_fused(self.hidden, gx, &gh, &self.b, h);
        arena.recycle(gh);
    }
}

/// A [`Gru`] stack packed once per inference session ([`PackedGruCell`]).
pub struct PackedGru {
    cells: Vec<PackedGruCell>,
}

impl PackedGru {
    /// Pack every cell of a stack.
    pub fn pack(gru: &Gru) -> Self {
        Self {
            cells: gru.cells.iter().map(PackedGruCell::pack).collect(),
        }
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.cells.len()
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.cells[0].hidden
    }

    /// Fused step through the stack, updating each layer's `[n, hidden]`
    /// state in place; bit-identical to [`Gru::infer_step`]. The top
    /// layer's state (`state.last()`) is the step output.
    pub fn infer_step_fused(&self, arena: &mut ScratchArena, x: &Array, state: &mut [Array]) {
        let mut gx0 = self.cells[0].gate_x(arena, x);
        self.infer_step_fused_pregx(arena, &mut gx0, state);
        arena.recycle(gx0);
    }

    /// [`PackedGru::infer_step_fused`] with the *bottom layer's* `x·Wx`
    /// already computed ([`PackedGru::gate_x0`], possibly row-cached — the
    /// bottom input is the only one that depends purely on the token).
    /// `gx0` is consumed as scratch. Bit-identical to the unsplit step.
    pub fn infer_step_fused_pregx(
        &self,
        arena: &mut ScratchArena,
        gx0: &mut Array,
        state: &mut [Array],
    ) {
        assert_eq!(state.len(), self.cells.len(), "state/layer count mismatch");
        for (k, cell) in self.cells.iter().enumerate() {
            if k == 0 {
                cell.infer_step_fused_pregx(arena, gx0, &mut state[0]);
            } else {
                // Layer k's input is layer k−1's state, already updated in
                // place this step — exactly the unfused chaining order.
                let (prev, rest) = state.split_at_mut(k);
                cell.infer_step_fused(arena, &prev[k - 1], &mut rest[0]);
            }
        }
    }

    /// Bottom-layer `x·Wx` for [`PackedGru::infer_step_fused_pregx`].
    pub fn gate_x0(&self, arena: &mut ScratchArena, x: &Array) -> Array {
        self.cells[0].gate_x(arena, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::module::Activation;
    use proptest::prelude::*;
    use st_tensor::optim::{Adam, Optimizer};
    use st_tensor::Tape;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The three GRU step implementations — taped `step`, unfused
        /// `infer_step`, fused packed `infer_step_fused` — are bit-identical
        /// over random weights, inputs, states, and batch sizes.
        #[test]
        fn fused_unfused_taped_steps_are_bit_identical(
            seed in 0u64..500,
            m in 1usize..=8,
        ) {
            let mut rng = init::rng(seed);
            let cell = GruCell::new("g", 5, 7, &mut rng);
            let x = init::randn(&[m, 5], 1.0, &mut rng);
            let h = init::randn(&[m, 7], 1.0, &mut rng);

            let tape = Tape::new();
            let b = Binder::new(&tape);
            let taped = cell
                .step(&b, b.input(x.clone()), b.input(h.clone()))
                .value()
                .clone();
            drop(tape);

            let mut arena = ScratchArena::new();
            let unfused = cell.infer_step(&mut arena, &x, &h);
            prop_assert_eq!(taped.data(), unfused.data());

            let packed = PackedGruCell::pack(&cell);
            let mut fused = h.clone();
            packed.infer_step_fused(&mut arena, &x, &mut fused);
            prop_assert_eq!(unfused.data(), fused.data());
        }
    }

    #[test]
    fn packed_stack_matches_unfused_stack_bitwise() {
        let mut rng = init::rng(11);
        let gru = Gru::new("g", 4, 6, 2, &mut rng);
        let packed = PackedGru::pack(&gru);
        assert_eq!(packed.layers(), 2);
        assert_eq!(packed.hidden(), 6);
        let mut arena = ScratchArena::new();
        let mut state_a = gru.infer_zero_state(&mut arena, 3);
        let mut state_b = gru.infer_zero_state(&mut arena, 3);
        for step in 0..5 {
            let x = init::randn(&[3, 4], 1.0, &mut rng);
            gru.infer_step(&mut arena, &x, &mut state_a);
            packed.infer_step_fused(&mut arena, &x, &mut state_b);
            for (a, b) in state_a.iter().zip(&state_b) {
                assert_eq!(a.data(), b.data(), "step {step}");
            }
        }
    }

    #[test]
    fn step_shapes() {
        let mut rng = init::rng(0);
        let cell = GruCell::new("g", 3, 5, &mut rng);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let x = b.input(Array::zeros(&[2, 3]));
        let h = b.input(Array::zeros(&[2, 5]));
        let h2 = cell.step(&b, x, h);
        assert_eq!(h2.value().shape(), &[2, 5]);
    }

    #[test]
    fn zero_input_zero_state_stays_bounded() {
        let mut rng = init::rng(1);
        let cell = GruCell::new("g", 2, 4, &mut rng);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let x = b.input(Array::zeros(&[1, 2]));
        let mut h = b.input(Array::zeros(&[1, 4]));
        for _ in 0..50 {
            h = cell.step(&b, x, h);
        }
        // tanh-gated updates keep the state in (-1, 1)
        assert!(h.value().max() < 1.0 && h.value().min() > -1.0);
        assert!(h.value().all_finite());
    }

    #[test]
    fn stacked_gru_shapes_and_params() {
        let mut rng = init::rng(2);
        let gru = Gru::new("g", 3, 6, 2, &mut rng);
        assert_eq!(gru.layers(), 2);
        assert_eq!(gru.params().len(), 6);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let mut state = gru.zero_state(&b, 4);
        let x = b.input(Array::zeros(&[4, 3]));
        let out = gru.step(&b, x, &mut state);
        assert_eq!(out.value().shape(), &[4, 6]);
        assert_eq!(state.len(), 2);
    }

    /// The GRU must be able to learn a simple long-range dependency that a
    /// memoryless model cannot: predict the *first* token of the sequence
    /// after seeing 6 steps.
    #[test]
    fn gru_learns_to_remember_first_token() {
        let mut rng = init::rng(7);
        let gru = Gru::new("g", 2, 8, 1, &mut rng);
        let head = Linear::new("head", 8, 2, &mut rng);
        let mut opt = Adam::new(0.05);
        // dataset: 2 sequences differing only in the first one-hot token
        let seqs: [Vec<[f32; 2]>; 2] = [
            vec![[1., 0.], [0., 1.], [0., 1.], [0., 1.], [0., 1.], [0., 1.]],
            vec![[0., 1.], [0., 1.], [0., 1.], [0., 1.], [0., 1.], [0., 1.]],
        ];
        let mut last = f32::INFINITY;
        for _ in 0..250 {
            let tape = Tape::new();
            let b = Binder::new(&tape);
            let mut state = gru.zero_state(&b, 2);
            for (s0, s1) in seqs[0].iter().zip(&seqs[1]) {
                let x = b.input(Array::from_vec(&[2, 2], vec![s0[0], s0[1], s1[0], s1[1]]));
                gru.step(&b, x, &mut state);
            }
            let logits = head.forward(&b, state[0]);
            let loss = ops::cross_entropy_mean(logits, &[0, 1]);
            last = loss.scalar_value();
            let grads = tape.backward(loss);
            b.accumulate_grads(&grads);
            let mut params = gru.params();
            params.extend(head.params());
            opt.step(&params);
        }
        assert!(last < 0.1, "GRU failed to learn first-token recall: {last}");
        let _ = Activation::Identity;
    }
}
