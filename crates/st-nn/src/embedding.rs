//! Token embeddings (road-segment embeddings in DeepST).

use rand::rngs::StdRng;

use st_tensor::{infer, init, ops, Array, Binder, Param, ScratchArena, Var};

use crate::module::Module;

/// A learned lookup table `[vocab, dim]`.
pub struct Embedding {
    name: String,
    table: Param,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Gaussian-initialized embedding table.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        assert!(
            vocab > 0 && dim > 0,
            "Embedding '{name}': dims must be positive, got vocab={vocab}, dim={dim}"
        );
        Self {
            name: name.to_string(),
            table: Param::new(
                format!("{name}.table"),
                init::randn(&[vocab, dim], 0.1, rng),
            ),
            vocab,
            dim,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Look up a batch of indices, producing `[indices.len(), dim]`.
    ///
    /// Rejects out-of-range indices with a diagnostic naming this layer.
    pub fn forward<'t, 'p>(&'p self, b: &Binder<'t, 'p>, indices: &[usize]) -> Var<'t> {
        for &i in indices {
            assert!(
                i < self.vocab,
                "embedding index {i} >= vocab {} in layer '{}'",
                self.vocab,
                self.name
            );
        }
        let table = b.var(&self.table);
        ops::gather_rows(table, indices)
    }

    /// Tape-free lookup `indices → [indices.len(), dim]`, sharing the table
    /// with [`Embedding::forward`] (row copies, hence bit-identical).
    pub fn infer(&self, arena: &mut ScratchArena, indices: &[usize]) -> Array {
        for &i in indices {
            assert!(
                i < self.vocab,
                "embedding index {i} >= vocab {} in layer '{}'",
                self.vocab,
                self.name
            );
        }
        infer::gather_rows(arena, &self.table.value(), indices)
    }

    /// Quantize the current table to int8 with one scale per row (the
    /// `InferPrecision::Int8` decode path). Lookups through the result
    /// ([`infer::gather_rows_quantized`]) dequantize on the fly and are
    /// validated statistically, not bitwise, against the f32 path.
    pub fn quantize(&self) -> infer::QuantizedTable {
        infer::QuantizedTable::quantize(&self.table.value())
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<&Param> {
        vec![&self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::optim::{Optimizer, Sgd};
    use st_tensor::{Array, Tape};

    #[test]
    fn lookup_shape() {
        let mut rng = init::rng(0);
        let e = Embedding::new("e", 10, 4, &mut rng);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let out = e.forward(&b, &[3, 3, 7]);
        assert_eq!(out.value().shape(), &[3, 4]);
        // duplicate indices return identical rows
        assert_eq!(out.value().row(0), out.value().row(1));
    }

    #[test]
    #[should_panic(expected = "embedding index")]
    fn out_of_range_panics() {
        let mut rng = init::rng(0);
        let e = Embedding::new("e", 4, 2, &mut rng);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let _ = e.forward(&b, &[4]);
    }

    #[test]
    fn only_looked_up_rows_get_gradient() {
        let mut rng = init::rng(0);
        let e = Embedding::new("e", 5, 2, &mut rng);
        let before = e.table.value().clone();
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let out = e.forward(&b, &[2]);
        let loss = ops::sum_all(ops::square(out));
        let grads = tape.backward(loss);
        b.accumulate_grads(&grads);
        let mut opt = Sgd::new(0.5);
        opt.step(&e.params());
        let after = e.table.value().clone();
        for r in 0..5 {
            if r == 2 {
                assert_ne!(before.row(r), after.row(r));
            } else {
                assert_eq!(before.row(r), after.row(r));
            }
        }
        let _ = Array::zeros(&[1]);
    }
}
