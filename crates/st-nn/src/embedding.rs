//! Token embeddings (road-segment embeddings in DeepST), row-sharded.
//!
//! The table is a [`BlockedParam`]: consecutive row blocks of at most
//! [`Embedding::DEFAULT_BLOCK_ROWS`] rows, each its own `Param`. A lookup
//! binds only the blocks its indices touch, so on a graph-scale vocabulary
//! a training step's tape, gradient, and optimizer-moment bytes grow with
//! the rows *visited*, not with the vocabulary. Small vocabularies fit in
//! one block, which degenerates to exactly the old dense layout — same
//! param name, same checkpoint entries, same bits.
//!
//! Initialization draws each row from its own seeded stream keyed by
//! `(table_seed, row)` ([`init::fill_normal_row`]), so the table's bytes are
//! a function of the vocabulary order alone — never of how the rows are
//! partitioned into blocks. A sharded and a dense table built from the same
//! seed are bit-identical.

use rand::rngs::StdRng;
use rand::Rng;

use st_tensor::{infer, init, ops, Array, Binder, BlockedParam, Param, ScratchArena, Var};

use crate::module::Module;

/// A learned lookup table `[vocab, dim]`, stored as row blocks.
pub struct Embedding {
    name: String,
    table: BlockedParam,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Rows per block unless overridden: small worlds (Rivertown, Northport,
    /// the paper's Harbin graph would take four blocks) stay single-block
    /// and hence byte-identical to the historical dense layout.
    pub const DEFAULT_BLOCK_ROWS: usize = 4096;

    /// Stream id mixed into the drawn table seed. The value itself is
    /// arbitrary (any tag re-rolls every embedding init); it is pinned
    /// because the repo's seeded statistical tests — DeepST-beats-MMI,
    /// the int8 planted-regression gate, improves-with-training, the
    /// gridlock-reaction serve test — were validated against this roll.
    const TABLE_STREAM_TAG: u64 = 262;

    /// Gaussian-initialized embedding table (std 0.1), blocked at
    /// [`Embedding::DEFAULT_BLOCK_ROWS`] rows.
    ///
    /// Consumes exactly one `u64` from `rng` (the table seed); rows are
    /// then drawn from per-row streams in vocab order.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        Self::with_block_rows(name, vocab, dim, Self::DEFAULT_BLOCK_ROWS, rng)
    }

    /// [`Embedding::new`] with an explicit block size. `block_rows >= vocab`
    /// yields the dense (single-block) layout; the parity oracles compare a
    /// small-block table against it.
    pub fn with_block_rows(
        name: &str,
        vocab: usize,
        dim: usize,
        block_rows: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            vocab > 0 && dim > 0,
            "Embedding '{name}': dims must be positive, got vocab={vocab}, dim={dim}"
        );
        // Tagged with a fixed stream id so the table's per-row streams are
        // distinct from any other consumer keying off the same master draw.
        let table_seed: u64 = rng.gen::<u64>() ^ Self::TABLE_STREAM_TAG;
        let table =
            BlockedParam::from_rows(format!("{name}.table"), vocab, dim, block_rows, |r, buf| {
                init::fill_normal_row(buf, 0.1, table_seed, r)
            });
        Self {
            name: name.to_string(),
            table,
            vocab,
            dim,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of row blocks backing the table.
    pub fn num_blocks(&self) -> usize {
        self.table.num_blocks()
    }

    /// The blocked table itself (bench/diagnostic access).
    pub fn table(&self) -> &BlockedParam {
        &self.table
    }

    /// Bytes of table values (resident regardless of access pattern).
    pub fn table_bytes(&self) -> usize {
        self.table.value_bytes()
    }

    /// Bytes of *materialized* gradient buffers — grows with the blocks
    /// training has touched, not with the vocabulary.
    pub fn resident_grad_bytes(&self) -> usize {
        self.table.resident_grad_bytes()
    }

    /// Blocks whose gradients have ever been touched.
    pub fn resident_blocks(&self) -> usize {
        self.table.resident_blocks()
    }

    /// Look up a batch of indices, producing `[indices.len(), dim]`.
    ///
    /// Binds (copies onto the tape) only the blocks `indices` touch, in
    /// first-touch order; cold blocks cost zero tape bytes. Rejects
    /// out-of-range indices with a diagnostic naming this layer.
    pub fn forward<'t, 'p>(&'p self, b: &Binder<'t, 'p>, indices: &[usize]) -> Var<'t> {
        self.check_indices(indices);
        let mut slot_of_block = vec![usize::MAX; self.table.num_blocks()];
        let mut vars: Vec<Var<'t>> = Vec::new();
        let mut picks = Vec::with_capacity(indices.len());
        for &i in indices {
            let (blk, row) = self.table.locate(i);
            if slot_of_block[blk] == usize::MAX {
                slot_of_block[blk] = vars.len();
                vars.push(b.var(self.table.block(blk)));
            }
            picks.push((slot_of_block[blk], row));
        }
        ops::gather_rows_blocked(&vars, &picks)
    }

    /// Tape-free lookup `indices → [indices.len(), dim]`, sharing the table
    /// with [`Embedding::forward`] (row copies, hence bit-identical).
    pub fn infer(&self, arena: &mut ScratchArena, indices: &[usize]) -> Array {
        self.check_indices(indices);
        let guards: Vec<_> = self.table.blocks().iter().map(|p| p.value()).collect();
        let refs: Vec<&Array> = guards.iter().map(|g| &**g).collect();
        let picks: Vec<(usize, usize)> = indices.iter().map(|&i| self.table.locate(i)).collect();
        infer::gather_rows_blocked(arena, &refs, &picks)
    }

    /// Quantize the current table to int8 with one scale per row (the
    /// `InferPrecision::Int8` decode path). Scales are per *logical* row,
    /// so quantizing the dense concatenation is identical to quantizing
    /// block by block. Lookups through the result
    /// ([`infer::gather_rows_quantized`]) dequantize on the fly and are
    /// validated statistically, not bitwise, against the f32 path.
    pub fn quantize(&self) -> infer::QuantizedTable {
        infer::QuantizedTable::quantize(&self.table.to_dense())
    }

    fn check_indices(&self, indices: &[usize]) {
        for &i in indices {
            assert!(
                i < self.vocab,
                "embedding index {i} >= vocab {} in layer '{}'",
                self.vocab,
                self.name
            );
        }
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<&Param> {
        self.table.blocks().iter().collect()
    }

    /// All blocks form one logical tensor: grouped clipping chains their
    /// squared norms in row order, reproducing the dense table's norm bits.
    fn param_groups(&self) -> Vec<Vec<&Param>> {
        vec![self.params()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::optim::{Optimizer, Sgd};
    use st_tensor::{Array, Tape};

    #[test]
    fn lookup_shape() {
        let mut rng = init::rng(0);
        let e = Embedding::new("e", 10, 4, &mut rng);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let out = e.forward(&b, &[3, 3, 7]);
        assert_eq!(out.value().shape(), &[3, 4]);
        // duplicate indices return identical rows
        assert_eq!(out.value().row(0), out.value().row(1));
    }

    #[test]
    #[should_panic(expected = "embedding index")]
    fn out_of_range_panics() {
        let mut rng = init::rng(0);
        let e = Embedding::new("e", 4, 2, &mut rng);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let _ = e.forward(&b, &[4]);
    }

    #[test]
    fn only_looked_up_rows_get_gradient() {
        let mut rng = init::rng(0);
        let e = Embedding::new("e", 5, 2, &mut rng);
        let before = e.table.to_dense();
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let out = e.forward(&b, &[2]);
        let loss = ops::sum_all(ops::square(out));
        let grads = tape.backward(loss);
        b.accumulate_grads(&grads);
        let mut opt = Sgd::new(0.5);
        opt.step(&e.params());
        let after = e.table.to_dense();
        for r in 0..5 {
            if r == 2 {
                assert_ne!(before.row(r), after.row(r));
            } else {
                assert_eq!(before.row(r), after.row(r));
            }
        }
        let _ = Array::zeros(&[1]);
    }

    /// Same seed, any block size → bit-identical table bytes (the
    /// vocab-order-deterministic init pinned down).
    #[test]
    fn init_is_block_size_invariant() {
        let dense = Embedding::with_block_rows("e", 33, 5, usize::MAX, &mut init::rng(9));
        assert_eq!(dense.num_blocks(), 1);
        for block_rows in [1usize, 4, 8, 33] {
            let sharded = Embedding::with_block_rows("e", 33, 5, block_rows, &mut init::rng(9));
            let d = dense.table.to_dense();
            let s = sharded.table.to_dense();
            let db: Vec<u32> = d.data().iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u32> = s.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(db, sb, "block_rows {block_rows}");
        }
    }

    /// Forward/backward on a sharded table: only touched blocks bind to
    /// the tape and only they materialize gradients.
    #[test]
    fn cold_blocks_cost_no_tape_or_grad_bytes() {
        let mut rng = init::rng(3);
        let e = Embedding::with_block_rows("e", 16, 3, 4, &mut rng); // 4 blocks
        assert_eq!(e.num_blocks(), 4);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        // indices touch blocks 0 and 2 only
        let out = e.forward(&b, &[1, 9, 2, 8]);
        assert_eq!(out.value().shape(), &[4, 3]);
        assert_eq!(b.bound_params().len(), 2, "only touched blocks bound");
        let grads = tape.backward(ops::sum_all(ops::square(out)));
        b.accumulate_grads(&grads);
        assert_eq!(e.resident_blocks(), 2);
        assert_eq!(e.resident_grad_bytes(), 2 * 4 * 3 * 4);
    }

    /// The blocked forward and infer paths must match the dense layout
    /// bitwise on the same lookups.
    #[test]
    fn sharded_matches_dense_lookup_bitwise() {
        let dense = Embedding::with_block_rows("e", 21, 4, usize::MAX, &mut init::rng(5));
        let sharded = Embedding::with_block_rows("e", 21, 4, 5, &mut init::rng(5));
        let idx = [20usize, 0, 7, 13, 7, 4];

        let t1 = Tape::new();
        let b1 = Binder::new(&t1);
        let yd = dense.forward(&b1, &idx);
        let t2 = Tape::new();
        let b2 = Binder::new(&t2);
        let ys = sharded.forward(&b2, &idx);
        let ydb: Vec<u32> = yd.value().data().iter().map(|v| v.to_bits()).collect();
        let ysb: Vec<u32> = ys.value().data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ydb, ysb);

        let mut arena = ScratchArena::new();
        let id = dense.infer(&mut arena, &idx);
        let is = sharded.infer(&mut arena, &idx);
        assert_eq!(id.data(), is.data());
        assert_eq!(id.data(), yd.value().data());
    }
}
