//! Module-level entry point to the [`st_tensor::analyze`] graph analyzer.
//!
//! [`st_tensor::analyze`] checks the graph that was actually recorded on a
//! tape; it can only see parameters that were bound. This wrapper adds the
//! module's-eye view: a [`crate::Module`] knows its full parameter list, so a
//! parameter the forward pass never binds at all — the most common form of
//! "dead parameter" (constructed, registered, then forgotten) — is reported
//! here as an [`LintKind::UnreachableParam`] error alongside the tape-level
//! findings.

use std::collections::HashSet;

use st_tensor::analyze::{AnalyzerConfig, Diagnostic, LintKind, Severity};
use st_tensor::{Binder, Tape};

use crate::module::Module;

/// Analyze the graph recorded on `tape` (rooted at the loss node `root`)
/// together with `module`'s parameter list, with default thresholds.
///
/// Runs every [`st_tensor::analyze`] pass over the exported spec, then
/// appends one [`LintKind::UnreachableParam`] error per module parameter that
/// was never bound onto the tape by `binder` — those cannot receive a
/// gradient under any input.
pub fn analyze_module_graph(
    tape: &Tape,
    binder: &Binder<'_, '_>,
    root: usize,
    module: &dyn Module,
) -> Vec<Diagnostic> {
    analyze_module_graph_with(tape, binder, root, module, &AnalyzerConfig::default())
}

/// [`analyze_module_graph`] with explicit [`AnalyzerConfig`] thresholds.
pub fn analyze_module_graph_with(
    tape: &Tape,
    binder: &Binder<'_, '_>,
    root: usize,
    module: &dyn Module,
    cfg: &AnalyzerConfig,
) -> Vec<Diagnostic> {
    let spec = tape.export_spec();
    let bound = binder.bound_params();
    let mut diags = st_tensor::analyze(&spec, root, &bound, cfg);
    let bound_names: HashSet<&str> = bound.iter().map(|(n, _)| n.as_str()).collect();
    for p in module.params() {
        if !bound_names.contains(p.name()) {
            diags.push(Diagnostic {
                kind: LintKind::UnreachableParam,
                severity: Severity::Error,
                node: None,
                message: format!(
                    "parameter '{}' is never bound onto the tape: the forward pass \
                     does not use it, so it can never receive a gradient",
                    p.name()
                ),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::{ops, Array, Param};

    struct Toy {
        w: Param,
        dead: Option<Param>,
    }

    impl Module for Toy {
        fn params(&self) -> Vec<&Param> {
            let mut ps = vec![&self.w];
            if let Some(d) = &self.dead {
                ps.push(d);
            }
            ps
        }
    }

    fn forward(tape: &Tape, m: &Toy) -> (usize, Vec<Diagnostic>) {
        let b = Binder::new(tape);
        let w = b.var(&m.w);
        let x = b.input(Array::from_vec(&[1, 2], vec![0.5, -0.5]));
        let loss = ops::sum_all(ops::matmul(x, w));
        (loss.id(), analyze_module_graph(tape, &b, loss.id(), m))
    }

    #[test]
    fn clean_module_graph_has_no_findings() {
        let m = Toy {
            w: Param::new("w", Array::from_vec(&[2, 3], vec![0.1; 6])),
            dead: None,
        };
        let tape = Tape::new();
        let (_, diags) = forward(&tape, &m);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn never_bound_param_is_reported_by_name() {
        let m = Toy {
            w: Param::new("w", Array::from_vec(&[2, 3], vec![0.1; 6])),
            dead: Some(Param::new("dead.bias", Array::vector(vec![0.0; 3]))),
        };
        let tape = Tape::new();
        let (_, diags) = forward(&tape, &m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::UnreachableParam);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(
            diags[0].message.contains("dead.bias"),
            "{}",
            diags[0].message
        );
    }
}
