//! Model checkpointing: save/load a [`Module`]'s state as JSON.
//!
//! Two formats coexist:
//!
//! - **v1** ([`Checkpoint`]): a name-keyed list of `(shape, data)` parameter
//!   entries — model weights only. Kept for existing files and for
//!   lightweight weight exchange.
//! - **v2** ([`CheckpointV2`]): the crash-safe training checkpoint. Carries
//!   model parameters *and* non-trainable buffers (batch-norm running
//!   statistics), optional Adam optimizer state, and an optional
//!   training-progress record (epoch/step counters, RNG state, LR-backoff
//!   bookkeeping). Tensor data is stored as hexadecimal IEEE-754 bit
//!   patterns, so a save/load round trip is bit-identical — including
//!   negative zeros and denormals that a decimal float path would mangle.
//!   The file is a header line (format tag, version, FNV-1a checksum of the
//!   payload) followed by the payload JSON; loads verify the checksum before
//!   parsing, so truncated or corrupted files are rejected with a typed
//!   error instead of half-loading.
//!
//! All writes are atomic: tmp file in the destination directory, `fsync`,
//! rename over the target, directory `fsync`. A crash mid-write leaves
//! either the old checkpoint or a stray `.tmp` — never a torn target file.
//!
//! Loads are strict: any version, name, shape, or checksum mismatch is a
//! [`CheckpointError`], so checkpoints can never silently half-load.

use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;

use serde::{Deserialize, Serialize};

use st_tensor::optim::AdamState;
use st_tensor::Array;

use crate::module::Module;

/// Current checkpoint format version (the v2 training checkpoint).
pub const CHECKPOINT_VERSION: u32 = 2;

/// Version written by the legacy parameters-only format.
pub const CHECKPOINT_VERSION_V1: u32 = 1;

/// Typed checkpoint failure. Every load/restore error path reports one of
/// these — nothing in the checkpoint stack panics on bad input.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (open/read/write/rename).
    Io(io::Error),
    /// The file is not parseable as the expected JSON structure.
    Parse(String),
    /// The file's format version is not one this build can read.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version(s) this build supports.
        expected: u32,
    },
    /// The payload bytes do not match the header checksum (torn write,
    /// truncation, or bit corruption).
    Checksum {
        /// Checksum recorded in the header.
        expected: String,
        /// Checksum of the payload actually on disk.
        actual: String,
    },
    /// An entry list has the wrong length for the target module.
    Count {
        /// What was being counted (e.g. "param", "buffer").
        what: &'static str,
        /// Entries the module expects.
        expected: usize,
        /// Entries the checkpoint holds.
        found: usize,
    },
    /// A parameter/buffer name does not match the module's canonical order.
    Name {
        /// Name the module expects at this position.
        expected: String,
        /// Name found in the checkpoint.
        found: String,
    },
    /// A tensor's shape does not match the module's.
    Shape {
        /// Offending entry name.
        name: String,
        /// Shape the module expects.
        expected: Vec<usize>,
        /// Shape found in the checkpoint.
        found: Vec<usize>,
    },
    /// Structurally invalid content (bad hex encoding, missing header, …).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Parse(m) => write!(f, "checkpoint parse error: {m}"),
            CheckpointError::Version { found, expected } => {
                write!(
                    f,
                    "checkpoint version {found} unsupported (expected {expected})"
                )
            }
            CheckpointError::Checksum { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: header says {expected}, payload hashes to {actual}"
            ),
            CheckpointError::Count {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint has {found} {what} entries, module expects {expected}"
            ),
            CheckpointError::Name { expected, found } => {
                write!(
                    f,
                    "checkpoint entry order mismatch: expected `{expected}`, found `{found}`"
                )
            }
            CheckpointError::Shape {
                name,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch for `{name}`: module {expected:?}, checkpoint {found:?}"
            ),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Parse(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// v1: parameters-only checkpoint (decimal floats, single JSON document)
// ---------------------------------------------------------------------------

/// One serialized parameter (v1: decimal float data).
#[derive(Debug, Serialize, Deserialize)]
struct ParamRecord {
    name: String,
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// A serialized v1 checkpoint (model parameters only).
#[derive(Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version (bumped on breaking layout changes).
    pub version: u32,
    params: Vec<ParamRecord>,
}

/// Capture a module's parameters into a v1 [`Checkpoint`].
pub fn checkpoint<M: Module + ?Sized>(module: &M) -> Checkpoint {
    let params = module
        .state()
        .into_iter()
        .map(|(name, value)| ParamRecord {
            name,
            shape: value.shape().to_vec(),
            data: value.data().to_vec(),
        })
        .collect();
    Checkpoint {
        version: CHECKPOINT_VERSION_V1,
        params,
    }
}

/// Restore a module's parameters from a v1 [`Checkpoint`].
///
/// Checkpoints are tied to the exact architecture that produced them: any
/// version, name, or shape mismatch is an error and the module is left in
/// whatever state the partial application reached — callers that need
/// all-or-nothing semantics should restore into a scratch model first.
pub fn restore<M: Module + ?Sized>(module: &M, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    if ckpt.version != CHECKPOINT_VERSION_V1 {
        return Err(CheckpointError::Version {
            found: ckpt.version,
            expected: CHECKPOINT_VERSION_V1,
        });
    }
    let state: Vec<(String, Array)> = ckpt
        .params
        .iter()
        .map(|r| (r.name.clone(), Array::from_vec(&r.shape, r.data.clone())))
        .collect();
    module.load_state(&state)
}

/// Save a module's parameters to a v1 JSON file (atomically).
pub fn save<M: Module + ?Sized>(module: &M, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(&checkpoint(module))?;
    write_atomic(path.as_ref(), json.as_bytes())?;
    Ok(())
}

/// Load a module's parameters from a JSON file written by [`save`]. Never
/// panics: truncated, garbage, or mismatched input yields a typed error.
pub fn load<M: Module + ?Sized>(module: &M, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    let ckpt: Checkpoint = serde_json::from_str(&json)?;
    restore(module, &ckpt)
}

// ---------------------------------------------------------------------------
// v2: full training checkpoint (bit-exact tensors, checksum, atomic writes)
// ---------------------------------------------------------------------------

/// One serialized tensor (v2): data as concatenated 8-hex-digit IEEE-754
/// bit patterns, which round-trip every f32 bit pattern exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TensorRecord {
    /// Entry name ("" for anonymous tensors such as optimizer moments).
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Hex-encoded f32 bit patterns, 8 chars per element.
    pub bits: String,
}

impl TensorRecord {
    /// Encode a named array.
    pub fn from_array(name: &str, a: &Array) -> Self {
        Self {
            name: name.to_string(),
            shape: a.shape().to_vec(),
            bits: encode_f32_bits(a.data()),
        }
    }

    /// Decode back into an array, validating length against the shape.
    pub fn to_array(&self) -> Result<Array, CheckpointError> {
        let data = decode_f32_bits(&self.bits)?;
        let expect: usize = self.shape.iter().product();
        if data.len() != expect {
            return Err(CheckpointError::Corrupt(format!(
                "tensor `{}`: shape {:?} wants {expect} elements, data has {}",
                self.name,
                self.shape,
                data.len()
            )));
        }
        Ok(Array::from_vec(&self.shape, data))
    }
}

/// Serialized Adam optimizer state (v2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptStateRecord {
    /// Optimizer algorithm tag (currently always `"adam"`).
    pub algo: String,
    /// Steps taken.
    pub t: u64,
    /// Learning rate at checkpoint time.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// First-moment estimates in parameter order.
    pub m: Vec<TensorRecord>,
    /// Second-moment estimates in parameter order.
    pub v: Vec<TensorRecord>,
}

impl OptStateRecord {
    /// Encode an [`AdamState`].
    pub fn from_adam(s: &AdamState) -> Self {
        let enc = |arrs: &[Array]| {
            arrs.iter()
                .map(|a| TensorRecord::from_array("", a))
                .collect()
        };
        Self {
            algo: "adam".to_string(),
            t: s.t,
            lr: s.lr,
            beta1: s.beta1,
            beta2: s.beta2,
            eps: s.eps,
            m: enc(&s.m),
            v: enc(&s.v),
        }
    }

    /// Decode into an [`AdamState`].
    pub fn to_adam(&self) -> Result<AdamState, CheckpointError> {
        if self.algo != "adam" {
            return Err(CheckpointError::Corrupt(format!(
                "unsupported optimizer algo `{}`",
                self.algo
            )));
        }
        let dec = |recs: &[TensorRecord]| -> Result<Vec<Array>, CheckpointError> {
            recs.iter().map(|r| r.to_array()).collect()
        };
        Ok(AdamState {
            t: self.t,
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            m: dec(&self.m)?,
            v: dec(&self.v)?,
        })
    }
}

/// Serialized training progress (v2): everything besides tensors a trainer
/// needs to continue a run bit-identically.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainStateRecord {
    /// Epochs fully completed.
    pub epoch: u64,
    /// Optimizer steps taken across the run.
    pub step: u64,
    /// Divergence rollbacks performed so far (bounds LR backoff retries).
    pub lr_rollbacks: u32,
    /// Consecutive epochs without validation improvement (early stopping).
    pub bad_epochs: u32,
    /// Best validation loss so far; `None` when no finite value exists yet.
    pub best_val: Option<f32>,
    /// RNG state words as 16-hex-digit strings (JSON numbers are f64 and
    /// cannot carry full 64-bit words).
    pub rng: Vec<String>,
}

/// A serialized v2 training checkpoint.
#[derive(Debug, Serialize, Deserialize)]
pub struct CheckpointV2 {
    /// Trainable parameters in [`Module::params`] order.
    pub params: Vec<TensorRecord>,
    /// Non-trainable buffers (batch-norm running statistics) in
    /// [`Module::buffers`] order.
    pub buffers: Vec<TensorRecord>,
    /// Optimizer state, if the producer trains.
    pub opt: Option<OptStateRecord>,
    /// Training progress, if the producer trains.
    pub train: Option<TrainStateRecord>,
}

/// Header line preceding the v2 payload.
#[derive(Debug, Serialize, Deserialize)]
struct CheckpointHeader {
    format: String,
    version: u32,
    checksum: String,
}

const FORMAT_TAG: &str = "deepst-checkpoint";

/// Capture a module (and optional optimizer/training state) into a
/// [`CheckpointV2`].
pub fn checkpoint_v2<M: Module + ?Sized>(
    module: &M,
    opt: Option<&AdamState>,
    train: Option<TrainStateRecord>,
) -> CheckpointV2 {
    let enc = |entries: Vec<(String, Array)>| {
        entries
            .iter()
            .map(|(name, a)| TensorRecord::from_array(name, a))
            .collect()
    };
    CheckpointV2 {
        params: enc(module.state()),
        buffers: enc(module.buffers()),
        opt: opt.map(OptStateRecord::from_adam),
        train,
    }
}

/// Restore a module's parameters and buffers from a [`CheckpointV2`].
/// Optimizer/training state interpretation is the caller's business.
pub fn restore_v2<M: Module + ?Sized>(
    module: &M,
    ckpt: &CheckpointV2,
) -> Result<(), CheckpointError> {
    let dec = |recs: &[TensorRecord]| -> Result<Vec<(String, Array)>, CheckpointError> {
        recs.iter()
            .map(|r| Ok((r.name.clone(), r.to_array()?)))
            .collect()
    };
    module.load_state(&dec(&ckpt.params)?)?;
    module.load_buffers(&dec(&ckpt.buffers)?)
}

/// Serialize a [`CheckpointV2`] to `path`: header line with version and
/// payload checksum, then the payload, written atomically (tmp + fsync +
/// rename). A crash at any point leaves no torn target file.
pub fn save_v2(path: impl AsRef<Path>, ckpt: &CheckpointV2) -> Result<(), CheckpointError> {
    let payload = serde_json::to_string(ckpt)?;
    let header = serde_json::to_string(&CheckpointHeader {
        format: FORMAT_TAG.to_string(),
        version: CHECKPOINT_VERSION,
        checksum: format!("{:016x}", fnv1a64(payload.as_bytes())),
    })?;
    let mut bytes = Vec::with_capacity(header.len() + 1 + payload.len());
    bytes.extend_from_slice(header.as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(payload.as_bytes());
    write_atomic(path.as_ref(), &bytes)?;
    Ok(())
}

/// Read and verify a v2 checkpoint. Never panics: truncation, corruption,
/// or a version this build cannot read all yield typed errors.
pub fn load_v2(path: impl AsRef<Path>) -> Result<CheckpointV2, CheckpointError> {
    let bytes = std::fs::read(path)?;
    let text = std::str::from_utf8(&bytes)
        .map_err(|e| CheckpointError::Corrupt(format!("not UTF-8: {e}")))?;
    let (header_line, payload) = text
        .split_once('\n')
        .ok_or_else(|| CheckpointError::Corrupt("missing header/payload separator".into()))?;
    let header: CheckpointHeader = serde_json::from_str(header_line)?;
    if header.format != FORMAT_TAG {
        return Err(CheckpointError::Corrupt(format!(
            "unknown format tag `{}`",
            header.format
        )));
    }
    if header.version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Version {
            found: header.version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let actual = format!("{:016x}", fnv1a64(payload.as_bytes()));
    if actual != header.checksum {
        return Err(CheckpointError::Checksum {
            expected: header.checksum,
            actual,
        });
    }
    serde_json::from_str(payload).map_err(CheckpointError::from)
}

// ---------------------------------------------------------------------------
// encoding helpers
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit content hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode f32 values as concatenated 8-hex-digit bit patterns.
pub fn encode_f32_bits(data: &[f32]) -> String {
    let mut s = String::with_capacity(data.len() * 8);
    for v in data {
        use fmt::Write as _;
        let _ = write!(s, "{:08x}", v.to_bits());
    }
    s
}

/// Decode a string produced by [`encode_f32_bits`].
pub fn decode_f32_bits(s: &str) -> Result<Vec<f32>, CheckpointError> {
    if !s.len().is_multiple_of(8) || !s.is_ascii() {
        return Err(CheckpointError::Corrupt(format!(
            "tensor bit string length {} is not a multiple of 8 hex digits",
            s.len()
        )));
    }
    s.as_bytes()
        .chunks(8)
        .map(|chunk| {
            std::str::from_utf8(chunk)
                .map_err(|_| CheckpointError::Corrupt("non-ascii tensor chunk".into()))
                .and_then(|hex| {
                    u32::from_str_radix(hex, 16)
                        .map(f32::from_bits)
                        .map_err(|_| {
                            CheckpointError::Corrupt(format!("bad hex tensor chunk `{hex}`"))
                        })
                })
        })
        .collect()
}

/// Encode 64-bit words (e.g. RNG state) as 16-hex-digit strings.
pub fn encode_u64_words(words: &[u64]) -> Vec<String> {
    words.iter().map(|w| format!("{w:016x}")).collect()
}

/// Decode strings produced by [`encode_u64_words`].
pub fn decode_u64_words(words: &[String]) -> Result<Vec<u64>, CheckpointError> {
    words
        .iter()
        .map(|w| {
            u64::from_str_radix(w, 16)
                .map_err(|_| CheckpointError::Corrupt(format!("bad u64 hex word `{w}`")))
        })
        .collect()
}

/// Write `bytes` to `path` atomically: tmp file in the same directory,
/// `fsync`, rename over the target, then directory `fsync` (so the rename
/// itself survives a crash).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // Persist the rename: fsync the containing directory.
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Mlp;
    use crate::module::Activation;
    use st_tensor::{init, Binder, Tape};

    fn mlp(seed: u64) -> Mlp {
        let mut rng = init::rng(seed);
        Mlp::new(
            "m",
            &[3, 8, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        )
    }

    fn forward_sum(m: &Mlp, x: &Array) -> f32 {
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let xv = b.input(x.clone());
        m.forward(&b, xv).value().sum()
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("st_nn_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_roundtrip_preserves_outputs() {
        let m1 = mlp(1);
        let m2 = mlp(2); // different init
        let x = Array::from_vec(&[2, 3], vec![0.1, -0.5, 1.2, 0.0, 0.7, -0.3]);
        assert_ne!(forward_sum(&m1, &x), forward_sum(&m2, &x));
        restore(&m2, &checkpoint(&m1)).unwrap();
        assert_eq!(forward_sum(&m1, &x), forward_sum(&m2, &x));
    }

    #[test]
    fn file_roundtrip() {
        let dir = tmp_dir("v1");
        let path = dir.join("mlp.json");
        let m1 = mlp(3);
        save(&m1, &path).unwrap();
        let m2 = mlp(4);
        load(&m2, &path).unwrap();
        let x = Array::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        assert_eq!(forward_sum(&m1, &x), forward_sum(&m2, &x));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn mismatched_architecture_rejected() {
        let m1 = mlp(1);
        let mut rng = init::rng(0);
        let other = Mlp::new(
            "m",
            &[3, 4, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        match restore(&other, &checkpoint(&m1)) {
            Err(CheckpointError::Shape { .. }) => {}
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let m = mlp(1);
        let mut ckpt = checkpoint(&m);
        ckpt.version = 99;
        match restore(&m, &ckpt) {
            Err(CheckpointError::Version { found: 99, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    /// Hex bit-pattern encoding must round-trip every f32 exactly,
    /// including the values decimal formatting mangles.
    #[test]
    fn bit_encoding_is_exact() {
        let vals = vec![
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            f32::MIN_POSITIVE,
            1e-42, // denormal
            f32::MAX,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.1,
            std::f32::consts::PI,
        ];
        let decoded = decode_f32_bits(&encode_f32_bits(&vals)).unwrap();
        assert_eq!(vals.len(), decoded.len());
        for (a, b) in vals.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f32_bits("0123456").is_err());
        assert!(decode_f32_bits("0123456x").is_err());
    }

    #[test]
    fn u64_words_roundtrip() {
        let words = vec![0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d];
        let enc = encode_u64_words(&words);
        assert_eq!(decode_u64_words(&enc).unwrap(), words);
        assert!(decode_u64_words(&["zz".to_string()]).is_err());
    }

    #[test]
    fn v2_roundtrip_is_bit_identical() {
        let dir = tmp_dir("v2");
        let path = dir.join("ckpt.json");
        let m1 = mlp(5);
        // Poke exotic bit patterns into a weight to stress the encoding.
        {
            let p = m1.params();
            let mut v = p[0].value_mut();
            v.data_mut()[0] = -0.0;
            v.data_mut()[1] = 1e-42;
        }
        let train = TrainStateRecord {
            epoch: 3,
            step: 1234,
            lr_rollbacks: 1,
            bad_epochs: 2,
            best_val: Some(0.5),
            rng: encode_u64_words(&[u64::MAX, 1, 2, 3]),
        };
        save_v2(&path, &checkpoint_v2(&m1, None, Some(train))).unwrap();
        let loaded = load_v2(&path).unwrap();
        let m2 = mlp(6);
        restore_v2(&m2, &loaded).unwrap();
        for (p1, p2) in m1.params().iter().zip(m2.params()) {
            let (a, b) = (p1.value(), p2.value());
            let bits = |arr: &Array| arr.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "bits differ for {}", p1.name());
        }
        let t = loaded.train.unwrap();
        assert_eq!(
            (t.epoch, t.step, t.lr_rollbacks, t.bad_epochs),
            (3, 1234, 1, 2)
        );
        assert_eq!(decode_u64_words(&t.rng).unwrap(), vec![u64::MAX, 1, 2, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn v2_flipped_byte_fails_checksum() {
        let dir = tmp_dir("flip");
        let path = dir.join("ckpt.json");
        save_v2(&path, &checkpoint_v2(&mlp(7), None, None)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte (past the header line).
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let mid = header_end + (bytes.len() - header_end) / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match load_v2(&path) {
            Err(CheckpointError::Checksum { .. }) | Err(CheckpointError::Parse(_)) => {}
            other => panic!("expected checksum/parse error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn v2_wrong_version_rejected() {
        let dir = tmp_dir("ver");
        let path = dir.join("ckpt.json");
        save_v2(&path, &checkpoint_v2(&mlp(8), None, None)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("\"version\":2", "\"version\":3", 1)).unwrap();
        match load_v2(&path) {
            Err(CheckpointError::Version { found: 3, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    /// The corruption-hardening guarantee: a checkpoint truncated at *every*
    /// byte boundary must fail with a typed error — never panic, never
    /// half-load.
    #[test]
    fn truncation_at_every_byte_is_rejected() {
        let dir = tmp_dir("trunc");
        // Tiny module so the file is small enough to scan every boundary.
        let mut rng = init::rng(0);
        let tiny = Mlp::new(
            "t",
            &[2, 2],
            Activation::Identity,
            Activation::Identity,
            &mut rng,
        );

        // v2 path
        let path = dir.join("ckpt.json");
        save_v2(&path, &checkpoint_v2(&tiny, None, None)).unwrap();
        let full = std::fs::read(&path).unwrap();
        let cut = dir.join("cut.json");
        for n in 0..full.len() {
            std::fs::write(&cut, &full[..n]).unwrap();
            assert!(
                load_v2(&cut).is_err(),
                "v2 truncated to {n}/{} bytes loaded successfully",
                full.len()
            );
        }

        // v1 path
        let path1 = dir.join("v1.json");
        save(&tiny, &path1).unwrap();
        let full1 = std::fs::read(&path1).unwrap();
        for n in 0..full1.len() {
            std::fs::write(&cut, &full1[..n]).unwrap();
            assert!(
                load(&tiny, &cut).is_err(),
                "v1 truncated to {n}/{} bytes loaded successfully",
                full1.len()
            );
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn garbage_files_are_rejected_not_panicked() {
        let dir = tmp_dir("garbage");
        let path = dir.join("junk.json");
        let tiny = mlp(9);
        for junk in [
            "",
            "\n",
            "{",
            "not json at all",
            "{\"format\":\"other\"}\n{}",
            "[1,2,3]\n{}",
            "{\"format\":\"deepst-checkpoint\",\"version\":2,\"checksum\":\"00\"}\n{broken",
        ] {
            std::fs::write(&path, junk).unwrap();
            assert!(load_v2(&path).is_err(), "junk {junk:?} loaded as v2");
            assert!(load(&tiny, &path).is_err(), "junk {junk:?} loaded as v1");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_file() {
        let dir = tmp_dir("atomic");
        let path = dir.join("ckpt.json");
        save_v2(&path, &checkpoint_v2(&mlp(10), None, None)).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["ckpt.json".to_string()]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn opt_state_roundtrip() {
        let st = AdamState {
            t: 7,
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![Array::vector(vec![1.0, -0.0]), Array::zeros(&[2, 2])],
            v: vec![Array::vector(vec![0.5, 2.0]), Array::ones(&[2, 2])],
        };
        let rec = OptStateRecord::from_adam(&st);
        let back = rec.to_adam().unwrap();
        assert_eq!(back.t, 7);
        assert_eq!(back.m.len(), 2);
        assert_eq!(back.m[0].data()[1].to_bits(), (-0.0f32).to_bits());
        assert_eq!(back.v[1].shape(), &[2, 2]);
        let mut bad = rec.clone();
        bad.algo = "sgd".into();
        assert!(bad.to_adam().is_err());
    }
}
