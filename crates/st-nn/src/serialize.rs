//! Model checkpointing: save/load any [`Module`]'s parameters as JSON.
//!
//! The format is a name-keyed list of `(shape, data)` entries in the
//! module's canonical parameter order. Loads are strict: any name or shape
//! mismatch aborts, so checkpoints can never silently half-load.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use st_tensor::Array;

use crate::module::Module;

/// One serialized parameter.
#[derive(Debug, Serialize, Deserialize)]
struct ParamRecord {
    name: String,
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// A serialized checkpoint.
#[derive(Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version (bumped on breaking layout changes).
    pub version: u32,
    params: Vec<ParamRecord>,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Capture a module's parameters into a [`Checkpoint`].
pub fn checkpoint<M: Module + ?Sized>(module: &M) -> Checkpoint {
    let params = module
        .state()
        .into_iter()
        .map(|(name, value)| ParamRecord {
            name,
            shape: value.shape().to_vec(),
            data: value.data().to_vec(),
        })
        .collect();
    Checkpoint {
        version: CHECKPOINT_VERSION,
        params,
    }
}

/// Restore a module's parameters from a [`Checkpoint`].
///
/// Panics on version, name, or shape mismatches — checkpoints are tied to
/// the exact architecture that produced them.
pub fn restore<M: Module + ?Sized>(module: &M, ckpt: &Checkpoint) {
    assert_eq!(
        ckpt.version, CHECKPOINT_VERSION,
        "checkpoint version {} unsupported",
        ckpt.version
    );
    let state: Vec<(String, Array)> = ckpt
        .params
        .iter()
        .map(|r| (r.name.clone(), Array::from_vec(&r.shape, r.data.clone())))
        .collect();
    module.load_state(&state);
}

/// Save a module's parameters to a JSON file.
pub fn save<M: Module + ?Sized>(module: &M, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string(&checkpoint(module))?;
    std::fs::write(path, json)
}

/// Load a module's parameters from a JSON file written by [`save`].
pub fn load<M: Module + ?Sized>(module: &M, path: impl AsRef<Path>) -> io::Result<()> {
    let json = std::fs::read_to_string(path)?;
    let ckpt: Checkpoint = serde_json::from_str(&json)?;
    restore(module, &ckpt);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Mlp;
    use crate::module::Activation;
    use st_tensor::{init, Binder, Tape};

    fn mlp(seed: u64) -> Mlp {
        let mut rng = init::rng(seed);
        Mlp::new(
            "m",
            &[3, 8, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        )
    }

    fn forward_sum(m: &Mlp, x: &Array) -> f32 {
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let xv = b.input(x.clone());
        m.forward(&b, xv).value().sum()
    }

    #[test]
    fn checkpoint_roundtrip_preserves_outputs() {
        let m1 = mlp(1);
        let m2 = mlp(2); // different init
        let x = Array::from_vec(&[2, 3], vec![0.1, -0.5, 1.2, 0.0, 0.7, -0.3]);
        assert_ne!(forward_sum(&m1, &x), forward_sum(&m2, &x));
        restore(&m2, &checkpoint(&m1));
        assert_eq!(forward_sum(&m1, &x), forward_sum(&m2, &x));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("st_nn_ckpt_test");
        let path = dir.join("mlp.json");
        let m1 = mlp(3);
        save(&m1, &path).unwrap();
        let m2 = mlp(4);
        load(&m2, &path).unwrap();
        let x = Array::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        assert_eq!(forward_sum(&m1, &x), forward_sum(&m2, &x));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_architecture_rejected() {
        let m1 = mlp(1);
        let mut rng = init::rng(0);
        let other = Mlp::new(
            "m",
            &[3, 4, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        restore(&other, &checkpoint(&m1));
    }
}
