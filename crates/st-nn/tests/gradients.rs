//! Randomized gradient checks for every layer: the layer library must be
//! exactly differentiable end to end.

use proptest::prelude::*;

use st_nn::{Activation, Embedding, GruCell, Linear, Mlp, Module};
use st_tensor::check::grad_check;
use st_tensor::{init, ops, Array, Binder, Tape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Linear layer: gradients through weights AND inputs check numerically.
    #[test]
    fn linear_gradients(seed in 0u64..1000) {
        let mut rng = init::rng(seed);
        let l = Linear::new("l", 3, 2, &mut rng);
        let x = init::randn(&[2, 3], 1.0, &mut rng);
        let w = l.state()[0].1.clone();
        let b = l.state()[1].1.clone();
        grad_check(&[x, w, b], |_, v| {
            ops::sum_all(ops::square(ops::add_bias(ops::matmul(v[0], v[1]), v[2])))
        });
    }

    /// GRU cell: the full gate composition is correctly differentiable.
    #[test]
    fn gru_cell_gradients(seed in 0u64..1000) {
        let mut rng = init::rng(seed);
        let x = init::randn(&[2, 3], 0.8, &mut rng);
        let h = init::randn(&[2, 4], 0.8, &mut rng);
        let wx = init::xavier(3, 12, &mut rng);
        let wh = init::xavier(4, 12, &mut rng);
        let b = init::randn(&[12], 0.1, &mut rng);
        grad_check(&[x, h, wx, wh, b], |_, v| {
            // replicate the GRU gate equations exactly
            let gx = ops::add_bias(ops::matmul(v[0], v[2]), v[4]);
            let gh = ops::matmul(v[1], v[3]);
            let r = ops::sigmoid(ops::add(ops::slice_cols(gx, 0, 4), ops::slice_cols(gh, 0, 4)));
            let z = ops::sigmoid(ops::add(ops::slice_cols(gx, 4, 8), ops::slice_cols(gh, 4, 8)));
            let n = ops::tanh(ops::add(
                ops::slice_cols(gx, 8, 12),
                ops::mul(r, ops::slice_cols(gh, 8, 12)),
            ));
            let out = ops::add(ops::sub(n, ops::mul(z, n)), ops::mul(z, v[1]));
            ops::sum_all(ops::square(out))
        });
    }

    /// Unrolled GRU over several steps stays finite and differentiable.
    #[test]
    fn gru_unroll_backward_finite(seed in 0u64..1000, steps in 2usize..6) {
        let mut rng = init::rng(seed);
        let cell = GruCell::new("g", 3, 5, &mut rng);
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let mut h = binder.input(Array::zeros(&[2, 5]));
        for _ in 0..steps {
            let x = binder.input(init::randn(&[2, 3], 1.0, &mut rng));
            h = cell.step(&binder, x, h);
        }
        let loss = ops::sum_all(ops::square(h));
        let grads = tape.backward(loss);
        binder.accumulate_grads(&grads);
        for p in cell.params() {
            prop_assert!(p.grad().all_finite(), "non-finite gradient in {}", p.name());
        }
    }

    /// MLP outputs and gradients are finite for any seed/depth.
    #[test]
    fn mlp_finite(seed in 0u64..1000, hidden in 2usize..16) {
        let mut rng = init::rng(seed);
        let mlp = Mlp::new("m", &[4, hidden, 3], Activation::Tanh, Activation::Identity, &mut rng);
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let x = binder.input(init::randn(&[5, 4], 2.0, &mut rng));
        let y = mlp.forward(&binder, x);
        prop_assert!(y.value().all_finite());
        let loss = ops::mean_all(ops::square(y));
        let grads = tape.backward(loss);
        binder.accumulate_grads(&grads);
        for p in mlp.params() {
            prop_assert!(p.grad().all_finite());
        }
    }

    /// Embedding lookups return exactly the table rows.
    #[test]
    fn embedding_is_exact_lookup(seed in 0u64..1000, idx in proptest::collection::vec(0usize..7, 1..5)) {
        let mut rng = init::rng(seed);
        let emb = Embedding::new("e", 7, 3, &mut rng);
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let out = emb.forward(&binder, &idx);
        let table = emb.state()[0].1.clone();
        let out_val = out.value();
        for (r, &i) in idx.iter().enumerate() {
            prop_assert_eq!(out_val.row(r), table.row(i));
        }
    }
}
