//! Sharded-vs-dense embedding parity, property-tested.
//!
//! The blocked `Embedding` promises bit-identity with the dense layout on
//! every surface: the initialized table bytes (vocab-order-deterministic
//! per-row init — the prerequisite for every other parity oracle), the
//! taped forward lookup, the scattered backward gradients, and the
//! tape-free `infer` path. Block size is a free variable here, so the
//! properties pin that blocking is *unobservable* except through memory
//! accounting.

use proptest::prelude::*;

use st_nn::{Embedding, Module};
use st_tensor::{init, Binder, ScratchArena, Tape};

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite pin: a sharded and a dense table initialized from the same
    /// seed are bit-identical, for any vocab/dim/block size.
    #[test]
    fn init_parity_across_block_sizes(
        vocab in 1usize..=48,
        dim in 1usize..=8,
        block_rows in 1usize..=16,
        seed in 0u64..1024,
    ) {
        let dense = Embedding::with_block_rows("e", vocab, dim, usize::MAX, &mut init::rng(seed));
        let sharded = Embedding::with_block_rows("e", vocab, dim, block_rows, &mut init::rng(seed));
        prop_assert_eq!(dense.num_blocks(), 1);
        prop_assert_eq!(sharded.num_blocks(), vocab.div_ceil(block_rows));
        prop_assert_eq!(
            bits(dense.table().to_dense().data()),
            bits(sharded.table().to_dense().data())
        );
    }

    /// Forward lookups, backward scatters, and tape-free infer all agree
    /// bitwise between the dense and sharded layouts.
    #[test]
    fn lookup_and_gradient_parity(
        vocab in 2usize..=32,
        dim in 1usize..=6,
        block_rows in 1usize..=8,
        seed in 0u64..1024,
        raw_idx in proptest::collection::vec(0usize..64, 1..=12),
    ) {
        let idx: Vec<usize> = raw_idx.iter().map(|&i| i % vocab).collect();
        let dense = Embedding::with_block_rows("e", vocab, dim, usize::MAX, &mut init::rng(seed));
        let sharded = Embedding::with_block_rows("e", vocab, dim, block_rows, &mut init::rng(seed));

        let t1 = Tape::new();
        let b1 = Binder::new(&t1);
        let yd = dense.forward(&b1, &idx);
        let t2 = Tape::new();
        let b2 = Binder::new(&t2);
        let ys = sharded.forward(&b2, &idx);
        prop_assert_eq!(bits(yd.value().data()), bits(ys.value().data()));

        // backward: drive both through the same loss and compare the
        // per-row gradients accumulated into the params
        let gd = t1.backward(st_tensor::ops::sum_all(st_tensor::ops::square(yd)));
        b1.accumulate_grads(&gd);
        let gs = t2.backward(st_tensor::ops::sum_all(st_tensor::ops::square(ys)));
        b2.accumulate_grads(&gs);
        let dense_grad = dense.params()[0].grad().clone();
        let mut row = 0usize;
        for p in sharded.params() {
            let g = p.grad();
            if g.is_empty() {
                // cold block: dense gradient rows must all be zero there
                let rows_b = p.value().shape()[0];
                for r in row..row + rows_b {
                    prop_assert!(dense_grad.row(r).iter().all(|&v| v == 0.0),
                        "cold block covers a row with nonzero dense grad");
                }
                row += rows_b;
            } else {
                for r in 0..g.shape()[0] {
                    prop_assert_eq!(bits(g.row(r)), bits(dense_grad.row(row)));
                    row += 1;
                }
            }
        }
        prop_assert_eq!(row, vocab);

        // tape-free infer parity
        let mut arena = ScratchArena::new();
        let id = dense.infer(&mut arena, &idx);
        let is = sharded.infer(&mut arena, &idx);
        prop_assert_eq!(bits(id.data()), bits(is.data()));
    }
}
