//! Per-layer parity between the taped forward pass and the tape-free
//! `infer` path.
//!
//! The inference runtime's contract is that its kernels run the *same* f32
//! arithmetic as the taped ops, so the assertions here are bit-for-bit
//! (`to_bits` equality) — strictly stronger than the f32-ULP tolerance the
//! contract promises. Inputs are proptest-generated, so the equality holds
//! across shapes (including the GEMM micro-kernel edge cases) and values,
//! not just on one lucky seed.

use proptest::prelude::*;

use st_nn::{Activation, BatchNorm2d, ConvBlock, Embedding, Gru, GruCell, Linear, Mlp, TrafficCnn};
use st_tensor::{init, Array, Binder, ScratchArena, Tape, TapeFreeScope};

/// Assert two arrays are bit-identical (shape and every f32's bits).
fn assert_bits_eq(got: &Array, want: &Array, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    let gb: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
    let wb: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(gb, wb, "{what}: bit mismatch");
}

fn input(shape: &[usize], data: &[f32]) -> Array {
    let n: usize = shape.iter().product();
    Array::from_vec(shape, data[..n].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_parity(
        n in 1usize..=6, ind in 1usize..=9, out in 1usize..=9,
        seed in 0u64..1024,
        data in proptest::collection::vec(-2.0f32..2.0, 6 * 9),
    ) {
        let mut rng = init::rng(seed);
        let layer = Linear::new("l", ind, out, &mut rng);
        let x = input(&[n, ind], &data);

        let tape = Tape::new();
        let b = Binder::new(&tape);
        let want = layer.forward(&b, b.input(x.clone())).value();

        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let got = layer.infer(&mut arena, &x);
        assert_bits_eq(&got, &want, "Linear");
    }

    #[test]
    fn mlp_parity(
        n in 1usize..=5,
        seed in 0u64..1024,
        data in proptest::collection::vec(-2.0f32..2.0, 5 * 3),
    ) {
        let mut rng = init::rng(seed);
        let mlp = Mlp::new("m", &[3, 7, 4], Activation::Tanh, Activation::Identity, &mut rng);
        let x = input(&[n, 3], &data);

        let tape = Tape::new();
        let b = Binder::new(&tape);
        let want = mlp.forward(&b, b.input(x.clone())).value();

        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let got = mlp.infer(&mut arena, &x);
        assert_bits_eq(&got, &want, "Mlp");
    }

    #[test]
    fn gru_cell_parity(
        n in 1usize..=6, ind in 1usize..=7, hid in 1usize..=8,
        seed in 0u64..1024,
        data in proptest::collection::vec(-2.0f32..2.0, 6 * 7 + 6 * 8),
    ) {
        let mut rng = init::rng(seed);
        let cell = GruCell::new("g", ind, hid, &mut rng);
        let x = input(&[n, ind], &data);
        let h = Array::from_vec(&[n, hid], data[6 * 7..6 * 7 + n * hid].to_vec());

        let tape = Tape::new();
        let b = Binder::new(&tape);
        let want = cell.step(&b, b.input(x.clone()), b.input(h.clone())).value();

        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let got = cell.infer_step(&mut arena, &x, &h);
        assert_bits_eq(&got, &want, "GruCell");
    }

    #[test]
    fn gru_stack_parity_over_steps(
        n in 1usize..=4, steps in 1usize..=5,
        seed in 0u64..1024,
        data in proptest::collection::vec(-2.0f32..2.0, 5 * 4 * 3),
    ) {
        let mut rng = init::rng(seed);
        let gru = Gru::new("g", 3, 6, 2, &mut rng);

        let tape = Tape::new();
        let b = Binder::new(&tape);
        let mut taped_state = gru.zero_state(&b, n);

        let mut arena = ScratchArena::new();
        let mut infer_state = gru.infer_zero_state(&mut arena, n);

        for s in 0..steps {
            let x = input(&[n, 3], &data[s * n * 3..]);
            let want = gru.step(&b, b.input(x.clone()), &mut taped_state).value();
            gru.infer_step(&mut arena, &x, &mut infer_state);
            let got = infer_state.last().unwrap();
            assert_bits_eq(got, &want, "Gru stack output");
            for (layer, (gi, ti)) in infer_state.iter().zip(&taped_state).enumerate() {
                assert_bits_eq(gi, &ti.value(), &format!("Gru layer {layer} state"));
            }
        }
    }

    #[test]
    fn embedding_parity(
        idx in proptest::collection::vec(0usize..10, 1..6),
        seed in 0u64..1024,
    ) {
        let mut rng = init::rng(seed);
        let emb = Embedding::new("e", 10, 5, &mut rng);

        let tape = Tape::new();
        let b = Binder::new(&tape);
        let want = emb.forward(&b, &idx).value();

        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let got = emb.infer(&mut arena, &idx);
        assert_bits_eq(&got, &want, "Embedding");
    }

    #[test]
    fn batchnorm_eval_parity(
        n in 1usize..=3,
        data in proptest::collection::vec(-3.0f32..3.0, 3 * 2 * 4 * 4),
    ) {
        let bn = BatchNorm2d::new("bn", 2);
        // Drift the running stats off their init so eval isn't the identity.
        {
            let tape = Tape::new();
            let b = Binder::new(&tape);
            let warm = input(&[3, 2, 4, 4], &data);
            let _ = bn.forward(&b, b.input(warm), true);
        }
        let x = input(&[n, 2, 4, 4], &data);

        let tape = Tape::new();
        let b = Binder::new(&tape);
        let want = bn.forward(&b, b.input(x.clone()), false).value();

        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let mut got = x;
        bn.infer_eval(&mut arena, &mut got);
        assert_bits_eq(&got, &want, "BatchNorm2d eval");
    }

    #[test]
    fn conv_block_parity(
        n in 1usize..=2,
        seed in 0u64..1024,
        data in proptest::collection::vec(-2.0f32..2.0, 2 * 6 * 6),
    ) {
        let mut rng = init::rng(seed);
        let blk = ConvBlock::new("cb", 1, 3, 3, 2, 1, &mut rng);
        let x = input(&[n, 1, 6, 6], &data);

        let tape = Tape::new();
        let b = Binder::new(&tape);
        let want = blk.forward(&b, b.input(x.clone()), false).value();

        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let got = blk.infer(&mut arena, &x);
        assert_bits_eq(&got, &want, "ConvBlock");
    }

    #[test]
    fn traffic_cnn_parity(
        n in 1usize..=2,
        seed in 0u64..1024,
        data in proptest::collection::vec(-2.0f32..2.0, 2 * 8 * 8),
    ) {
        let mut rng = init::rng(seed);
        let cnn = TrafficCnn::new("cnn", 2, &mut rng);
        let x = input(&[n, 1, 8, 8], &data);

        let tape = Tape::new();
        let b = Binder::new(&tape);
        let want = cnn.forward(&b, b.input(x.clone()), false).value();

        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let got = cnn.infer(&mut arena, &x);
        assert_bits_eq(&got, &want, "TrafficCnn");
    }
}

/// In steady state a decode-style loop allocates nothing: after a warm-up
/// step, the arena pool count returns to the same level every iteration.
#[test]
fn gru_steady_state_reuses_arena() {
    let mut rng = init::rng(0);
    let gru = Gru::new("g", 4, 8, 2, &mut rng);
    let mut arena = ScratchArena::new();
    let mut state = gru.infer_zero_state(&mut arena, 3);
    let x = Array::zeros(&[3, 4]);
    gru.infer_step(&mut arena, &x, &mut state); // warm-up
    let pooled = arena.pooled();
    for _ in 0..10 {
        gru.infer_step(&mut arena, &x, &mut state);
        assert_eq!(arena.pooled(), pooled, "steady state must not allocate");
    }
}
