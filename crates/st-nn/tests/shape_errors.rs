//! Mis-shaped inputs are rejected at the layer boundary with a diagnostic
//! naming the offending layer — never a shape panic deep inside the GEMM /
//! conv kernels.

use st_nn::{BatchNorm2d, ConvBlock, Embedding, GruCell, Linear};
use st_tensor::{init, Array, Binder, Tape};

#[test]
#[should_panic(expected = "Linear 'dest.head'")]
fn linear_rejects_wrong_input_width() {
    let mut rng = init::rng(0);
    let l = Linear::new("dest.head", 3, 5, &mut rng);
    let tape = Tape::new();
    let b = Binder::new(&tape);
    let x = b.input(Array::zeros(&[4, 7]));
    let _ = l.forward(&b, x);
}

#[test]
#[should_panic(expected = "Linear 'dest.head'")]
fn linear_rejects_non_2d_input() {
    let mut rng = init::rng(0);
    let l = Linear::new("dest.head", 3, 5, &mut rng);
    let tape = Tape::new();
    let b = Binder::new(&tape);
    let x = b.input(Array::zeros(&[4, 3, 1]));
    let _ = l.forward(&b, x);
}

#[test]
#[should_panic(expected = "Linear 'bad'")]
fn linear_rejects_zero_dims_at_construction() {
    let mut rng = init::rng(0);
    let _ = Linear::new("bad", 0, 5, &mut rng);
}

#[test]
#[should_panic(expected = "GruCell 'route.gru'")]
fn gru_cell_rejects_wrong_input_width() {
    let mut rng = init::rng(0);
    let cell = GruCell::new("route.gru", 3, 5, &mut rng);
    let tape = Tape::new();
    let b = Binder::new(&tape);
    let x = b.input(Array::zeros(&[2, 4]));
    let h = b.input(Array::zeros(&[2, 5]));
    let _ = cell.step(&b, x, h);
}

#[test]
#[should_panic(expected = "GruCell 'route.gru'")]
fn gru_cell_rejects_mismatched_state() {
    let mut rng = init::rng(0);
    let cell = GruCell::new("route.gru", 3, 5, &mut rng);
    let tape = Tape::new();
    let b = Binder::new(&tape);
    let x = b.input(Array::zeros(&[2, 3]));
    // wrong hidden width AND wrong batch
    let h = b.input(Array::zeros(&[3, 4]));
    let _ = cell.step(&b, x, h);
}

#[test]
#[should_panic(expected = "ConvBlock 'cnn.b1'")]
fn conv_block_rejects_wrong_channel_count() {
    let mut rng = init::rng(0);
    let blk = ConvBlock::new("cnn.b1", 4, 8, 3, 1, 1, &mut rng);
    let tape = Tape::new();
    let b = Binder::new(&tape);
    let x = b.input(Array::zeros(&[2, 3, 8, 8]));
    let _ = blk.forward(&b, x, true);
}

#[test]
#[should_panic(expected = "ConvBlock 'cnn.b1'")]
fn conv_block_rejects_non_4d_input() {
    let mut rng = init::rng(0);
    let blk = ConvBlock::new("cnn.b1", 1, 4, 3, 1, 1, &mut rng);
    let tape = Tape::new();
    let b = Binder::new(&tape);
    let x = b.input(Array::zeros(&[2, 8]));
    let _ = blk.forward(&b, x, true);
}

#[test]
#[should_panic(expected = "BatchNorm2d 'cnn.b0.bn'")]
fn batchnorm_rejects_wrong_channel_count() {
    let bn = BatchNorm2d::new("cnn.b0.bn", 2);
    let tape = Tape::new();
    let b = Binder::new(&tape);
    let x = b.input(Array::zeros(&[1, 3, 2, 2]));
    let _ = bn.forward(&b, x, true);
}

#[test]
#[should_panic(expected = "in layer 'seg.emb'")]
fn embedding_rejects_out_of_range_index() {
    let mut rng = init::rng(0);
    let e = Embedding::new("seg.emb", 4, 2, &mut rng);
    let tape = Tape::new();
    let b = Binder::new(&tape);
    let _ = e.forward(&b, &[4]);
}
