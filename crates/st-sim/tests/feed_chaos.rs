//! Feed chaos plan: the live traffic state must converge to the clean
//! stream's state under duplicated, reordered, and past-horizon delivery.
//!
//! This is the deterministic delivery-fault suite for the streaming path:
//! `FeedFaultPlan` (st-core::faultinject) mangles the real dataset-derived
//! feed, and `VersionedTraffic` must reject every faulty delivery while
//! ending bit-identical to the clean replay.

use st_core::faultinject::FeedFaultPlan;
use st_core::livetraffic::{ApplyOutcome, VersionedTraffic};
use st_sim::{CityPreset, Dataset, TrafficFeed};

fn feed() -> TrafficFeed {
    let ds = Dataset::generate(&CityPreset::tiny_test(), 40, 11);
    TrafficFeed::from_dataset(&ds)
}

#[test]
fn mangled_dataset_feed_converges_to_clean_state() {
    let feed = feed();
    let plan = FeedFaultPlan::random(23, feed.len(), 0.1, 0.15, 0.05);
    let mangled = plan.mangle(feed.events(), feed.horizon_slots());
    assert!(mangled.len() > feed.len(), "plan injected no faults");

    let mut clean = VersionedTraffic::with_horizon(feed.horizon_slots());
    for ev in feed.events() {
        assert!(clean.apply(ev).is_applied());
    }

    let mut faulty = VersionedTraffic::with_horizon(feed.horizon_slots());
    let (mut dup, mut ooo, mut past) = (0usize, 0usize, 0usize);
    for ev in &mangled {
        match faulty.apply(ev) {
            ApplyOutcome::Applied { .. } => {}
            ApplyOutcome::Duplicate => dup += 1,
            ApplyOutcome::OutOfOrder => ooo += 1,
            ApplyOutcome::PastHorizon => past += 1,
        }
    }
    assert!(dup > 0, "no duplicate was delivered");
    assert!(ooo > 0, "no reordering was delivered");
    assert!(past > 0, "no past-horizon straggler was delivered");

    // Convergence: every slot's tensor and high-water seq match the clean
    // replay exactly.
    assert_eq!(clean.touched_slots(), faulty.touched_slots());
    for slot in 0..feed.horizon_slots() {
        assert_eq!(clean.tensor(slot), faulty.tensor(slot), "slot {slot}");
        assert_eq!(clean.last_seq(slot), faulty.last_seq(slot), "slot {slot}");
    }
    assert_eq!(clean.closed_segments(), faulty.closed_segments());
}

#[test]
fn replaying_the_whole_feed_twice_is_idempotent() {
    let feed = feed();
    let mut state = VersionedTraffic::with_horizon(feed.horizon_slots());
    for ev in feed.events() {
        assert!(state.apply(ev).is_applied());
    }
    let version_after_first = state.version();
    // at-least-once delivery: a full redelivery is all duplicates/stale
    for ev in feed.events() {
        assert!(!state.apply(ev).is_applied());
    }
    assert_eq!(
        state.version(),
        version_after_first,
        "version moved on replay"
    );
}
