//! Open-loop request-arrival profiles for load-generating the prediction
//! service.
//!
//! A serving benchmark must be *open-loop*: arrivals are drawn from a fixed
//! process independent of how fast the server answers, so queueing delay —
//! the thing overload actually produces — is measured instead of hidden by
//! closed-loop self-throttling. Two deterministic profiles:
//!
//! - [`poisson_arrivals`] — a homogeneous Poisson process at a fixed rate
//!   (exponential inter-arrival times), the nominal-load profile.
//! - [`rush_hour_arrivals`] — an *inhomogeneous* Poisson process whose rate
//!   follows the simulator's diurnal congestion profile
//!   ([`crate::TrafficModel::diurnal_factor`]) with one simulated day
//!   compressed into the benchmark window, so the morning/evening rush
//!   shows up as genuine burst load. Drawn by thinning against the peak
//!   rate, the standard exact sampler for inhomogeneous Poisson processes.
//!
//! Everything is seeded: same seed, same arrival times, bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traffic::{TrafficModel, DAY_SECS};

/// Arrival timestamps (seconds from benchmark start, strictly increasing)
/// of a homogeneous Poisson process at `rate_hz` over `[0, duration_s)`.
pub fn poisson_arrivals(rate_hz: f64, duration_s: f64, seed: u64) -> Vec<f64> {
    assert!(rate_hz > 0.0, "rate must be positive");
    assert!(duration_s > 0.0, "duration must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity((rate_hz * duration_s * 1.2) as usize + 4);
    let mut t = 0.0f64;
    loop {
        // Exponential(rate) inter-arrival via inverse transform; the `1-u`
        // keeps ln's argument in (0, 1] for u in [0, 1).
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / rate_hz;
        if t >= duration_s {
            return out;
        }
        out.push(t);
    }
}

/// Instantaneous arrival rate (Hz) of the rush-hour profile at benchmark
/// time `t` of `duration_s`: one simulated day compressed into the window,
/// with demand scaling from `base_rate_hz` off-peak up to
/// `base_rate_hz × peak_mult` at the height of the 8:00/18:00 rushes.
///
/// The simulator's diurnal factor is a *speed* multiplier in `(0, 1]`
/// (1 = free flow, minimum at rush hour); demand is its mirror image, so
/// the rate interpolates on `1 − factor` normalized by the profile's
/// deepest dip.
pub fn rush_hour_rate(base_rate_hz: f64, peak_mult: f64, t: f64, duration_s: f64) -> f64 {
    let sim_t = (t / duration_s) * DAY_SECS;
    let factor = TrafficModel::diurnal_factor(sim_t);
    // Deepest dip of the diurnal profile (at the 8:00 peak).
    let min_factor = TrafficModel::diurnal_factor(8.0 * 3600.0);
    let rush = ((1.0 - factor) / (1.0 - min_factor)).clamp(0.0, 1.0);
    base_rate_hz * (1.0 + (peak_mult - 1.0) * rush)
}

/// Arrival timestamps of the inhomogeneous rush-hour process over
/// `[0, duration_s)`: base rate `base_rate_hz` off-peak, bursting to
/// `base_rate_hz × peak_mult` at the compressed 8:00/18:00 rushes. Sampled
/// by thinning: candidates are drawn at the peak rate and accepted with
/// probability `rate(t) / peak`.
pub fn rush_hour_arrivals(
    base_rate_hz: f64,
    peak_mult: f64,
    duration_s: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(base_rate_hz > 0.0, "rate must be positive");
    assert!(peak_mult >= 1.0, "peak multiplier must be at least 1");
    assert!(duration_s > 0.0, "duration must be positive");
    let peak = base_rate_hz * peak_mult;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / peak;
        if t >= duration_s {
            return out;
        }
        let accept: f64 = rng.gen();
        if accept * peak < rush_hour_rate(base_rate_hz, peak_mult, t, duration_s) {
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_ordered() {
        let a = poisson_arrivals(50.0, 10.0, 7);
        let b = poisson_arrivals(50.0, 10.0, 7);
        assert_eq!(a, b, "same seed must give identical arrivals");
        let c = poisson_arrivals(50.0, 10.0, 8);
        assert_ne!(a, c, "different seeds must differ");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "arrivals must increase");
        assert!(a.iter().all(|&t| (0.0..10.0).contains(&t)));
    }

    #[test]
    fn poisson_count_matches_rate() {
        // λ·T = 2000 expected arrivals, sd ≈ 45: ±10% is > 4 sigma.
        let a = poisson_arrivals(200.0, 10.0, 3);
        let n = a.len() as f64;
        assert!((1800.0..2200.0).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn rush_hour_rate_peaks_at_compressed_rush() {
        let dur = 60.0;
        // 8:00 of a day compressed into 60 s lands at t = 60·8/24 = 20 s.
        let peak = rush_hour_rate(10.0, 4.0, 20.0, dur);
        let off = rush_hour_rate(10.0, 4.0, 60.0 * 3.0 / 24.0, dur); // 03:00
        assert!(peak > 3.9 * 10.0, "rush rate {peak} not near peak");
        assert!(off < 1.5 * 10.0, "off-peak rate {off} too high");
    }

    #[test]
    fn rush_hour_arrivals_burst_at_rush() {
        let dur = 60.0;
        let a = rush_hour_arrivals(50.0, 4.0, dur, 11);
        assert_eq!(a, rush_hour_arrivals(50.0, 4.0, dur, 11));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // Density in the compressed 7:00–9:00 window vs 2:00–4:00.
        let count = |lo: f64, hi: f64| a.iter().filter(|&&t| t >= lo && t < hi).count();
        let rush = count(dur * 7.0 / 24.0, dur * 9.0 / 24.0);
        let night = count(dur * 2.0 / 24.0, dur * 4.0 / 24.0);
        assert!(
            rush > 2 * night,
            "rush window ({rush}) not denser than night ({night})"
        );
    }
}
