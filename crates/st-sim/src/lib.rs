//! `st-sim`: the traffic & trip simulator standing in for the paper's
//! proprietary GPS datasets.
//!
//! The DiDi Chengdu and Harbin taxi datasets are not redistributable; this
//! crate generates synthetic equivalents in which the paper's three
//! explanatory factors — sequential habit, destination pull, and real-time
//! traffic — are *causally* load-bearing for route choice, so the relative
//! model ordering of the paper's evaluation is reproducible (see DESIGN.md
//! §1 for the substitution argument).
//!
//! - [`traffic`] — ground-truth time-varying congestion + observed traffic
//!   tensors on a cell grid.
//! - [`driver`] — the behavioural route-choice model generating trips.
//! - [`trips`] — GPS sampling, downsampling, destination hotspots.
//! - [`dataset`] — city presets (Rivertown ≈ Chengdu, Northport ≈ Harbin),
//!   full dataset assembly and time-based splits.
//! - [`feed`] — live traffic event stream replayed from the ground-truth
//!   process (observation sweeps, incidents, closures) for streaming-serving
//!   tests and benches.
//! - [`arrivals`] — open-loop Poisson / rush-hour request-arrival profiles
//!   for load-generating the prediction service.
//! - [`megacity`] — district-structured 10k–100k-segment worlds whose trips
//!   are generated *streaming*, never materialized in memory.
//! - [`store`] — sharded on-disk trip files with checksummed records and
//!   typed corruption errors; the batch source for streamed training.

pub mod arrivals;
pub mod dataset;
pub mod driver;
pub mod feed;
pub mod megacity;
pub mod store;
pub mod traffic;
pub mod trips;

pub use arrivals::{poisson_arrivals, rush_hour_arrivals, rush_hour_rate};
pub use dataset::{CityPreset, Dataset, Split, TripStats, SLOT_SECS, WINDOW_SECS};
pub use driver::{simulate_route, Attractiveness, DriverConfig};
pub use feed::{incident_event, TrafficFeed};
pub use megacity::{Megacity, MegacityConfig, SlotObs, StreamSummary};
pub use store::{TripStore, TripStoreError, TripStoreWriter};
pub use traffic::{CongestionEvent, TrafficConfig, TrafficGrid, TrafficModel, DAY_SECS};
pub use trips::{downsample, sample_gps, sample_hotspots, GpsPoint, Hotspot, Trajectory, Trip};
