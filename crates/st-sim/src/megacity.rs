//! District-structured megacity generation, streamed to disk.
//!
//! The paper's cities top out near Harbin's ~12.5k segments; the scale-out
//! work needs worlds an order of magnitude larger without an order of
//! magnitude more RAM. A [`Megacity`] is a jittered lattice partitioned
//! into rectangular *districts* whose borders are arterial corridors:
//! most trips stay inside one district (commutes, errands), a configurable
//! fraction crosses districts along the arterials — the access pattern that
//! makes row-sharded embedding tables pay off, because a minibatch of
//! intra-district trips touches a handful of shards, not the whole table.
//!
//! Trips are *streamed*: [`Megacity::stream_trips`] writes each generated
//! trip straight to a [`TripStoreWriter`](crate::store::TripStoreWriter)
//! and accumulates the per-slot traffic observations incrementally, so
//! peak memory is one trip plus the observation grids — never a
//! `Vec<Trip>` of the whole corpus.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use st_core::data::Example;
use st_roadnet::{grid_city, GridConfig, Point, RoadNetwork, SegmentIndex};

use crate::dataset::{SLOT_SECS, WINDOW_SECS};
use crate::driver::{simulate_route, Attractiveness, DriverConfig};
use crate::store::{TripStoreError, TripStoreWriter};
use crate::traffic::{TrafficConfig, TrafficGrid, TrafficModel, DAY_SECS};
use crate::trips::{gauss, sample_gps, Hotspot, Trip};

/// Parameters of a district-structured megacity.
#[derive(Debug, Clone)]
pub struct MegacityConfig {
    /// Districts along x.
    pub districts_x: usize,
    /// Districts along y.
    pub districts_y: usize,
    /// Intersections per district along x.
    pub district_nx: usize,
    /// Intersections per district along y.
    pub district_ny: usize,
    /// Block edge length (m).
    pub spacing_m: f64,
    /// Fraction of trips that cross district borders (the rest are
    /// intra-district).
    pub inter_district_frac: f64,
    /// Traffic observation grid width (cells).
    pub obs_width: usize,
    /// Traffic observation grid height (cells).
    pub obs_height: usize,
    /// GPS sampling period (s) — sparse by default; megacity corpora are
    /// storage-bound.
    pub gps_period: f64,
    /// GPS noise σ (m).
    pub gps_noise: f64,
    /// Traffic process settings.
    pub traffic: TrafficConfig,
    /// Driver behaviour settings.
    pub driver: DriverConfig,
}

impl MegacityConfig {
    /// A megacity sized to roughly `target_segments` directed segments
    /// (a full lattice has ~4·nx·ny; removals trim a few percent).
    /// Districts are ~10 intersections on a side, so `arterial_every`
    /// matches the district pitch and district borders are arterials.
    pub fn with_target_segments(target_segments: usize) -> Self {
        assert!(target_segments >= 64, "megacity needs >= 64 segments");
        let side = ((target_segments as f64 / 4.0).sqrt().round() as usize).max(4);
        let districts = (side / 10).max(1);
        let district_side = side.div_ceil(districts);
        Self {
            districts_x: districts,
            districts_y: districts,
            district_nx: district_side,
            district_ny: district_side,
            spacing_m: 200.0,
            inter_district_frac: 0.2,
            obs_width: 32,
            obs_height: 32,
            gps_period: 30.0,
            gps_noise: 10.0,
            traffic: TrafficConfig {
                days: 3,
                ..TrafficConfig::default()
            },
            driver: DriverConfig::default(),
        }
    }

    /// The road-network generator settings this config implies.
    pub fn grid(&self) -> GridConfig {
        GridConfig {
            nx: self.districts_x * self.district_nx,
            ny: self.districts_y * self.district_ny,
            spacing_m: self.spacing_m,
            jitter_frac: 0.12,
            removal_prob: 0.1,
            arterial_every: self.district_nx,
            local_speed: 8.0,
            arterial_speed: 15.0,
        }
    }

    /// Total district count.
    pub fn num_districts(&self) -> usize {
        self.districts_x * self.districts_y
    }
}

/// A generated megacity world: network, traffic process, districts.
pub struct Megacity {
    /// The road network.
    pub net: RoadNetwork,
    /// Ground-truth traffic process.
    pub traffic: TrafficModel,
    /// Observation grid for traffic tensors.
    pub grid: TrafficGrid,
    /// One destination hotspot per district.
    pub hotspots: Vec<Hotspot>,
    /// Maximum base speed (tensor normalization).
    pub max_speed: f64,
    cfg: MegacityConfig,
    attract: Attractiveness,
    index: SegmentIndex,
    /// Segments whose midpoint falls in each district.
    district_segs: Vec<Vec<usize>>,
    bb_min: Point,
    bb_max: Point,
}

/// What [`Megacity::stream_trips`] produced: counts plus the incrementally
/// accumulated per-slot traffic observations.
pub struct StreamSummary {
    /// Trips written to the store.
    pub trips: usize,
    /// Trips whose origin and destination districts coincide.
    pub intra_district: usize,
    /// Trips crossing a district border.
    pub inter_district: usize,
    /// Per-slot observation accumulator (finalize with [`SlotObs::tensors`]).
    pub slot_obs: SlotObs,
}

impl Megacity {
    /// Generate the world (network, traffic, hotspots) for `cfg`.
    pub fn generate(cfg: &MegacityConfig, seed: u64) -> Self {
        let grid_cfg = cfg.grid();
        let net = renumber_district_major(&grid_city(&grid_cfg, seed), cfg);
        let traffic = TrafficModel::generate(&net, &cfg.traffic, seed);
        let attract = Attractiveness::generate(&net, seed);
        let grid = TrafficGrid::new(&net, cfg.obs_width, cfg.obs_height);
        let index = SegmentIndex::build(&net, cfg.spacing_m.max(100.0));
        let (bb_min, bb_max) = net.bounding_box();
        let max_speed = (0..net.num_segments())
            .map(|s| net.segment(s).base_speed)
            .fold(0.0f64, f64::max);

        // Bucket segments into districts by midpoint; coordinates are
        // jittered, so clamp into range at the borders.
        let n_districts = cfg.num_districts();
        let mut district_segs: Vec<Vec<usize>> = vec![Vec::new(); n_districts];
        for s in 0..net.num_segments() {
            let d = district_of(cfg, &bb_min, &bb_max, &net.midpoint(s));
            district_segs[d].push(s);
        }

        // One hotspot per district: the midpoint of a random district
        // segment, scattered at ~1/6 of the district diameter.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4D45_6741);
        let sigma = cfg.spacing_m * (cfg.district_nx.min(cfg.district_ny) as f64) / 6.0;
        let hotspots = district_segs
            .iter()
            .map(|segs| {
                let center = if segs.is_empty() {
                    bb_min.lerp(&bb_max, 0.5)
                } else {
                    net.midpoint(segs[rng.gen_range(0..segs.len())])
                };
                Hotspot {
                    center,
                    weight: rng.gen_range(0.5..1.5),
                    sigma,
                }
            })
            .collect();

        Self {
            net,
            traffic,
            grid,
            hotspots,
            max_speed,
            cfg: cfg.clone(),
            attract,
            index,
            district_segs,
            bb_min,
            bb_max,
        }
    }

    /// The configuration this world was generated from.
    pub fn config(&self) -> &MegacityConfig {
        &self.cfg
    }

    /// District of a coordinate.
    pub fn district_of(&self, p: &Point) -> usize {
        district_of(&self.cfg, &self.bb_min, &self.bb_max, p)
    }

    /// Generate `n_trips` trips and stream each straight into `writer`
    /// (the caller `finish()`es it). Trip start times follow a simple
    /// diurnal profile; origins are uniform within the origin district,
    /// destinations scatter around the destination district's hotspot.
    pub fn stream_trips(
        &self,
        n_trips: usize,
        seed: u64,
        writer: &mut TripStoreWriter,
    ) -> Result<StreamSummary, TripStoreError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7281_95C1);
        let horizon = self.traffic.horizon();
        let mut slot_obs = SlotObs::new(&self.grid, horizon);
        let n_districts = self.cfg.num_districts();
        let (mut trips, mut intra, mut inter) = (0usize, 0usize, 0usize);
        let mut attempts = 0usize;
        while trips < n_trips && attempts < n_trips * 6 {
            attempts += 1;
            let start_time = diurnal_start(horizon, &mut rng);
            let od = rng.gen_range(0..n_districts);
            if self.district_segs[od].is_empty() {
                continue;
            }
            let cross = n_districts > 1 && rng.gen::<f64>() < self.cfg.inter_district_frac;
            let dd = if cross {
                // uniform over the *other* districts
                let mut d = rng.gen_range(0..n_districts - 1);
                if d >= od {
                    d += 1;
                }
                d
            } else {
                od
            };
            let origin = self.district_segs[od][rng.gen_range(0..self.district_segs[od].len())];
            let h = &self.hotspots[dd];
            let raw = Point::new(
                h.center.x + gauss(&mut rng) * h.sigma,
                h.center.y + gauss(&mut rng) * h.sigma,
            );
            let dest_coord = Point::new(
                raw.x.clamp(self.bb_min.x, self.bb_max.x),
                raw.y.clamp(self.bb_min.y, self.bb_max.y),
            );
            let Some(dest_seg) = self.index.nearest(&self.net, &dest_coord) else {
                continue;
            };
            if dest_seg == origin {
                continue;
            }
            let Some(route) = simulate_route(
                &self.net,
                &self.traffic,
                &self.attract,
                &self.cfg.driver,
                origin,
                dest_seg,
                start_time,
                &mut rng,
            ) else {
                continue;
            };
            if route.len() < 3 {
                continue;
            }
            let (gps, end_time) = sample_gps(
                &self.net,
                &self.traffic,
                &route,
                start_time,
                self.cfg.gps_period,
                self.cfg.gps_noise,
                &mut rng,
            );
            for gp in &gps {
                slot_obs.record(&self.grid, &gp.p, gp.t, gp.speed);
            }
            let trip = Trip {
                route,
                start_time,
                end_time,
                dest_coord,
                gps,
                hotspot: dd,
            };
            writer.append(&trip)?;
            trips += 1;
            if od == dd {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        Ok(StreamSummary {
            trips,
            intra_district: intra,
            inter_district: inter,
            slot_obs,
        })
    }

    /// Normalize a coordinate into `[0, 1]²` (network bounding box).
    pub fn unit_coord(&self, p: &Point) -> [f32; 2] {
        [
            ((p.x - self.bb_min.x) / (self.bb_max.x - self.bb_min.x)) as f32,
            ((p.y - self.bb_min.y) / (self.bb_max.y - self.bb_min.y)) as f32,
        ]
    }

    /// The traffic-tensor slot a start time falls into, clamped into
    /// `[0, n_slots)`.
    pub fn slot_of(&self, t: f64, n_slots: usize) -> usize {
        if !t.is_finite() || t < 0.0 {
            return 0;
        }
        ((t / SLOT_SECS).floor() as usize).min(n_slots - 1)
    }

    /// Build a training [`Example`] from a streamed trip, sharing the
    /// per-slot tensors produced by [`SlotObs::tensors`]. `None` when the
    /// route fails adjacency validation (cannot happen for trips this world
    /// generated, but the store is an external input).
    pub fn example(&self, trip: &Trip, tensors: &[Arc<Vec<f32>>]) -> Option<Example> {
        let slot = self.slot_of(trip.start_time, tensors.len());
        Example::new(
            &self.net,
            trip.route.clone(),
            self.unit_coord(&trip.dest_coord),
            tensors[slot].clone(),
            slot,
        )
    }
}

/// Rebuild `net` with segments numbered district-major: all of district 0's
/// segments first, then district 1's, and so on (original order within a
/// district). Embedding shards are row ranges, so this aligns them with
/// spatial locality — a minibatch of mostly intra-district trips touches the
/// blocks of its districts, and districts with no training traffic stay
/// gradient-cold. Vertices, geometry, and reverse links are preserved; only
/// segment ids change.
fn renumber_district_major(net: &RoadNetwork, cfg: &MegacityConfig) -> RoadNetwork {
    let (bb_min, bb_max) = net.bounding_box();
    let mut order: Vec<usize> = (0..net.num_segments()).collect();
    order.sort_by_key(|&s| (district_of(cfg, &bb_min, &bb_max, &net.midpoint(s)), s));

    let mut out = RoadNetwork::new();
    for v in 0..net.num_vertices() {
        out.add_vertex(net.vertex(v));
    }
    // A segment and its reverse share a midpoint, hence a district, so
    // adding the pair together keeps the order district-major.
    let mut added = vec![false; net.num_segments()];
    for &old in &order {
        if added[old] {
            continue;
        }
        let seg = net.segment(old);
        match net.reverse_of(old) {
            Some(rev) => {
                out.add_twoway(seg.from, seg.to, seg.base_speed);
                added[rev] = true;
            }
            None => {
                out.add_segment(seg.from, seg.to, seg.base_speed);
            }
        }
        added[old] = true;
    }
    out.freeze();
    out
}

fn district_of(cfg: &MegacityConfig, bb_min: &Point, bb_max: &Point, p: &Point) -> usize {
    let fx = ((p.x - bb_min.x) / (bb_max.x - bb_min.x)).clamp(0.0, 1.0);
    let fy = ((p.y - bb_min.y) / (bb_max.y - bb_min.y)).clamp(0.0, 1.0);
    let dx = ((fx * cfg.districts_x as f64) as usize).min(cfg.districts_x - 1);
    let dy = ((fy * cfg.districts_y as f64) as usize).min(cfg.districts_y - 1);
    dy * cfg.districts_x + dx
}

/// Diurnal start-time sampler (morning/evening peaks plus background).
fn diurnal_start(horizon: f64, rng: &mut StdRng) -> f64 {
    let days = (horizon / DAY_SECS).floor().max(1.0);
    let day = rng.gen_range(0..days as usize) as f64;
    let hour = loop {
        let h: f64 = match rng.gen_range(0..3) {
            0 => 8.0 + gauss(rng) * 1.5,
            1 => 18.0 + gauss(rng) * 1.8,
            _ => rng.gen_range(6.0..23.0),
        };
        if (0.0..24.0).contains(&h) {
            break h;
        }
    };
    (day * DAY_SECS + hour * 3600.0).min(horizon - 1.0)
}

/// Incremental per-slot traffic observation accumulator — the streaming
/// twin of [`TrafficGrid::tensor_from_observations`], same mean/normalize
/// arithmetic, but fed one GPS point at a time.
pub struct SlotObs {
    n_cells: usize,
    n_slots: usize,
    sum: Vec<f64>,
    count: Vec<u32>,
}

impl SlotObs {
    /// Accumulator covering `horizon` seconds of slots on `grid`.
    pub fn new(grid: &TrafficGrid, horizon: f64) -> Self {
        let n_slots = (horizon / SLOT_SECS).ceil() as usize + 1;
        let n_cells = grid.len();
        Self {
            n_cells,
            n_slots,
            sum: vec![0.0; n_cells * n_slots],
            count: vec![0; n_cells * n_slots],
        }
    }

    /// Number of slots covered.
    pub fn num_slots(&self) -> usize {
        self.n_slots
    }

    /// Record one observation: a point at time `t` is visible to every slot
    /// whose look-back window `[slot·SLOT − Δ, slot·SLOT)` contains `t`
    /// (same visibility rule as the in-memory dataset builder).
    pub fn record(&mut self, grid: &TrafficGrid, p: &Point, t: f64, speed: f64) {
        let Some(cell) = grid.cell_of(p) else {
            return;
        };
        if !t.is_finite() || t < 0.0 {
            return;
        }
        let first = (t / SLOT_SECS).floor() as usize + 1;
        let last = (((t + WINDOW_SECS) / SLOT_SECS).floor() as usize).min(self.n_slots - 1);
        if first > last {
            return;
        }
        for slot in first..=last {
            let i = slot * self.n_cells + cell;
            self.sum[i] += speed;
            self.count[i] += 1;
        }
    }

    /// Finalize into shared per-slot tensors (per-cell mean speed over
    /// `max_speed`, 0 where unobserved), ready for [`Example`] building.
    pub fn tensors(&self, max_speed: f64) -> Vec<Arc<Vec<f32>>> {
        (0..self.n_slots)
            .map(|slot| {
                let base = slot * self.n_cells;
                Arc::new(
                    (0..self.n_cells)
                        .map(|c| {
                            let n = self.count[base + c];
                            if n == 0 {
                                0.0
                            } else {
                                ((self.sum[base + c] / n as f64) / max_speed).min(2.0) as f32
                            }
                        })
                        .collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripStore;

    fn small_cfg() -> MegacityConfig {
        MegacityConfig {
            districts_x: 2,
            districts_y: 2,
            district_nx: 5,
            district_ny: 5,
            spacing_m: 150.0,
            inter_district_frac: 0.25,
            obs_width: 8,
            obs_height: 8,
            gps_period: 20.0,
            gps_noise: 8.0,
            traffic: TrafficConfig {
                days: 1,
                events_per_day: 6,
                radius_range: (150.0, 500.0),
                ..TrafficConfig::default()
            },
            driver: DriverConfig::default(),
        }
    }

    #[test]
    fn target_sizing_lands_near_request() {
        for target in [1000usize, 10_000, 50_000] {
            let cfg = MegacityConfig::with_target_segments(target);
            let city = Megacity::generate(&cfg, 5);
            let n = city.net.num_segments();
            assert!(
                n as f64 > target as f64 * 0.6 && (n as f64) < target as f64 * 1.6,
                "target {target}: got {n} segments"
            );
            if target >= 10_000 {
                break; // 50k generation is bench territory, not unit-test
            }
        }
    }

    #[test]
    fn trips_mostly_stay_in_district() {
        let city = Megacity::generate(&small_cfg(), 11);
        let dir = std::env::temp_dir().join(format!("st-sim-mega-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = TripStoreWriter::create(&dir, 50).unwrap();
        let summary = city.stream_trips(120, 1, &mut w).unwrap();
        w.finish().unwrap();
        assert!(
            summary.trips >= 80,
            "only {} trips generated",
            summary.trips
        );
        assert!(
            summary.intra_district > summary.inter_district,
            "districts not load-bearing: {} intra vs {} inter",
            summary.intra_district,
            summary.inter_district
        );
        assert!(summary.inter_district > 0, "no arterial crossings at all");

        // round-trip through the store and rebuild examples
        let store = TripStore::open(&dir).unwrap();
        assert_eq!(store.len(), summary.trips);
        let tensors = summary.slot_obs.tensors(city.max_speed);
        let mut n_examples = 0usize;
        for batch in store.batches(32) {
            for trip in batch.unwrap() {
                assert!(city.net.is_valid_route(&trip.route));
                let ex = city.example(&trip, &tensors).expect("example builds");
                assert_eq!(ex.route.len(), trip.route.len());
                n_examples += 1;
            }
        }
        assert_eq!(n_examples, summary.trips);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn districts_partition_the_network() {
        let cfg = small_cfg();
        let city = Megacity::generate(&cfg, 3);
        let total: usize = city.district_segs.iter().map(Vec::len).sum();
        assert_eq!(total, city.net.num_segments());
        assert!(city.district_segs.iter().all(|d| !d.is_empty()));
        assert_eq!(city.hotspots.len(), cfg.num_districts());
    }

    /// Segment ids are district-major (the embedding-shard locality
    /// contract): district indices never decrease along the id axis, so
    /// each district occupies one contiguous id range.
    #[test]
    fn segment_ids_are_district_major() {
        let cfg = small_cfg();
        let city = Megacity::generate(&cfg, 3);
        assert!(cfg.num_districts() > 1, "test needs several districts");
        let districts: Vec<usize> = (0..city.net.num_segments())
            .map(|s| city.district_of(&city.net.midpoint(s)))
            .collect();
        assert!(
            districts.windows(2).all(|w| w[0] <= w[1]),
            "segment ids are not district-major"
        );
        // Renumbering must not have broken reverse links or routing.
        let rev = city.net.reverse_of(0).expect("two-way road");
        assert_eq!(city.net.reverse_of(rev), Some(0));
    }
}
