//! City presets and full dataset generation.
//!
//! Two synthetic cities play the roles of the paper's datasets (§V-A):
//!
//! - **Rivertown** ≈ Chengdu: compact grid, dense GPS sampling, short trips.
//! - **Northport** ≈ Harbin: larger and sparser, 30 s sampling, long trips.
//!
//! A [`Dataset`] bundles the road network, the ground-truth traffic process,
//! the generated trips (sorted by start time), the per-slot observed traffic
//! tensors, and time-based train/validation/test splits (the paper splits by
//! days; we split by simulated time in the same proportions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use st_roadnet::{grid_city, GridConfig, Point, RoadNetwork, SegmentIndex};

use crate::driver::{simulate_route, Attractiveness, DriverConfig};
use crate::traffic::{TrafficConfig, TrafficGrid, TrafficModel, DAY_SECS};
use crate::trips::{gauss, sample_gps, sample_hotspots, Hotspot, Trip};

/// Everything needed to generate one synthetic city's dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityPreset {
    /// City name used in reports.
    pub name: String,
    /// Road-network generator settings.
    pub grid: GridConfig,
    /// Traffic process settings.
    pub traffic: TrafficConfig,
    /// Driver behaviour settings.
    pub driver: DriverConfig,
    /// Number of destination hotspots (ground truth; models don't see this).
    pub n_hotspots: usize,
    /// Traffic observation grid width (cells).
    pub obs_width: usize,
    /// Traffic observation grid height (cells).
    pub obs_height: usize,
    /// GPS sampling period (s).
    pub gps_period: f64,
    /// GPS noise σ (m).
    pub gps_noise: f64,
}

impl CityPreset {
    /// The Chengdu-like compact city.
    pub fn rivertown() -> Self {
        Self {
            name: "Rivertown".into(),
            grid: GridConfig {
                nx: 13,
                ny: 13,
                spacing_m: 250.0,
                jitter_frac: 0.15,
                removal_prob: 0.18,
                arterial_every: 4,
                local_speed: 8.0,
                arterial_speed: 14.0,
            },
            traffic: TrafficConfig::default(),
            driver: DriverConfig::default(),
            n_hotspots: 8,
            obs_width: 16,
            obs_height: 16,
            gps_period: 9.0,
            gps_noise: 8.0,
        }
    }

    /// The Harbin-like larger city with longer trips and sparser sampling.
    pub fn northport() -> Self {
        Self {
            name: "Northport".into(),
            grid: GridConfig {
                nx: 18,
                ny: 16,
                spacing_m: 350.0,
                jitter_frac: 0.15,
                removal_prob: 0.2,
                arterial_every: 5,
                local_speed: 9.0,
                arterial_speed: 16.0,
            },
            traffic: TrafficConfig {
                events_per_day: 32,
                radius_range: (600.0, 2000.0),
                ..TrafficConfig::default()
            },
            driver: DriverConfig::default(),
            n_hotspots: 12,
            obs_width: 20,
            obs_height: 18,
            gps_period: 30.0,
            gps_noise: 10.0,
        }
    }

    /// A miniature city for unit/integration tests.
    pub fn tiny_test() -> Self {
        Self {
            name: "Tinyville".into(),
            grid: GridConfig {
                nx: 6,
                ny: 6,
                spacing_m: 150.0,
                jitter_frac: 0.1,
                removal_prob: 0.1,
                arterial_every: 3,
                local_speed: 8.0,
                arterial_speed: 13.0,
            },
            traffic: TrafficConfig {
                days: 2,
                events_per_day: 10,
                radius_range: (150.0, 400.0),
                ..TrafficConfig::default()
            },
            driver: DriverConfig::default(),
            n_hotspots: 4,
            obs_width: 8,
            obs_height: 8,
            gps_period: 8.0,
            gps_noise: 6.0,
        }
    }
}

/// Slot length for sharing traffic tensors (paper: 20 minutes, §V-A).
pub const SLOT_SECS: f64 = 1200.0;
/// Observation window Δ before a trip's start (paper: 30 minutes, §V-A).
pub const WINDOW_SECS: f64 = 1800.0;

/// A fully generated city dataset.
#[derive(Serialize, Deserialize)]
pub struct Dataset {
    /// City name.
    pub name: String,
    /// The road network.
    pub net: RoadNetwork,
    /// Ground-truth traffic process.
    pub traffic: TrafficModel,
    /// Observation grid for traffic tensors.
    pub grid: TrafficGrid,
    /// Ground-truth destination hotspots.
    pub hotspots: Vec<Hotspot>,
    /// All trips, sorted by start time.
    pub trips: Vec<Trip>,
    /// Per-slot observed traffic tensors (`[obs_height × obs_width]` each).
    tensors: Vec<Vec<f32>>,
    /// Maximum base speed (used for tensor normalization).
    pub max_speed: f64,
    /// Preset used for generation.
    pub preset: CityPreset,
}

impl Dataset {
    /// Generate a dataset of `n_trips` trips with the given seed.
    ///
    /// ```
    /// use st_sim::{CityPreset, Dataset};
    ///
    /// let ds = Dataset::generate(&CityPreset::tiny_test(), 25, 1);
    /// assert!(ds.trips.len() >= 20);
    /// let split = ds.default_split();
    /// assert_eq!(
    ///     split.train.len() + split.val.len() + split.test.len(),
    ///     ds.trips.len()
    /// );
    /// ```
    pub fn generate(preset: &CityPreset, n_trips: usize, seed: u64) -> Self {
        let net = grid_city(&preset.grid, seed);
        let traffic = TrafficModel::generate(&net, &preset.traffic, seed);
        let attract = Attractiveness::generate(&net, seed);
        let grid = TrafficGrid::new(&net, preset.obs_width, preset.obs_height);
        let index = SegmentIndex::build(&net, preset.grid.spacing_m.max(100.0));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DA7_A5E7);
        let hotspots = sample_hotspots(&net, preset.n_hotspots, &mut rng);
        let hs_weights: Vec<f64> = hotspots.iter().map(|h| h.weight).collect();
        let horizon = traffic.horizon();
        let max_speed = (0..net.num_segments())
            .map(|s| net.segment(s).base_speed)
            .fold(0.0f64, f64::max);

        let mut trips = Vec::with_capacity(n_trips);
        let mut attempts = 0usize;
        while trips.len() < n_trips && attempts < n_trips * 4 {
            attempts += 1;
            let start_time = sample_start_time(horizon, &mut rng);
            // Origin: uniformly random segment, mildly biased toward hotspots
            // half the time (taxis pick up where people are).
            let origin = if rng.gen::<f64>() < 0.5 {
                let h = pick_weighted(&hs_weights, &mut rng);
                let p = jitter(&hotspots[h].center, hotspots[h].sigma * 2.0, &mut rng);
                match index.nearest(&net, &p) {
                    Some(seg) => seg,
                    None => continue, // empty network: no trip possible
                }
            } else {
                rng.gen_range(0..net.num_segments())
            };
            // Destination: a hotspot plus scatter. The *coordinate* is the
            // observation; the driver steers to the nearest segment.
            let h = pick_weighted(&hs_weights, &mut rng);
            let (bb_min, bb_max) = net.bounding_box();
            let raw = jitter(&hotspots[h].center, hotspots[h].sigma, &mut rng);
            let dest_coord = Point::new(
                raw.x.clamp(bb_min.x, bb_max.x),
                raw.y.clamp(bb_min.y, bb_max.y),
            );
            let Some(dest_seg) = index.nearest(&net, &dest_coord) else {
                continue;
            };
            if dest_seg == origin {
                continue;
            }
            let Some(route) = simulate_route(
                &net,
                &traffic,
                &attract,
                &preset.driver,
                origin,
                dest_seg,
                start_time,
                &mut rng,
            ) else {
                continue;
            };
            // Filter short trips (paper's Table III: minimum distance 1 km).
            if net.route_length(&route) < (preset.grid.spacing_m * 2.0).max(1000.0) {
                continue;
            }
            let (gps, end_time) = sample_gps(
                &net,
                &traffic,
                &route,
                start_time,
                preset.gps_period,
                preset.gps_noise,
                &mut rng,
            );
            trips.push(Trip {
                route,
                start_time,
                end_time,
                dest_coord,
                gps,
                hotspot: h,
            });
        }
        trips.sort_by(|a, b| a.start_time.total_cmp(&b.start_time));

        // Per-slot traffic tensors: observations from every vehicle active in
        // [slot_start − Δ, slot_start). This is "real-time" sensing: the
        // fleet's own GPS points, as in the paper (§IV-D).
        let n_slots = (horizon / SLOT_SECS).ceil() as usize + 1;
        let mut per_slot_obs: Vec<Vec<(Point, f64)>> = vec![Vec::new(); n_slots];
        for trip in &trips {
            for gp in &trip.gps {
                // A point at time t is visible to every slot whose window
                // [slot*SLOT − Δ, slot*SLOT) contains t.
                let first = (gp.t / SLOT_SECS).floor() as usize + 1;
                let last = ((gp.t + WINDOW_SECS) / SLOT_SECS).floor() as usize;
                let last = last.min(n_slots - 1);
                if first <= last {
                    for obs in &mut per_slot_obs[first..=last] {
                        obs.push((gp.p, gp.speed));
                    }
                }
            }
        }
        let tensors = per_slot_obs
            .iter()
            .map(|obs| grid.tensor_from_observations(obs, max_speed))
            .collect();

        Self {
            name: preset.name.clone(),
            net,
            traffic,
            grid,
            hotspots,
            trips,
            tensors,
            max_speed,
            preset: preset.clone(),
        }
    }

    /// The traffic-tensor slot a start time falls into, or `None` if `t`
    /// lies outside the simulated horizon (negative or past the last slot).
    pub fn try_slot_of(&self, t: f64) -> Option<usize> {
        if !t.is_finite() || t < 0.0 {
            return None;
        }
        let slot = (t / SLOT_SECS).floor() as usize;
        (slot < self.tensors.len()).then_some(slot)
    }

    /// The traffic-tensor slot a start time falls into, clamped into range.
    ///
    /// Out-of-horizon times (a live feed running past the simulated horizon)
    /// are clamped to the nearest valid slot — but no longer *silently*: the
    /// `sim.slot_of.clamped` counter increments and a one-shot warning fires,
    /// so a deployment serving stale boundary tensors is visible. Callers
    /// that need to distinguish use [`Self::try_slot_of`].
    pub fn slot_of(&self, t: f64) -> usize {
        match self.try_slot_of(t) {
            Some(slot) => slot,
            None => {
                st_obs::counter("sim.slot_of.clamped").inc();
                st_obs::warn_once(
                    "sim.slot_of.clamped",
                    "slot_of: time outside simulated horizon, clamping to boundary slot",
                );
                if t < 0.0 {
                    0
                } else {
                    self.tensors.len() - 1
                }
            }
        }
    }

    /// The observed traffic tensor for a slot, `[obs_height × obs_width]`
    /// row-major.
    pub fn traffic_tensor(&self, slot: usize) -> &[f32] {
        &self.tensors[slot]
    }

    /// Number of traffic slots.
    pub fn num_slots(&self) -> usize {
        self.tensors.len()
    }

    /// Normalize a coordinate into `[0, 1]²` using the network bounding box.
    pub fn unit_coord(&self, p: &Point) -> [f32; 2] {
        let (min, max) = self.net.bounding_box();
        [
            ((p.x - min.x) / (max.x - min.x)) as f32,
            ((p.y - min.y) / (max.y - min.y)) as f32,
        ]
    }

    /// Split trip indices by start time into train/validation/test with the
    /// paper's proportions (Chengdu: 8/2/5 days ⇒ ~53/13/33%).
    pub fn split(&self, train_frac: f64, val_frac: f64) -> Split {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
        let n = self.trips.len();
        let train_end = (n as f64 * train_frac) as usize;
        let val_end = (n as f64 * (train_frac + val_frac)) as usize;
        Split {
            train: (0..train_end).collect(),
            val: (train_end..val_end).collect(),
            test: (val_end..n).collect(),
        }
    }

    /// The default paper-proportioned split.
    pub fn default_split(&self) -> Split {
        self.split(0.55, 0.12)
    }

    /// Basic statistics over trips (for Table III).
    pub fn trip_stats(&self) -> TripStats {
        let mut dist = Vec::with_capacity(self.trips.len());
        let mut nseg = Vec::with_capacity(self.trips.len());
        for t in &self.trips {
            dist.push(self.net.route_length(&t.route) / 1000.0);
            nseg.push(t.route.len());
        }
        let sum_d: f64 = dist.iter().sum();
        let sum_n: usize = nseg.iter().sum();
        TripStats {
            n_trips: self.trips.len(),
            min_km: dist.iter().copied().fold(f64::INFINITY, f64::min),
            max_km: dist.iter().copied().fold(0.0, f64::max),
            mean_km: sum_d / dist.len().max(1) as f64,
            min_segments: nseg.iter().copied().min().unwrap_or(0),
            max_segments: nseg.iter().copied().max().unwrap_or(0),
            mean_segments: sum_n as f64 / nseg.len().max(1) as f64,
        }
    }
}

/// Time-ordered index split.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training trip indices (earliest).
    pub train: Vec<usize>,
    /// Validation trip indices.
    pub val: Vec<usize>,
    /// Test trip indices (latest).
    pub test: Vec<usize>,
}

/// Summary statistics matching the paper's Table III.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TripStats {
    /// Number of trips.
    pub n_trips: usize,
    /// Minimum travel distance (km).
    pub min_km: f64,
    /// Maximum travel distance (km).
    pub max_km: f64,
    /// Mean travel distance (km).
    pub mean_km: f64,
    /// Minimum number of road segments.
    pub min_segments: usize,
    /// Maximum number of road segments.
    pub max_segments: usize,
    /// Mean number of road segments.
    pub mean_segments: f64,
}

/// Diurnal start-time sampler: uniform day, hours drawn from a mixture with
/// morning/evening peaks.
fn sample_start_time(horizon: f64, rng: &mut StdRng) -> f64 {
    let days = (horizon / DAY_SECS).floor().max(1.0);
    let day = rng.gen_range(0..days as usize) as f64;
    let hour = loop {
        let h: f64 = match rng.gen_range(0..3) {
            0 => 8.0 + gauss(rng) * 1.5,   // morning peak
            1 => 18.0 + gauss(rng) * 1.8,  // evening peak
            _ => rng.gen_range(6.0..23.0), // background
        };
        if (0.0..24.0).contains(&h) {
            break h;
        }
    };
    (day * DAY_SECS + hour * 3600.0).min(horizon - 1.0)
}

fn pick_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

fn jitter(p: &Point, sigma: f64, rng: &mut StdRng) -> Point {
    Point::new(p.x + gauss(rng) * sigma, p.y + gauss(rng) * sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::generate(&CityPreset::tiny_test(), 120, 7)
    }

    #[test]
    fn generates_requested_trip_count() {
        let ds = tiny();
        assert!(ds.trips.len() >= 100, "only {} trips", ds.trips.len());
        for t in &ds.trips {
            assert!(ds.net.is_valid_route(&t.route), "invalid route");
            assert!(t.end_time > t.start_time);
            assert!(!t.gps.is_empty());
        }
    }

    #[test]
    fn trips_sorted_by_time() {
        let ds = tiny();
        for w in ds.trips.windows(2) {
            assert!(w[0].start_time <= w[1].start_time);
        }
    }

    #[test]
    fn split_is_a_partition_in_time_order() {
        let ds = tiny();
        let sp = ds.default_split();
        let total = sp.train.len() + sp.val.len() + sp.test.len();
        assert_eq!(total, ds.trips.len());
        assert!(!sp.train.is_empty() && !sp.test.is_empty());
        // train strictly precedes val precedes test in time
        let t_train = ds.trips[*sp.train.last().unwrap()].start_time;
        let t_test = ds.trips[sp.test[0]].start_time;
        assert!(t_train <= t_test);
    }

    #[test]
    fn tensors_have_grid_size_and_observations() {
        let ds = tiny();
        let sizes: Vec<usize> = (0..ds.num_slots())
            .map(|s| ds.traffic_tensor(s).len())
            .collect();
        assert!(sizes.iter().all(|&s| s == ds.grid.len()));
        // at least one slot has nonzero observations
        let nonzero = (0..ds.num_slots()).any(|s| ds.traffic_tensor(s).iter().any(|&v| v > 0.0));
        assert!(nonzero, "no traffic observations in any slot");
    }

    #[test]
    fn trip_slot_tensor_reflects_recent_past_only() {
        let ds = tiny();
        let trip = &ds.trips[ds.trips.len() / 2];
        let slot = ds.slot_of(trip.start_time);
        // the tensor must exist and the window must strictly precede the slot
        assert!(slot < ds.num_slots());
        let slot_start = slot as f64 * SLOT_SECS;
        assert!(trip.start_time >= slot_start);
    }

    #[test]
    fn slot_of_clamps_loudly_outside_the_horizon() {
        let ds = tiny();
        // in-range: typed and clamping paths agree, no counter movement
        let t_ok = 1500.0;
        assert_eq!(ds.try_slot_of(t_ok), Some(1));
        let before = st_obs::counter("sim.slot_of.clamped").get();
        assert_eq!(ds.slot_of(t_ok), 1);
        assert_eq!(st_obs::counter("sim.slot_of.clamped").get(), before);
        // past-horizon: typed path reports None, clamping path counts
        let t_far = ds.traffic.horizon() * 10.0;
        assert_eq!(ds.try_slot_of(t_far), None);
        assert_eq!(ds.slot_of(t_far), ds.num_slots() - 1);
        assert_eq!(st_obs::counter("sim.slot_of.clamped").get(), before + 1);
        // negative times clamp to slot 0, also counted
        assert_eq!(ds.try_slot_of(-5.0), None);
        assert_eq!(ds.slot_of(-5.0), 0);
        assert_eq!(st_obs::counter("sim.slot_of.clamped").get(), before + 2);
    }

    #[test]
    fn unit_coords_in_unit_square() {
        let ds = tiny();
        for t in &ds.trips {
            let c = ds.unit_coord(&t.dest_coord);
            // dest coords can scatter slightly beyond the bbox; allow margin
            assert!(c[0] > -0.5 && c[0] < 1.5);
            assert!(c[1] > -0.5 && c[1] < 1.5);
        }
    }

    #[test]
    fn stats_are_consistent() {
        let ds = tiny();
        let st = ds.trip_stats();
        assert_eq!(st.n_trips, ds.trips.len());
        assert!(st.min_km <= st.mean_km && st.mean_km <= st.max_km);
        assert!(st.min_segments <= st.max_segments);
        assert!(st.mean_segments >= 2.0);
    }

    #[test]
    fn deterministic_generation() {
        let a = Dataset::generate(&CityPreset::tiny_test(), 30, 3);
        let b = Dataset::generate(&CityPreset::tiny_test(), 30, 3);
        assert_eq!(a.trips.len(), b.trips.len());
        for (x, y) in a.trips.iter().zip(&b.trips) {
            assert_eq!(x.route, y.route);
            assert_eq!(x.start_time, y.start_time);
        }
    }

    #[test]
    fn destinations_cluster_at_hotspots() {
        let ds = tiny();
        // mean distance from dest coord to its generating hotspot should be
        // around sigma, far below the city diameter
        let mut total = 0.0;
        for t in &ds.trips {
            total += t.dest_coord.dist(&ds.hotspots[t.hotspot].center);
        }
        let mean = total / ds.trips.len() as f64;
        let (min, max) = ds.net.bounding_box();
        let diag = min.dist(&max);
        assert!(
            mean < diag / 3.0,
            "destinations not clustered: {mean} vs {diag}"
        );
    }
}

#[cfg(test)]
mod tensor_fidelity_tests {
    use super::*;

    /// The observed traffic tensors must carry real congestion signal: cell
    /// values (average observed speed) should correlate positively with the
    /// ground-truth speeds of the segments in those cells at that time.
    #[test]
    fn tensors_correlate_with_ground_truth_speeds() {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 400, 99);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for slot in 0..ds.num_slots() {
            let tensor = ds.traffic_tensor(slot);
            let t = slot as f64 * SLOT_SECS;
            for seg in (0..ds.net.num_segments()).step_by(3) {
                let mid = ds.net.midpoint(seg);
                let Some(cell) = ds.grid.cell_of(&mid) else {
                    continue;
                };
                let observed = tensor[cell] as f64;
                if observed <= 0.0 {
                    continue; // unobserved cell
                }
                xs.push(observed);
                ys.push(ds.traffic.speed(&ds.net, seg, t) / ds.max_speed);
            }
        }
        assert!(
            xs.len() > 200,
            "too few observed (cell, slot) pairs: {}",
            xs.len()
        );
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let r = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
        assert!(
            r > 0.2,
            "traffic tensors carry no congestion signal: corr = {r:.3} over {} pairs",
            xs.len()
        );
    }
}
