//! Time-varying traffic: the simulator's ground-truth congestion process and
//! the observed cell-grid traffic tensors fed to DeepST.
//!
//! The ground truth is a set of localized congestion *events* (incidents,
//! demand surges) that appear, persist for tens of minutes and disappear,
//! overlaid on a diurnal rush-hour profile. Crucially the events are *not*
//! periodic: two different days, or two adjacent 20-minute slots, have
//! different congestion patterns. This is exactly the property that breaks
//! the "traffic in the same weekly slot is temporally invariant" assumption
//! of [2], [8] (see §I of the paper) and makes a real-time traffic
//! representation informative.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use st_roadnet::{Point, RoadNetwork, SegmentId};

/// Seconds per simulated day.
pub const DAY_SECS: f64 = 86_400.0;

/// A localized congestion event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionEvent {
    /// Center of the affected area.
    pub center: Point,
    /// Gaussian radius of influence (m).
    pub radius: f64,
    /// Peak speed reduction in `(0, 1)`: 0.8 ⇒ speeds drop to 20% at center.
    pub severity: f64,
    /// Event start (s since simulation start).
    pub t_start: f64,
    /// Event end (s).
    pub t_end: f64,
}

impl CongestionEvent {
    /// Multiplicative speed factor this event applies at point `p`, time `t`.
    ///
    /// Always in `[0, 1]`: a degenerate `radius == 0` event acts as a point
    /// mass (full severity exactly at its center, no effect elsewhere)
    /// instead of poisoning the product with `NaN` from `d²/0`.
    pub fn speed_factor(&self, p: &Point, t: f64) -> f64 {
        if t < self.t_start || t >= self.t_end {
            return 1.0;
        }
        let d2 = p.dist_sq(&self.center);
        let denom = 2.0 * self.radius * self.radius;
        let influence = if denom > 0.0 {
            (-d2 / denom).exp()
        } else if d2 <= 0.0 {
            1.0
        } else {
            0.0
        };
        (1.0 - self.severity * influence).clamp(0.0, 1.0)
    }
}

/// Configuration of the traffic process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Number of simulated days.
    pub days: usize,
    /// Expected number of simultaneous congestion events during the day.
    pub events_per_day: usize,
    /// Radius range of events (m).
    pub radius_range: (f64, f64),
    /// Severity range.
    pub severity_range: (f64, f64),
    /// Event duration range (s).
    pub duration_range: (f64, f64),
    /// Street-level incidents per day (accidents/closures): very small
    /// radius, near-blocking severity. These are the paper's motivating
    /// example (§I) — a congested street the driver detours around — and the
    /// signal that static historical means (WSP) cannot see.
    pub incidents_per_day: usize,
}

impl TrafficConfig {
    /// Check the configuration for degenerate ranges.
    ///
    /// Returns a description of the first problem found, or `Ok(())`. Ranges
    /// must be non-empty (`lo < hi`, preserving the RNG stream of existing
    /// seeds, which draws from half-open ranges), radii strictly positive,
    /// and severities within `[0, 1)` so [`CongestionEvent::speed_factor`]
    /// stays in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.days == 0 {
            return Err("days must be >= 1".into());
        }
        let range_ok = |lo: f64, hi: f64| lo.is_finite() && hi.is_finite() && lo < hi;
        if !range_ok(self.radius_range.0, self.radius_range.1) || self.radius_range.0 <= 0.0 {
            return Err(format!(
                "radius_range must satisfy 0 < lo < hi, got {:?}",
                self.radius_range
            ));
        }
        if !range_ok(self.severity_range.0, self.severity_range.1)
            || self.severity_range.0 < 0.0
            || self.severity_range.1 > 1.0
        {
            return Err(format!(
                "severity_range must satisfy 0 <= lo < hi <= 1, got {:?}",
                self.severity_range
            ));
        }
        if !range_ok(self.duration_range.0, self.duration_range.1) || self.duration_range.0 <= 0.0 {
            return Err(format!(
                "duration_range must satisfy 0 < lo < hi, got {:?}",
                self.duration_range
            ));
        }
        Ok(())
    }
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            days: 4,
            events_per_day: 36,
            radius_range: (400.0, 1200.0),
            severity_range: (0.6, 0.9),
            duration_range: (1200.0, 5400.0),
            incidents_per_day: 80,
        }
    }
}

/// The ground-truth traffic process over a road network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficModel {
    events: Vec<CongestionEvent>,
    horizon: f64,
    /// Index into `events` where street-level incidents begin (field events
    /// occupy `events[..incident_from]`). Lets a live feed replay the
    /// incidents — the paper's detour-triggering signal — as discrete
    /// street-blocking updates rather than background congestion.
    #[serde(default)]
    incident_from: usize,
    /// Time-bucketed index: `active[b]` lists the events overlapping bucket
    /// `b` of [`INDEX_BUCKET_SECS`] seconds. With hundreds of events but only
    /// a couple dozen active at any instant, this cuts the speed-query hot
    /// path (route simulation runs it millions of times) by ~10×.
    #[serde(skip, default)]
    active: Vec<Vec<u32>>,
}

/// Width of a time-index bucket (s).
const INDEX_BUCKET_SECS: f64 = 600.0;

impl TrafficModel {
    /// Sample a traffic process over the network's bounding box.
    pub fn generate(net: &RoadNetwork, cfg: &TrafficConfig, seed: u64) -> Self {
        // Degenerate ranges would produce NaN speed factors or empty
        // gen_range panics deep inside the sampling loop; fail at the
        // boundary with the actual reason instead.
        let checked = cfg.validate();
        assert!(checked.is_ok(), "invalid TrafficConfig: {checked:?}");
        let mut rng = StdRng::seed_from_u64(seed ^ TRAFFIC_SEED_SALT);
        let (min, max) = net.bounding_box();
        let horizon = cfg.days as f64 * DAY_SECS;
        let n_events = cfg.days * cfg.events_per_day;
        let mut events: Vec<CongestionEvent> = (0..n_events)
            .map(|_| {
                let duration = rng.gen_range(cfg.duration_range.0..cfg.duration_range.1);
                let t_start = rng.gen_range(0.0..(horizon - duration).max(1.0));
                CongestionEvent {
                    center: Point::new(rng.gen_range(min.x..max.x), rng.gen_range(min.y..max.y)),
                    radius: rng.gen_range(cfg.radius_range.0..cfg.radius_range.1),
                    severity: rng.gen_range(cfg.severity_range.0..cfg.severity_range.1),
                    t_start,
                    t_end: t_start + duration,
                }
            })
            .collect();
        // Street-level incidents: centered on a random segment midpoint so
        // they actually block a street rather than empty space.
        let incident_from = events.len();
        let n_segs = net.num_segments();
        for _ in 0..cfg.days * cfg.incidents_per_day {
            let seg = rng.gen_range(0..n_segs);
            let duration = rng.gen_range(900.0f64..3600.0);
            let t_start = rng.gen_range(0.0..(horizon - duration).max(1.0));
            events.push(CongestionEvent {
                center: net.midpoint(seg),
                radius: rng.gen_range(60.0..140.0),
                severity: rng.gen_range(0.85..0.96),
                t_start,
                t_end: t_start + duration,
            });
        }
        let mut model = Self {
            events,
            horizon,
            incident_from,
            active: Vec::new(),
        };
        model.rebuild_index();
        model
    }

    /// Rebuild the time-bucket index (needed after deserialization, which
    /// skips the derived field).
    pub fn rebuild_index(&mut self) {
        let n_buckets = (self.horizon / INDEX_BUCKET_SECS).ceil() as usize + 1;
        let mut active: Vec<Vec<u32>> = vec![Vec::new(); n_buckets];
        for (i, e) in self.events.iter().enumerate() {
            let first = (e.t_start / INDEX_BUCKET_SECS).floor().max(0.0) as usize;
            let last = ((e.t_end / INDEX_BUCKET_SECS).floor() as usize).min(n_buckets - 1);
            for bucket in active.iter_mut().take(last + 1).skip(first) {
                bucket.push(i as u32);
            }
        }
        self.active = active;
    }

    /// Simulation horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The congestion events (for inspection/plots).
    pub fn events(&self) -> &[CongestionEvent] {
        &self.events
    }

    /// The street-level incidents only (accidents/closures): the tail of
    /// [`Self::events`] from the generation split point. Models deserialized
    /// from a pre-split format report every event here (`incident_from`
    /// defaults to 0) — a conservative over-approximation for feed replay.
    pub fn incidents(&self) -> &[CongestionEvent] {
        &self.events[self.incident_from.min(self.events.len())..]
    }

    /// Diurnal rush-hour factor in `(0, 1]`: slowdowns around 8:00 and 18:00.
    pub fn diurnal_factor(t: f64) -> f64 {
        let hour = (t % DAY_SECS) / 3600.0;
        let morning = (-(hour - 8.0) * (hour - 8.0) / 4.5).exp();
        let evening = (-(hour - 18.0) * (hour - 18.0) / 4.5).exp();
        1.0 - 0.35 * (morning + evening).min(1.0)
    }

    /// Effective speed (m/s) of a segment at time `t`.
    pub fn speed(&self, net: &RoadNetwork, seg: SegmentId, t: f64) -> f64 {
        let mid = net.midpoint(seg);
        let mut factor = Self::diurnal_factor(t);
        let bucket = (t / INDEX_BUCKET_SECS).floor().max(0.0) as usize;
        match self.active.get(bucket) {
            Some(ids) => {
                for &i in ids {
                    factor *= self.events[i as usize].speed_factor(&mid, t);
                }
            }
            // out of the indexed horizon (or index unbuilt): full scan
            None => {
                for e in &self.events {
                    factor *= e.speed_factor(&mid, t);
                }
            }
        }
        (net.segment(seg).base_speed * factor).max(1.0)
    }

    /// Travel time (s) to traverse a segment entered at time `t`.
    pub fn travel_time(&self, net: &RoadNetwork, seg: SegmentId, t: f64) -> f64 {
        net.segment(seg).length / self.speed(net, seg, t)
    }
}

/// Seed salt so simulator components sharing one experiment seed still draw
/// from distinct RNG streams.
const TRAFFIC_SEED_SALT: u64 = 0x5EED_01AF;

/// A spatial grid over the city used for traffic observation tensors
/// (the paper partitions Chengdu into 87×98 cells of 100m, §V-A).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficGrid {
    min: Point,
    max: Point,
    /// Cells along x.
    pub width: usize,
    /// Cells along y.
    pub height: usize,
}

impl TrafficGrid {
    /// A grid of `width × height` cells over the network's bounding box
    /// (expanded slightly so boundary points fall inside).
    pub fn new(net: &RoadNetwork, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        let (mut min, mut max) = net.bounding_box();
        let pad_x = (max.x - min.x) * 0.01 + 1.0;
        let pad_y = (max.y - min.y) * 0.01 + 1.0;
        min.x -= pad_x;
        min.y -= pad_y;
        max.x += pad_x;
        max.y += pad_y;
        Self {
            min,
            max,
            width,
            height,
        }
    }

    /// Cell index of a point, or `None` if outside the grid.
    pub fn cell_of(&self, p: &Point) -> Option<usize> {
        if p.x < self.min.x || p.x >= self.max.x || p.y < self.min.y || p.y >= self.max.y {
            return None;
        }
        let cx = ((p.x - self.min.x) / (self.max.x - self.min.x) * self.width as f64) as usize;
        let cy = ((p.y - self.min.y) / (self.max.y - self.min.y) * self.height as f64) as usize;
        Some(cy.min(self.height - 1) * self.width + cx.min(self.width - 1))
    }

    /// Center point of cell `c` (row-major index, as from [`Self::cell_of`]).
    /// `None` if `c` is out of range.
    pub fn cell_center(&self, c: usize) -> Option<Point> {
        if c >= self.len() {
            return None;
        }
        let cx = c % self.width;
        let cy = c / self.width;
        let step_x = (self.max.x - self.min.x) / self.width as f64;
        let step_y = (self.max.y - self.min.y) / self.height as f64;
        Some(Point::new(
            self.min.x + (cx as f64 + 0.5) * step_x,
            self.min.y + (cy as f64 + 0.5) * step_y,
        ))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Whether the grid is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Build the observed traffic tensor from `(position, speed m/s)`
    /// samples: per-cell average speed, normalized by `max_speed`, 0 where
    /// unobserved. Row-major `[height × width]`, suitable for a `[1, H, W]`
    /// CNN input.
    pub fn tensor_from_observations(&self, samples: &[(Point, f64)], max_speed: f64) -> Vec<f32> {
        let mut sum = vec![0.0f64; self.len()];
        let mut count = vec![0u32; self.len()];
        for (p, speed) in samples {
            if let Some(c) = self.cell_of(p) {
                sum[c] += *speed;
                count[c] += 1;
            }
        }
        sum.iter()
            .zip(&count)
            .map(|(&s, &c)| {
                if c == 0 {
                    0.0
                } else {
                    ((s / c as f64) / max_speed).min(2.0) as f32
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};

    fn city() -> RoadNetwork {
        grid_city(&GridConfig::small_test(), 0)
    }

    #[test]
    fn event_factor_spatial_decay() {
        let e = CongestionEvent {
            center: Point::new(0.0, 0.0),
            radius: 100.0,
            severity: 0.8,
            t_start: 0.0,
            t_end: 100.0,
        };
        let at_center = e.speed_factor(&Point::new(0.0, 0.0), 50.0);
        let far = e.speed_factor(&Point::new(1000.0, 0.0), 50.0);
        assert!((at_center - 0.2).abs() < 1e-9);
        assert!(far > 0.99);
        // outside its time window the event has no effect
        assert_eq!(e.speed_factor(&Point::new(0.0, 0.0), 200.0), 1.0);
    }

    #[test]
    fn zero_radius_event_never_produces_nan() {
        let e = CongestionEvent {
            center: Point::new(10.0, 10.0),
            radius: 0.0,
            severity: 0.9,
            t_start: 0.0,
            t_end: 100.0,
        };
        // at the exact center: full severity, not NaN
        let at_center = e.speed_factor(&Point::new(10.0, 10.0), 50.0);
        assert!(at_center.is_finite());
        assert!((at_center - 0.1).abs() < 1e-9);
        // anywhere else: no influence at all
        let off = e.speed_factor(&Point::new(11.0, 10.0), 50.0);
        assert!((off - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speed_factor_is_clamped_to_unit_interval() {
        // severity > 1 is out of spec, but the factor must still stay in
        // [0, 1] rather than going negative and flipping downstream products.
        let e = CongestionEvent {
            center: Point::new(0.0, 0.0),
            radius: 50.0,
            severity: 1.5,
            t_start: 0.0,
            t_end: 10.0,
        };
        let f = e.speed_factor(&Point::new(0.0, 0.0), 5.0);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn config_validation_rejects_degenerate_ranges() {
        assert!(TrafficConfig::default().validate().is_ok());
        let cases = [
            TrafficConfig {
                radius_range: (0.0, 100.0),
                ..TrafficConfig::default()
            },
            TrafficConfig {
                severity_range: (0.9, 0.6),
                ..TrafficConfig::default()
            },
            TrafficConfig {
                severity_range: (0.5, 1.5),
                ..TrafficConfig::default()
            },
            TrafficConfig {
                duration_range: (600.0, 600.0),
                ..TrafficConfig::default()
            },
            TrafficConfig {
                days: 0,
                ..TrafficConfig::default()
            },
        ];
        for (i, bad) in cases.iter().enumerate() {
            assert!(bad.validate().is_err(), "case {i} should be rejected");
        }
    }

    #[test]
    fn incidents_are_the_event_tail() {
        let net = city();
        let cfg = TrafficConfig::default();
        let tm = TrafficModel::generate(&net, &cfg, 5);
        let incidents = tm.incidents();
        assert_eq!(incidents.len(), cfg.days * cfg.incidents_per_day);
        // incidents are street-level: tight radius, near-blocking severity
        for inc in incidents {
            assert!(inc.radius < 200.0);
            assert!(inc.severity > 0.8);
        }
    }

    #[test]
    fn cell_center_round_trips_through_cell_of() {
        let net = city();
        let g = TrafficGrid::new(&net, 8, 6);
        for c in 0..g.len() {
            let p = g.cell_center(c).unwrap();
            assert_eq!(g.cell_of(&p), Some(c), "cell {c} did not round-trip");
        }
        assert!(g.cell_center(g.len()).is_none());
    }

    #[test]
    fn diurnal_dips_at_rush_hour() {
        let off_peak = TrafficModel::diurnal_factor(3.0 * 3600.0);
        let morning_peak = TrafficModel::diurnal_factor(8.0 * 3600.0);
        let evening_peak = TrafficModel::diurnal_factor(18.0 * 3600.0);
        assert!(off_peak > 0.95);
        assert!(morning_peak < 0.7);
        assert!(evening_peak < 0.7);
    }

    #[test]
    fn speeds_positive_and_bounded() {
        let net = city();
        let tm = TrafficModel::generate(&net, &TrafficConfig::default(), 1);
        for seg in 0..net.num_segments() {
            for t in [0.0, 3600.0, 8.0 * 3600.0, 100_000.0] {
                let v = tm.speed(&net, seg, t);
                assert!(v >= 1.0);
                assert!(v <= net.segment(seg).base_speed + 1e-9);
            }
        }
    }

    #[test]
    fn traffic_varies_over_time() {
        let net = city();
        let tm = TrafficModel::generate(&net, &TrafficConfig::default(), 2);
        // With dozens of events, at least one segment must see a >10%
        // speed change between two same-diurnal-phase instants of
        // different days. Compare noon of day 1 against noon of each later
        // day so the check depends on the event process itself, not on one
        // lucky placement.
        let t1 = 12.0 * 3600.0;
        let changed = (1..4).any(|day| {
            let t2 = t1 + day as f64 * 24.0 * 3600.0;
            (0..net.num_segments()).any(|s| {
                let v1 = tm.speed(&net, s, t1);
                let v2 = tm.speed(&net, s, t2);
                (v1 - v2).abs() / v1.max(v2) > 0.1
            })
        });
        assert!(changed, "traffic process looks static");
    }

    #[test]
    fn deterministic_per_seed() {
        let net = city();
        let a = TrafficModel::generate(&net, &TrafficConfig::default(), 9);
        let b = TrafficModel::generate(&net, &TrafficConfig::default(), 9);
        assert_eq!(a.events().len(), b.events().len());
        assert_eq!(a.speed(&net, 0, 500.0), b.speed(&net, 0, 500.0));
    }

    #[test]
    fn grid_cell_lookup() {
        let net = city();
        let g = TrafficGrid::new(&net, 8, 8);
        assert_eq!(g.len(), 64);
        let (min, max) = net.bounding_box();
        let inside = Point::new((min.x + max.x) / 2.0, (min.y + max.y) / 2.0);
        assert!(g.cell_of(&inside).is_some());
        let outside = Point::new(max.x + 10_000.0, max.y);
        assert!(g.cell_of(&outside).is_none());
    }

    #[test]
    fn tensor_averages_and_normalizes() {
        let net = city();
        let g = TrafficGrid::new(&net, 4, 4);
        let p = net.midpoint(0);
        let tensor = g.tensor_from_observations(&[(p, 5.0), (p, 15.0)], 20.0);
        let c = g.cell_of(&p).unwrap();
        assert!((tensor[c] - 0.5).abs() < 1e-6);
        // unobserved cells are zero
        let zeros = tensor.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros >= 14);
    }
}

#[cfg(test)]
mod index_equivalence_tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};

    /// The bucketed index must be a pure optimization: speeds agree exactly
    /// with a naive full-event scan at every probed (segment, time).
    #[test]
    fn indexed_speed_equals_naive_scan() {
        let net = grid_city(&GridConfig::small_test(), 8);
        let tm = TrafficModel::generate(&net, &TrafficConfig::default(), 8);
        let naive = |seg: usize, t: f64| {
            let mid = net.midpoint(seg);
            let mut factor = TrafficModel::diurnal_factor(t);
            for e in tm.events() {
                factor *= e.speed_factor(&mid, t);
            }
            (net.segment(seg).base_speed * factor).max(1.0)
        };
        for seg in (0..net.num_segments()).step_by(5) {
            for k in 0..40 {
                let t = k as f64 * tm.horizon() / 40.0;
                let fast = tm.speed(&net, seg, t);
                let slow = naive(seg, t);
                assert!(
                    (fast - slow).abs() < 1e-12,
                    "index mismatch at seg {seg}, t {t}: {fast} vs {slow}"
                );
            }
        }
        // beyond the horizon the fallback path also agrees
        let t = tm.horizon() + 5000.0;
        assert!((tm.speed(&net, 0, t) - naive(0, t)).abs() < 1e-12);
    }

    #[test]
    fn deserialized_model_rebuilds_index() {
        let net = grid_city(&GridConfig::small_test(), 9);
        let tm = TrafficModel::generate(&net, &TrafficConfig::default(), 9);
        let json = serde_json::to_string(&tm).unwrap();
        let mut back: TrafficModel = serde_json::from_str(&json).unwrap();
        // index skipped by serde: speeds still correct via fallback...
        let t = 3600.0;
        assert!((back.speed(&net, 3, t) - tm.speed(&net, 3, t)).abs() < 1e-12);
        // ...and identical after rebuilding
        back.rebuild_index();
        assert!((back.speed(&net, 3, t) - tm.speed(&net, 3, t)).abs() < 1e-12);
    }
}
