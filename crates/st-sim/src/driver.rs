//! The behavioural route-choice model generating ground-truth trips.
//!
//! Drivers are boundedly rational: at every crossroad they pick the next
//! segment by a softmax over utilities combining exactly the paper's three
//! explanatory factors:
//!
//! 1. **Sequential habit** — turn inertia (going straight is preferred over
//!    sharp turns) and per-segment corridor attractiveness (popular streets),
//!    making transitions depend on the traveled history, not just the
//!    current segment.
//! 2. **Destination pull** — the expected remaining travel time to the
//!    destination under current traffic, computed by a reverse Dijkstra at
//!    trip start.
//! 3. **Real-time traffic** — the remaining-time estimate uses the live
//!    [`TrafficModel`] speeds, so two trips with the same origin/destination
//!    at different times take different routes when congestion differs.
//!
//! A model that can exploit all three factors (DeepST) can therefore
//! out-predict models missing any of them, reproducing the causal structure
//! behind the paper's Table IV.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use st_roadnet::{geo, shortest, RoadNetwork, Route, SegmentId};

use crate::traffic::TrafficModel;

/// Behavioural parameters of the driver population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Weight of (negative) remaining travel time, 1/s.
    pub beta_time: f64,
    /// Weight of (negative) turn angle, 1/rad.
    pub beta_turn: f64,
    /// Weight of corridor attractiveness.
    pub beta_habit: f64,
    /// Softmax temperature; → 0 makes drivers deterministic.
    pub temperature: f64,
    /// Hard cap on route length in segments (guard against pathologies).
    pub max_len: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            beta_time: 0.07,
            beta_turn: 0.8,
            beta_habit: 0.9,
            temperature: 0.55,
            max_len: 200,
        }
    }
}

/// Per-segment corridor attractiveness: a fixed, seeded "popularity" field
/// shared by the driver population. This is the habit signal models can
/// learn from history.
#[derive(Debug, Clone)]
pub struct Attractiveness {
    values: Vec<f64>,
}

impl Attractiveness {
    /// Sample attractiveness: arterials (faster base speed) plus a sparse set
    /// of extra-popular corridors.
    pub fn generate(net: &RoadNetwork, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA77A_AC71);
        let max_speed = (0..net.num_segments())
            .map(|s| net.segment(s).base_speed)
            .fold(0.0f64, f64::max);
        let values = (0..net.num_segments())
            .map(|s| {
                let arterial = net.segment(s).base_speed / max_speed; // in (0,1]
                let popular = if rng.gen::<f64>() < 0.15 {
                    rng.gen_range(0.5..1.0)
                } else {
                    0.0
                };
                arterial * 0.5 + popular
            })
            .collect();
        Self { values }
    }

    /// Attractiveness of a segment.
    pub fn of(&self, s: SegmentId) -> f64 {
        self.values[s]
    }
}

/// Simulate one trip's route.
///
/// Returns `None` when the driver fails to reach `dst` within
/// `cfg.max_len` segments (rare; such trips are discarded, mimicking
/// map-matching rejects in real pipelines).
#[allow(clippy::too_many_arguments)] // a trip is genuinely 8-dimensional
pub fn simulate_route(
    net: &RoadNetwork,
    traffic: &TrafficModel,
    attract: &Attractiveness,
    cfg: &DriverConfig,
    src: SegmentId,
    dst: SegmentId,
    start_time: f64,
    rng: &mut StdRng,
) -> Option<Route> {
    if src == dst {
        return Some(vec![src]);
    }
    // Remaining travel time to dst from every segment, under traffic frozen
    // at the trip's start (trips last minutes; events last tens of minutes).
    let cost_to_dst =
        shortest::all_costs_to(net, dst, &|s| traffic.travel_time(net, s, start_time));
    if !cost_to_dst[src].is_finite() {
        return None;
    }
    let mut route = vec![src];
    let mut cur = src;
    let mut t = start_time;
    while cur != dst && route.len() < cfg.max_len {
        let nexts = net.next_segments(cur);
        if nexts.is_empty() {
            return None;
        }
        let heading_cur = net.heading(cur);
        let utilities: Vec<f64> = nexts
            .iter()
            .map(|&n| {
                if !cost_to_dst[n].is_finite() {
                    return f64::NEG_INFINITY;
                }
                let remaining = traffic.travel_time(net, n, t) + cost_to_dst[n];
                let turn = geo::turn_angle(heading_cur, net.heading(n));
                // discourage immediate U-turns strongly
                let uturn = if net.reverse_of(cur) == Some(n) {
                    4.0
                } else {
                    0.0
                };
                (-cfg.beta_time * remaining - cfg.beta_turn * turn - uturn
                    + cfg.beta_habit * attract.of(n))
                    / cfg.temperature
            })
            .collect();
        let next = nexts[sample_softmax(&utilities, rng)?];
        t += traffic.travel_time(net, next, t);
        route.push(next);
        cur = next;
    }
    (cur == dst).then_some(route)
}

/// Sample an index proportionally to `exp(u)` with a numerically stable
/// shift. Returns `None` if every utility is −∞.
fn sample_softmax(utils: &[f64], rng: &mut StdRng) -> Option<usize> {
    let m = utils.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return None;
    }
    let weights: Vec<f64> = utils.iter().map(|&u| (u - m).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return Some(i);
        }
        u -= w;
    }
    Some(weights.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficConfig;
    use st_roadnet::{grid_city, GridConfig};

    fn setup() -> (RoadNetwork, TrafficModel, Attractiveness) {
        let net = grid_city(&GridConfig::small_test(), 3);
        let tm = TrafficModel::generate(&net, &TrafficConfig::default(), 3);
        let at = Attractiveness::generate(&net, 3);
        (net, tm, at)
    }

    #[test]
    fn routes_are_valid_and_terminate() {
        let (net, tm, at) = setup();
        let cfg = DriverConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ok = 0;
        for trial in 0..50 {
            let src = trial % net.num_segments();
            let dst = (trial * 7 + 3) % net.num_segments();
            if let Some(r) = simulate_route(&net, &tm, &at, &cfg, src, dst, 3600.0, &mut rng) {
                assert!(net.is_valid_route(&r), "invalid route {r:?}");
                assert_eq!(*r.first().unwrap(), src);
                assert_eq!(*r.last().unwrap(), dst);
                ok += 1;
            }
        }
        assert!(ok > 40, "too many failed trips: {ok}/50");
    }

    #[test]
    fn same_segment_trip() {
        let (net, tm, at) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate_route(
            &net,
            &tm,
            &at,
            &DriverConfig::default(),
            5,
            5,
            0.0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(r, vec![5]);
    }

    #[test]
    fn cold_drivers_roughly_minimize_time() {
        let (net, tm, at) = setup();
        // near-deterministic, time-dominated drivers
        let cfg = DriverConfig {
            beta_time: 1.0,
            beta_turn: 0.0,
            beta_habit: 0.0,
            temperature: 0.05,
            max_len: 200,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let src = 0;
        let dst = net.num_segments() - 1;
        let r = simulate_route(&net, &tm, &at, &cfg, src, dst, 7200.0, &mut rng).unwrap();
        let t_route: f64 = r[1..]
            .iter()
            .map(|&s| tm.travel_time(&net, s, 7200.0))
            .sum();
        let (_, t_best) =
            st_roadnet::shortest_route(&net, src, dst, &|s| tm.travel_time(&net, s, 7200.0))
                .unwrap();
        assert!(
            t_route <= t_best * 1.4 + 1.0,
            "cold driver far from optimal: {t_route} vs {t_best}"
        );
    }

    #[test]
    fn traffic_changes_route_choice() {
        // Drivers must react to congestion: across many simulations of the
        // same OD pair at two different times, route distributions differ.
        let (net, tm, at) = setup();
        let cfg = DriverConfig {
            temperature: 0.3,
            ..DriverConfig::default()
        };
        let src = 0;
        let dst = net.num_segments() - 1;
        let collect = |t: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts = std::collections::BTreeMap::new();
            for _ in 0..40 {
                if let Some(r) = simulate_route(&net, &tm, &at, &cfg, src, dst, t, &mut rng) {
                    *counts.entry(r).or_insert(0usize) += 1;
                }
            }
            counts
        };
        // Find two times with differing modal routes; with dozens of traffic
        // events at least one pair among a handful of probes should differ.
        let times = [
            0.0,
            8.0 * 3600.0,
            30.0 * 3600.0,
            50.0 * 3600.0,
            80.0 * 3600.0,
        ];
        let modal: Vec<_> = times
            .iter()
            .map(|&t| {
                collect(t, 99)
                    .into_iter()
                    .max_by_key(|(_, c)| *c)
                    .map(|(r, _)| r)
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> = modal.iter().collect();
        assert!(distinct.len() > 1, "route choice ignores traffic");
    }

    #[test]
    fn sample_softmax_handles_neg_infinity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample_softmax(&[f64::NEG_INFINITY, 0.0], &mut rng), Some(1));
        assert_eq!(sample_softmax(&[f64::NEG_INFINITY], &mut rng), None);
    }

    #[test]
    fn attractiveness_prefers_arterials_on_average() {
        let (net, _, at) = setup();
        let mut art = Vec::new();
        let mut loc = Vec::new();
        for s in 0..net.num_segments() {
            if net.segment(s).base_speed > 10.0 {
                art.push(at.of(s));
            } else {
                loc.push(at.of(s));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&art) > mean(&loc));
    }
}
