//! On-disk trip storage: sharded files, streamed reads.
//!
//! A megacity's trip corpus does not fit comfortably in memory next to the
//! model, the tape, and the optimizer (100k trips × ~50 GPS points is
//! gigabytes of `Vec<Trip>`). A [`TripStoreWriter`] spills trips to a
//! directory of fixed-size shard files as they are generated; a
//! [`TripStore`] streams them back one batch at a time, so training holds
//! one minibatch of trips, never the corpus.
//!
//! ## Format
//!
//! `<dir>/trips.meta` — `STTRIPS1` magic, shard count, total trip count,
//! and per-shard `(trips, bytes)` so truncation is detectable *at open*,
//! before an epoch burns compute on a half-corpus.
//!
//! `<dir>/shard-NNNN.bin` — length-prefixed records, each carrying an
//! FNV-1a checksum of its payload. A flipped bit or a short tail surfaces
//! as a typed [`TripStoreError`], never a panic and never a silently
//! shortened epoch (exercised against `st-core`'s fault-injection file
//! mangling in the crate tests).

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use st_roadnet::Point;

use crate::trips::{GpsPoint, Trip};

const MAGIC: &[u8; 8] = b"STTRIPS1";

/// Everything that can go wrong opening or streaming a [`TripStore`].
#[derive(Debug)]
pub enum TripStoreError {
    /// Underlying filesystem error.
    Io {
        /// File the operation touched.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// The meta file does not start with the `STTRIPS1` magic.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// A shard file is shorter than the meta file recorded — an interrupted
    /// or mangled write.
    Truncated {
        /// Shard index.
        shard: usize,
        /// Bytes the meta file promised.
        expected: u64,
        /// Bytes actually on disk.
        found: u64,
    },
    /// A record failed structural validation (checksum mismatch, impossible
    /// length, short read mid-record).
    Corrupt {
        /// Shard index.
        shard: usize,
        /// Byte offset of the bad record.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for TripStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripStoreError::Io { path, source } => {
                write!(f, "trip store I/O error on {}: {source}", path.display())
            }
            TripStoreError::BadMagic { path } => {
                write!(f, "{} is not a trip store (bad magic)", path.display())
            }
            TripStoreError::Truncated {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard} truncated: meta records {expected} bytes, file has {found}"
            ),
            TripStoreError::Corrupt {
                shard,
                offset,
                reason,
            } => write!(f, "shard {shard} corrupt at byte {offset}: {reason}"),
        }
    }
}

impl std::error::Error for TripStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TripStoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, source: io::Error) -> TripStoreError {
    TripStoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// FNV-1a over a byte slice — cheap, dependency-free record checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Little-endian reads over slices whose length the caller has already
/// validated (cursor bounds, meta-length check, fixed-size headers).
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.bin"))
}

fn meta_path(dir: &Path) -> PathBuf {
    dir.join("trips.meta")
}

fn encode_trip(trip: &Trip, buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&(trip.route.len() as u32).to_le_bytes());
    for &seg in &trip.route {
        debug_assert!(seg <= u32::MAX as usize);
        buf.extend_from_slice(&(seg as u32).to_le_bytes());
    }
    buf.extend_from_slice(&trip.start_time.to_le_bytes());
    buf.extend_from_slice(&trip.end_time.to_le_bytes());
    buf.extend_from_slice(&trip.dest_coord.x.to_le_bytes());
    buf.extend_from_slice(&trip.dest_coord.y.to_le_bytes());
    buf.extend_from_slice(&(trip.hotspot as u32).to_le_bytes());
    buf.extend_from_slice(&(trip.gps.len() as u32).to_le_bytes());
    for gp in &trip.gps {
        buf.extend_from_slice(&gp.p.x.to_le_bytes());
        buf.extend_from_slice(&gp.p.y.to_le_bytes());
        buf.extend_from_slice(&gp.t.to_le_bytes());
        buf.extend_from_slice(&gp.speed.to_le_bytes());
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(le_u32)
    }

    fn f64(&mut self) -> Option<f64> {
        self.take(8).map(|b| f64::from_bits(le_u64(b)))
    }
}

fn decode_trip(payload: &[u8]) -> Option<Trip> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let n_route = c.u32()? as usize;
    let mut route = Vec::with_capacity(n_route.min(payload.len() / 4));
    for _ in 0..n_route {
        route.push(c.u32()? as usize);
    }
    let start_time = c.f64()?;
    let end_time = c.f64()?;
    let dest_coord = Point::new(c.f64()?, c.f64()?);
    let hotspot = c.u32()? as usize;
    let n_gps = c.u32()? as usize;
    let mut gps = Vec::with_capacity(n_gps.min(payload.len() / 32));
    for _ in 0..n_gps {
        gps.push(GpsPoint {
            p: Point::new(c.f64()?, c.f64()?),
            t: c.f64()?,
            speed: c.f64()?,
        });
    }
    (c.pos == payload.len()).then_some(Trip {
        route,
        start_time,
        end_time,
        dest_coord,
        gps,
        hotspot,
    })
}

/// Streaming writer: trips go straight to shard files, never to a `Vec`.
pub struct TripStoreWriter {
    dir: PathBuf,
    trips_per_shard: usize,
    shards: Vec<(u64, u64)>, // (trips, bytes) per finished + current shard
    current: Option<BufWriter<File>>,
    scratch: Vec<u8>,
}

impl TripStoreWriter {
    /// Open `dir` (created if missing) for writing, rolling to a new shard
    /// file every `trips_per_shard` trips.
    pub fn create(dir: impl AsRef<Path>, trips_per_shard: usize) -> Result<Self, TripStoreError> {
        assert!(trips_per_shard > 0, "trips_per_shard must be positive");
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(Self {
            dir,
            trips_per_shard,
            shards: Vec::new(),
            current: None,
            scratch: Vec::new(),
        })
    }

    /// Append one trip, rotating shards as needed.
    pub fn append(&mut self, trip: &Trip) -> Result<(), TripStoreError> {
        let rotate = match self.shards.last() {
            Some(&(trips, _)) => self.current.is_none() || trips as usize >= self.trips_per_shard,
            None => true,
        };
        if rotate {
            self.flush_current()?;
            let path = shard_path(&self.dir, self.shards.len());
            let f = File::create(&path).map_err(|e| io_err(&path, e))?;
            self.current = Some(BufWriter::new(f));
            self.shards.push((0, 0));
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_trip(trip, &mut scratch);
        let path = shard_path(&self.dir, self.shards.len().saturating_sub(1));
        let Some(w) = self.current.as_mut() else {
            return Err(io_err(
                &path,
                io::Error::other("no open shard after rotation"),
            ));
        };
        let write = |w: &mut BufWriter<File>| -> io::Result<()> {
            w.write_all(&(scratch.len() as u32).to_le_bytes())?;
            w.write_all(&fnv1a(&scratch).to_le_bytes())?;
            w.write_all(&scratch)
        };
        write(w).map_err(|e| io_err(&path, e))?;
        let Some(entry) = self.shards.last_mut() else {
            return Err(io_err(
                &path,
                io::Error::other("no shard entry after rotation"),
            ));
        };
        entry.0 += 1;
        entry.1 += 12 + scratch.len() as u64;
        self.scratch = scratch;
        Ok(())
    }

    fn flush_current(&mut self) -> Result<(), TripStoreError> {
        if let Some(mut w) = self.current.take() {
            let path = shard_path(&self.dir, self.shards.len().saturating_sub(1));
            w.flush().map_err(|e| io_err(&path, e))?;
        }
        Ok(())
    }

    /// Flush everything and write the meta file. Until this runs the
    /// directory is not a valid store.
    pub fn finish(mut self) -> Result<(), TripStoreError> {
        self.flush_current()?;
        let total: u64 = self.shards.iter().map(|&(t, _)| t).sum();
        let mut buf = Vec::with_capacity(8 + 4 + 8 + self.shards.len() * 16);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        buf.extend_from_slice(&total.to_le_bytes());
        for &(trips, bytes) in &self.shards {
            buf.extend_from_slice(&trips.to_le_bytes());
            buf.extend_from_slice(&bytes.to_le_bytes());
        }
        let path = meta_path(&self.dir);
        fs::write(&path, &buf).map_err(|e| io_err(&path, e))
    }
}

/// A validated on-disk trip corpus, iterable in batches.
pub struct TripStore {
    dir: PathBuf,
    shards: Vec<(u64, u64)>,
    total: u64,
}

impl TripStore {
    /// Open and validate a store written by [`TripStoreWriter`]. Every
    /// shard's on-disk size is checked against the meta file here, so an
    /// interrupted write fails fast with [`TripStoreError::Truncated`]
    /// instead of ending an epoch early.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, TripStoreError> {
        let dir = dir.as_ref().to_path_buf();
        let mpath = meta_path(&dir);
        let meta = fs::read(&mpath).map_err(|e| io_err(&mpath, e))?;
        if meta.len() < 20 || &meta[..8] != MAGIC {
            return Err(TripStoreError::BadMagic { path: mpath });
        }
        let n_shards = le_u32(&meta[8..12]) as usize;
        let total = le_u64(&meta[12..20]);
        if meta.len() != 20 + n_shards * 16 {
            return Err(TripStoreError::Corrupt {
                shard: usize::MAX,
                offset: meta.len() as u64,
                reason: format!(
                    "meta file is {} bytes, expected {} for {n_shards} shards",
                    meta.len(),
                    20 + n_shards * 16
                ),
            });
        }
        let mut shards = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let off = 20 + s * 16;
            let trips = le_u64(&meta[off..off + 8]);
            let bytes = le_u64(&meta[off + 8..off + 16]);
            let spath = shard_path(&dir, s);
            let found = fs::metadata(&spath).map_err(|e| io_err(&spath, e))?.len();
            if found < bytes {
                return Err(TripStoreError::Truncated {
                    shard: s,
                    expected: bytes,
                    found,
                });
            }
            shards.push((trips, bytes));
        }
        Ok(Self { dir, shards, total })
    }

    /// Total trips across all shards.
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether the store holds no trips.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of shard files.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Stream every trip in shard order. Each item is a `Result`: a corrupt
    /// record yields one typed error and the iterator stops (a half-read
    /// corpus must not masquerade as a full epoch).
    pub fn iter(&self) -> TripIter {
        TripIter {
            dir: self.dir.clone(),
            shards: self.shards.clone(),
            shard: 0,
            reader: None,
            offset: 0,
            failed: false,
        }
    }

    /// Stream trips grouped into `batch_size`-sized batches (last batch may
    /// be short) — the shape [`st_core`'s streamed trainer] consumes.
    pub fn batches(
        &self,
        batch_size: usize,
    ) -> impl Iterator<Item = Result<Vec<Trip>, TripStoreError>> {
        assert!(batch_size > 0);
        let mut it = self.iter();
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let mut batch = Vec::with_capacity(batch_size);
            while batch.len() < batch_size {
                match it.next() {
                    Some(Ok(t)) => batch.push(t),
                    Some(Err(e)) => {
                        done = true;
                        return Some(Err(e));
                    }
                    None => {
                        done = true;
                        break;
                    }
                }
            }
            (!batch.is_empty()).then_some(Ok(batch))
        })
    }
}

/// Streaming iterator over a [`TripStore`]'s records.
pub struct TripIter {
    dir: PathBuf,
    shards: Vec<(u64, u64)>,
    shard: usize,
    reader: Option<BufReader<File>>,
    offset: u64,
    failed: bool,
}

impl TripIter {
    fn next_record(&mut self) -> Result<Option<Trip>, TripStoreError> {
        loop {
            if self.reader.is_none() {
                if self.shard >= self.shards.len() {
                    return Ok(None);
                }
                let path = shard_path(&self.dir, self.shard);
                let f = File::open(&path).map_err(|e| io_err(&path, e))?;
                self.reader = Some(BufReader::new(f));
                self.offset = 0;
            }
            let shard_bytes = self.shards[self.shard].1;
            if self.offset >= shard_bytes {
                // consumed exactly the recorded extent: move on
                self.reader = None;
                self.shard += 1;
                continue;
            }
            // Opened at the top of this iteration when absent; re-enter the
            // loop (which re-opens) rather than asserting the invariant.
            let Some(r) = self.reader.as_mut() else {
                continue;
            };
            let mut header = [0u8; 12];
            let record_off = self.offset;
            read_exact_at(r, &mut header, self.shard, record_off)?;
            let len = le_u32(&header[..4]) as usize;
            let sum = le_u64(&header[4..12]);
            if record_off + 12 + len as u64 > shard_bytes {
                return Err(TripStoreError::Corrupt {
                    shard: self.shard,
                    offset: record_off,
                    reason: format!("record length {len} overruns the shard"),
                });
            }
            let mut payload = vec![0u8; len];
            read_exact_at(r, &mut payload, self.shard, record_off)?;
            if fnv1a(&payload) != sum {
                return Err(TripStoreError::Corrupt {
                    shard: self.shard,
                    offset: record_off,
                    reason: "checksum mismatch".into(),
                });
            }
            let trip = decode_trip(&payload).ok_or_else(|| TripStoreError::Corrupt {
                shard: self.shard,
                offset: record_off,
                reason: "payload does not decode as a trip".into(),
            })?;
            self.offset += 12 + len as u64;
            return Ok(Some(trip));
        }
    }
}

fn read_exact_at(
    r: &mut BufReader<File>,
    buf: &mut [u8],
    shard: usize,
    offset: u64,
) -> Result<(), TripStoreError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TripStoreError::Corrupt {
                shard,
                offset,
                reason: "shard shrank mid-read (unexpected EOF)".into(),
            }
        } else {
            TripStoreError::Io {
                path: PathBuf::new(),
                source: e,
            }
        }
    })
}

impl Iterator for TripIter {
    type Item = Result<Trip, TripStoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(t)) => Some(Ok(t)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trip(i: usize) -> Trip {
        Trip {
            route: vec![i, i + 1, i + 2],
            start_time: i as f64 * 10.0,
            end_time: i as f64 * 10.0 + 42.5,
            dest_coord: Point::new(1.5 * i as f64, -2.0),
            gps: vec![GpsPoint {
                p: Point::new(0.25, 0.75),
                t: i as f64,
                speed: 13.0,
            }],
            hotspot: i % 3,
        }
    }

    fn write_store(dir: &Path, n: usize, per_shard: usize) {
        let mut w = TripStoreWriter::create(dir, per_shard).unwrap();
        for i in 0..n {
            w.append(&trip(i)).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn round_trips_across_shards() {
        let dir = std::env::temp_dir().join(format!("st-sim-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_store(&dir, 10, 4);
        let store = TripStore::open(&dir).unwrap();
        assert_eq!(store.len(), 10);
        assert_eq!(store.num_shards(), 3); // 4 + 4 + 2
        let trips: Vec<Trip> = store.iter().map(|r| r.unwrap()).collect();
        assert_eq!(trips.len(), 10);
        for (i, t) in trips.iter().enumerate() {
            assert_eq!(t.route, trip(i).route);
            assert_eq!(t.start_time, trip(i).start_time);
            assert_eq!(t.gps.len(), 1);
            assert_eq!(t.gps[0].speed, 13.0);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batches_cover_everything_once() {
        let dir = std::env::temp_dir().join(format!("st-sim-batches-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_store(&dir, 7, 3);
        let store = TripStore::open(&dir).unwrap();
        let sizes: Vec<usize> = store.batches(2).map(|b| b.unwrap().len()).collect();
        assert_eq!(sizes, vec![2, 2, 2, 1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite pin: a shard truncated mid-write (via `st-core`'s
    /// fault-injection file mangling) is a typed error at open, never a
    /// panic and never a silently shortened corpus.
    #[test]
    fn truncated_shard_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("st-sim-trunc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_store(&dir, 9, 3);
        let victim = shard_path(&dir, 1);
        let full = fs::metadata(&victim).unwrap().len();
        st_core::faultinject::truncate_file(&victim, full / 2).unwrap();
        match TripStore::open(&dir) {
            Err(TripStoreError::Truncated {
                shard, expected, ..
            }) => {
                assert_eq!(shard, 1);
                assert_eq!(expected, full);
            }
            other => panic!("expected Truncated, got {other:?}", other = other.err()),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A flipped payload byte surfaces as a checksum-mismatch error from the
    /// iterator, which then fuses (no half-trips after an error).
    #[test]
    fn corrupt_record_is_a_typed_error_and_fuses() {
        let dir = std::env::temp_dir().join(format!("st-sim-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_store(&dir, 4, 10);
        let victim = shard_path(&dir, 0);
        let mut bytes = fs::read(&victim).unwrap();
        // flip a byte inside the second record's payload
        let rec0_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        let idx = 12 + rec0_len + 12 + 2;
        bytes[idx] ^= 0xFF;
        fs::write(&victim, &bytes).unwrap();
        let store = TripStore::open(&dir).unwrap(); // sizes still match
        let mut it = store.iter();
        assert!(it.next().unwrap().is_ok(), "record 0 untouched");
        match it.next().unwrap() {
            Err(TripStoreError::Corrupt { shard: 0, .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(it.next().is_none(), "iterator must fuse after an error");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unfinished_store_does_not_open() {
        let dir = std::env::temp_dir().join(format!("st-sim-unfinished-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut w = TripStoreWriter::create(&dir, 4).unwrap();
        w.append(&trip(0)).unwrap();
        // no finish(): meta missing
        assert!(matches!(
            TripStore::open(&dir),
            Err(TripStoreError::Io { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
