//! Live traffic event feed: replays the ground-truth process as a stream.
//!
//! The batch pipeline hands models a frozen per-slot tensor table; a real
//! deployment instead *receives* traffic — periodic sensor sweeps, incident
//! reports, closures — while predictions are being served. [`TrafficFeed`]
//! derives that stream from an existing [`Dataset`]: one
//! [`TrafficEventKind::Observation`] per slot (the fleet's sensed tensor),
//! plus [`TrafficEventKind::Incident`] / [`TrafficEventKind::Closure`]
//! events for every street-level incident in the ground-truth
//! [`TrafficModel`](crate::TrafficModel), each carrying the slot tensor
//! perturbed at the affected cell.
//!
//! Events are emitted with strictly increasing `seq` in time order, so the
//! clean stream applies without rejections; delivery faults are layered on
//! top with `st_core::FeedFaultPlan`.

use st_core::livetraffic::{TrafficEvent, TrafficEventKind};
use st_roadnet::{Point, SegmentIndex};

use crate::dataset::{Dataset, SLOT_SECS};

/// Ground-truth severity at which an incident is reported as a closure
/// (a graph edit) rather than a congestion observation.
const CLOSURE_SEVERITY: f64 = 0.92;

/// A deterministic, time-ordered stream of live traffic events derived from
/// a generated dataset.
#[derive(Debug, Clone)]
pub struct TrafficFeed {
    events: Vec<TrafficEvent>,
    horizon_slots: usize,
}

impl TrafficFeed {
    /// Build the feed for a dataset: per-slot observation sweeps plus the
    /// ground-truth street-level incidents (closures above severity
    /// [`CLOSURE_SEVERITY`]), time-sorted with dense `seq` numbering.
    pub fn from_dataset(ds: &Dataset) -> Self {
        let horizon_slots = ds.num_slots();
        let mut raw: Vec<TrafficEvent> = Vec::new();
        for slot in 0..horizon_slots {
            raw.push(TrafficEvent {
                seq: 0,
                time: slot as f64 * SLOT_SECS,
                slot,
                kind: TrafficEventKind::Observation,
                tensor: ds.traffic_tensor(slot).to_vec(),
            });
        }
        let index = SegmentIndex::build(&ds.net, 200.0);
        for inc in ds.traffic.incidents() {
            let Some(slot) = ds.try_slot_of(inc.t_start) else {
                continue; // incident starts past the tensor horizon
            };
            let Some(tensor) = perturbed_tensor(ds, slot, &inc.center, inc.severity) else {
                continue; // center fell outside the observation grid
            };
            let kind = if inc.severity >= CLOSURE_SEVERITY {
                match index.nearest(&ds.net, &inc.center) {
                    Some(seg) => TrafficEventKind::Closure { segment: seg },
                    None => TrafficEventKind::Incident,
                }
            } else {
                TrafficEventKind::Incident
            };
            raw.push(TrafficEvent {
                seq: 0,
                // report lands just after onset so it sorts behind the
                // slot's own observation sweep
                time: inc.t_start + 1.0,
                slot,
                kind,
                tensor,
            });
        }
        // Stable time sort, then dense seq assignment: the clean stream is
        // in-order by construction (ties broken by emission order above).
        raw.sort_by(|a, b| a.time.total_cmp(&b.time));
        for (i, ev) in raw.iter_mut().enumerate() {
            ev.seq = i as u64;
        }
        Self {
            events: raw,
            horizon_slots,
        }
    }

    /// The events, time-ordered with strictly increasing `seq`.
    pub fn events(&self) -> &[TrafficEvent] {
        &self.events
    }

    /// Number of traffic slots the feed covers.
    pub fn horizon_slots(&self) -> usize {
        self.horizon_slots
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the feed is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Build a single injected-incident event for time `time` at `center`:
/// the slot's observed tensor with the affected cell overwritten by a
/// crawl-speed reading. Returns `None` if `time` is outside the dataset
/// horizon or `center` is outside the observation grid.
///
/// This is the test/bench hook for decode-under-change: inject one incident,
/// then assert the prediction reacts within a slot.
pub fn incident_event(
    ds: &Dataset,
    seq: u64,
    time: f64,
    center: &Point,
    severity: f64,
) -> Option<TrafficEvent> {
    let slot = ds.try_slot_of(time)?;
    let tensor = perturbed_tensor(ds, slot, center, severity)?;
    Some(TrafficEvent {
        seq,
        time,
        slot,
        kind: TrafficEventKind::Incident,
        tensor,
    })
}

/// The slot tensor with the cell containing `center` overwritten by the
/// incident's crawl speed. `None` if the center is outside the grid.
fn perturbed_tensor(ds: &Dataset, slot: usize, center: &Point, severity: f64) -> Option<Vec<f32>> {
    let c = ds.grid.cell_of(center)?;
    let mut tensor = ds.traffic_tensor(slot).to_vec();
    // Cells read normalized average speed (0 = unobserved). The incident
    // report *is* an observation: an unobserved cell gets a nominal
    // half-speed baseline before the severity cut, and the result is floored
    // above zero so the cell reads "blocked", not "unobserved".
    let prior = if tensor[c] > 0.0 { tensor[c] } else { 0.5 };
    tensor[c] = (prior * (1.0 - severity).max(0.0) as f32).max(0.01);
    Some(tensor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CityPreset;
    use st_core::livetraffic::VersionedTraffic;

    fn dataset() -> Dataset {
        Dataset::generate(&CityPreset::tiny_test(), 30, 7)
    }

    #[test]
    fn feed_is_time_ordered_with_dense_seqs() {
        let ds = dataset();
        let feed = TrafficFeed::from_dataset(&ds);
        assert!(feed.len() >= ds.num_slots());
        for (i, ev) in feed.events().iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert!(ev.slot < feed.horizon_slots());
            if i > 0 {
                assert!(ev.time >= feed.events()[i - 1].time);
            }
        }
    }

    #[test]
    fn feed_covers_every_slot_and_replays_incidents() {
        let ds = dataset();
        let feed = TrafficFeed::from_dataset(&ds);
        let obs = feed
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TrafficEventKind::Observation))
            .count();
        assert_eq!(obs, ds.num_slots());
        let incidents = feed
            .events()
            .iter()
            .filter(|e| !matches!(e.kind, TrafficEventKind::Observation))
            .count();
        assert!(
            incidents > 0,
            "ground truth has incidents; feed replays none"
        );
    }

    #[test]
    fn clean_feed_applies_without_rejections() {
        let ds = dataset();
        let feed = TrafficFeed::from_dataset(&ds);
        let mut state = VersionedTraffic::with_horizon(feed.horizon_slots());
        for ev in feed.events() {
            assert!(state.apply(ev).is_applied(), "clean event rejected: {ev:?}");
        }
        assert_eq!(state.version(), feed.len() as u64);
        // the last event applied to each slot is what the state holds
        for slot in 0..feed.horizon_slots() {
            let last = feed.events().iter().rev().find(|e| e.slot == slot);
            if let Some(ev) = last {
                assert_eq!(state.tensor(slot), Some(ev.tensor.as_slice()));
            }
        }
    }

    #[test]
    fn incident_event_changes_the_affected_cell() {
        let ds = dataset();
        let center = ds.net.midpoint(0);
        let ev = incident_event(&ds, 99, 1500.0, &center, 0.95).expect("in-range incident");
        assert_eq!(ev.slot, 1);
        let base = ds.traffic_tensor(ev.slot);
        assert_eq!(ev.tensor.len(), base.len());
        let c = ds.grid.cell_of(&center).unwrap();
        assert!(
            (ev.tensor[c] - base[c]).abs() > 1e-6,
            "incident did not change the cell reading"
        );
        // out-of-horizon times are rejected, not clamped
        assert!(incident_event(&ds, 99, 1e12, &center, 0.95).is_none());
    }
}
