//! Trip and GPS trajectory generation.
//!
//! Trips follow the paper's Definitions 3–4: a trip is a travel along a
//! route starting at time `s`; a GPS trajectory is the sequence of noisy
//! position samples emitted while traversing that route under the live
//! traffic speeds.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use st_roadnet::{Point, RoadNetwork, Route, SegmentId};

use crate::traffic::TrafficModel;

/// One GPS sample `⟨p, τ⟩` (plus the device-reported instantaneous speed,
/// which real GPS units provide and which the traffic tensors are built
/// from).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpsPoint {
    /// Sampled position (with sensor noise).
    pub p: Point,
    /// Timestamp (s since simulation start).
    pub t: f64,
    /// Device-reported speed (m/s).
    pub speed: f64,
}

/// A GPS trajectory (Definition 3).
pub type Trajectory = Vec<GpsPoint>;

/// A simulated trip: the ground-truth route plus everything a model may
/// observe about it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trip {
    /// Ground-truth traveled route (Definition 2).
    pub route: Route,
    /// Start time `T.s` (s).
    pub start_time: f64,
    /// End time (s) — when the last segment is fully traversed.
    pub end_time: f64,
    /// Rough destination coordinate `T.x` (the paper assumes only this, not
    /// the exact destination segment, is known).
    pub dest_coord: Point,
    /// GPS trajectory emitted along the route.
    pub gps: Trajectory,
    /// Index of the destination hotspot that generated this trip (ground
    /// truth for diagnostics; models never see it).
    pub hotspot: usize,
}

impl Trip {
    /// The initial road segment `T.r₁`.
    pub fn origin_segment(&self) -> SegmentId {
        self.route[0]
    }

    /// The final road segment actually traveled.
    pub fn dest_segment(&self) -> SegmentId {
        // st-lint: allow(panic-in-lib) — simulated trips have >= 2 segments
        *self.route.last().unwrap()
    }

    /// Trip duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end_time - self.start_time
    }
}

/// Walk `route` starting at `start_time` under `traffic`, emitting a sample
/// every `sample_period` seconds with isotropic Gaussian noise `noise_m`.
/// Also returns the arrival time at the end of the route.
pub fn sample_gps(
    net: &RoadNetwork,
    traffic: &TrafficModel,
    route: &[SegmentId],
    start_time: f64,
    sample_period: f64,
    noise_m: f64,
    rng: &mut StdRng,
) -> (Trajectory, f64) {
    assert!(sample_period > 0.0);
    let mut traj = Vec::new();
    let mut t = start_time;
    let mut next_sample = start_time;
    for &seg in route {
        let speed = traffic.speed(net, seg, t);
        let seg_time = net.segment(seg).length / speed;
        let (a, b) = (net.start_point(seg), net.end_point(seg));
        // emit all samples that fall while traversing this segment
        while next_sample < t + seg_time {
            let frac = ((next_sample - t) / seg_time).clamp(0.0, 1.0);
            let pos = a.lerp(&b, frac);
            let noisy = Point::new(pos.x + gauss(rng) * noise_m, pos.y + gauss(rng) * noise_m);
            traj.push(GpsPoint {
                p: noisy,
                t: next_sample,
                speed,
            });
            next_sample += sample_period;
        }
        t += seg_time;
    }
    // final point at arrival
    if let Some(&seg) = route.last() {
        let end = net.end_point(seg);
        traj.push(GpsPoint {
            p: Point::new(end.x + gauss(rng) * noise_m, end.y + gauss(rng) * noise_m),
            t,
            speed: traffic.speed(net, seg, t),
        });
    }
    (traj, t)
}

/// Downsample a trajectory to one point per `period` seconds (keeping the
/// first and last points) — the sparse-trajectory generator for Table V.
pub fn downsample(traj: &[GpsPoint], period: f64) -> Trajectory {
    assert!(period > 0.0);
    let mut out = Vec::new();
    let mut next_keep = f64::NEG_INFINITY;
    for (i, gp) in traj.iter().enumerate() {
        if gp.t >= next_keep || i == traj.len() - 1 {
            out.push(*gp);
            next_keep = gp.t + period;
        }
    }
    out
}

/// Box–Muller standard normal (f64 variant for geometry).
pub(crate) fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A destination hotspot: trips gravitate toward a small set of popular
/// areas (malls, stations, business districts). The K-destination proxies of
/// §IV-C are exactly the structure that can exploit this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hotspot {
    /// Hotspot center.
    pub center: Point,
    /// Sampling weight (popularity).
    pub weight: f64,
    /// Std-dev of destination scatter around the center (m).
    pub sigma: f64,
}

/// Sample `k` hotspots over the network's bounding box.
pub fn sample_hotspots(net: &RoadNetwork, k: usize, rng: &mut StdRng) -> Vec<Hotspot> {
    let (min, max) = net.bounding_box();
    (0..k)
        .map(|_| Hotspot {
            center: Point::new(rng.gen_range(min.x..max.x), rng.gen_range(min.y..max.y)),
            weight: rng.gen_range(0.5..3.0),
            sigma: rng.gen_range(120.0..320.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficConfig;
    use st_roadnet::{grid_city, GridConfig};

    fn setup() -> (RoadNetwork, TrafficModel) {
        let net = grid_city(&GridConfig::small_test(), 5);
        let tm = TrafficModel::generate(&net, &TrafficConfig::default(), 5);
        (net, tm)
    }

    #[test]
    fn gps_timestamps_monotone_and_spaced() {
        let (net, tm) = setup();
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        let route: Vec<SegmentId> = {
            // build some valid route greedily
            let mut r = vec![0];
            for _ in 0..5 {
                let n = net.next_segments(*r.last().unwrap())[0];
                r.push(n);
            }
            r
        };
        let (traj, end) = sample_gps(&net, &tm, &route, 100.0, 3.0, 5.0, &mut rng);
        assert!(traj.len() >= 3);
        for w in traj.windows(2) {
            assert!(w[1].t >= w[0].t);
        }
        assert!(end > 100.0);
        assert_eq!(traj[0].t, 100.0);
        // samples every ~3s (except the final arrival point)
        for w in traj[..traj.len() - 1].windows(2) {
            assert!((w[1].t - w[0].t - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gps_points_near_route() {
        let (net, tm) = setup();
        let mut rng = rand::SeedableRng::seed_from_u64(2);
        let route = vec![0, net.next_segments(0)[0]];
        let (traj, _) = sample_gps(&net, &tm, &route, 0.0, 1.0, 3.0, &mut rng);
        for gp in &traj {
            let dmin = route
                .iter()
                .map(|&s| net.dist_to_segment(&gp.p, s))
                .fold(f64::INFINITY, f64::min);
            assert!(dmin < 25.0, "GPS point {dmin}m from route");
        }
    }

    #[test]
    fn downsample_respects_period() {
        let traj: Trajectory = (0..100)
            .map(|i| GpsPoint {
                p: Point::new(i as f64, 0.0),
                t: i as f64 * 3.0,
                speed: 1.0,
            })
            .collect();
        let sparse = downsample(&traj, 60.0);
        assert!(sparse.len() < 10);
        for w in sparse[..sparse.len() - 1].windows(2) {
            assert!(w[1].t - w[0].t >= 60.0 - 1e-9);
        }
        // endpoints preserved
        assert_eq!(sparse[0].t, traj[0].t);
        assert_eq!(sparse.last().unwrap().t, traj.last().unwrap().t);
    }

    #[test]
    fn hotspots_inside_city() {
        let (net, _) = setup();
        let mut rng = rand::SeedableRng::seed_from_u64(3);
        let hs = sample_hotspots(&net, 6, &mut rng);
        assert_eq!(hs.len(), 6);
        let (min, max) = net.bounding_box();
        for h in &hs {
            assert!(h.center.x >= min.x && h.center.x <= max.x);
            assert!(h.center.y >= min.y && h.center.y <= max.y);
            assert!(h.weight > 0.0 && h.sigma > 0.0);
        }
    }

    #[test]
    fn gauss_is_centered() {
        let mut rng = rand::SeedableRng::seed_from_u64(4);
        let mean: f64 = (0..10_000).map(|_| gauss(&mut rng)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05);
    }
}
