//! The neural sequence baselines: vanilla RNN and CSSRNN [7].
//!
//! - **RNN** (§V-A): "the vanilla RNN that only takes the initial road
//!   segment as input … ignoring the impact of both the destination and
//!   real-time traffic." Next-road logits come from the GRU state alone.
//! - **CSSRNN** [7]: "assumes the last road segments of the trips are known
//!   in advance and learns their representations to help model the spatial
//!   transition" — a *separate* representation per destination segment (the
//!   very thing DeepST's K-proxies improve on, §IV-C).
//!
//! Both share the same recurrent backbone and output-slot head as DeepST so
//! that Table IV differences isolate the conditioning information, not the
//! architecture.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use st_core::Example;
use st_nn::{Embedding, Gru, Module, PackedGru};
use st_roadnet::{RoadNetwork, Route, SegmentId};
use st_tensor::optim::{clip_grad_norm_grouped, Adam, Optimizer};
use st_tensor::{infer, init, ops, Binder, Param, ScratchArena, Tape, TapeFreeScope, Var};

use crate::beam::{beam_decode, StepDecoder};
use crate::predictor::{generate_route, PredictQuery, Predictor};
use st_tensor::Array;

/// Configuration shared by both neural baselines.
#[derive(Debug, Clone)]
pub struct RnnConfig {
    /// Segment vocabulary size.
    pub n_segments: usize,
    /// Output slot width (`max_r N(r)`).
    pub max_neighbors: usize,
    /// Embedding dimension.
    pub emb_dim: usize,
    /// GRU hidden size.
    pub hidden: usize,
    /// Stacked GRU layers.
    pub gru_layers: usize,
    /// Destination-segment embedding size (CSSRNN only).
    pub dest_dim: usize,
    /// Epochs / batch / learning rate.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Hard cap on generated route length.
    pub max_route_len: usize,
}

impl RnnConfig {
    /// Defaults mirroring the scaled DeepST settings.
    pub fn new(n_segments: usize, max_neighbors: usize) -> Self {
        Self {
            n_segments,
            max_neighbors,
            emb_dim: 32,
            hidden: 64,
            gru_layers: 2,
            dest_dim: 32,
            epochs: 8,
            batch_size: 64,
            lr: 3e-3,
            max_route_len: 150,
        }
    }
}

/// A GRU next-road model, optionally conditioned on the exact destination
/// segment (CSSRNN) — see module docs.
pub struct RnnBaseline {
    cfg: RnnConfig,
    name: &'static str,
    emb: Embedding,
    gru: Gru,
    /// Route-state projection into slot space.
    alpha: Param,
    /// Destination-segment embedding + projection (CSSRNN only).
    dest: Option<(Embedding, Param)>,
}

impl RnnBaseline {
    /// The vanilla RNN baseline.
    pub fn vanilla(cfg: RnnConfig, seed: u64) -> Self {
        Self::build(cfg, seed, false)
    }

    /// The CSSRNN baseline (destination-segment conditioned).
    pub fn cssrnn(cfg: RnnConfig, seed: u64) -> Self {
        Self::build(cfg, seed, true)
    }

    fn build(cfg: RnnConfig, seed: u64, use_dest: bool) -> Self {
        let mut rng = init::rng(seed);
        let name = if use_dest { "CSSRNN" } else { "RNN" };
        let emb = Embedding::new(
            &format!("{name}.emb"),
            cfg.n_segments,
            cfg.emb_dim,
            &mut rng,
        );
        let gru = Gru::new(
            &format!("{name}.gru"),
            cfg.emb_dim,
            cfg.hidden,
            cfg.gru_layers,
            &mut rng,
        );
        let alpha = Param::new(
            format!("{name}.alpha"),
            init::xavier(cfg.hidden, cfg.max_neighbors, &mut rng),
        );
        let dest = use_dest.then(|| {
            (
                Embedding::new(
                    &format!("{name}.dest_emb"),
                    cfg.n_segments,
                    cfg.dest_dim,
                    &mut rng,
                ),
                Param::new(
                    format!("{name}.beta"),
                    init::xavier(cfg.dest_dim, cfg.max_neighbors, &mut rng),
                ),
            )
        });
        Self {
            cfg,
            name,
            emb,
            gru,
            alpha,
            dest,
        }
    }

    /// Slot logits for a batch step.
    fn logits<'t, 'p>(
        &'p self,
        b: &Binder<'t, 'p>,
        h: Var<'t>,
        dest_segs: &[SegmentId],
    ) -> Var<'t> {
        let alpha = b.var(&self.alpha);
        let mut logits = ops::matmul(h, alpha);
        if let Some((demb, beta)) = &self.dest {
            let d = demb.forward(b, dest_segs);
            logits = ops::add(logits, ops::matmul(d, b.var(beta)));
        }
        logits
    }

    /// Cross-entropy loss (mean per transition) of a minibatch.
    fn batch_loss<'t, 'p>(&'p self, binder: &Binder<'t, 'p>, batch: &[&Example]) -> Var<'t> {
        let n = batch.len();
        let max_len = batch.iter().map(|e| e.route.len()).max().unwrap_or(1);
        // An (impossible) empty route pads with segment 0, like masked slots.
        let dest_segs: Vec<SegmentId> = batch
            .iter()
            .map(|e| e.route.last().copied().unwrap_or(0))
            .collect();
        let mut state = self.gru.zero_state(binder, n);
        let mut total: Option<Var<'t>> = None;
        let mut transitions = 0usize;
        for i in 0..max_len - 1 {
            let mut tokens = Vec::with_capacity(n);
            let mut targets = Vec::with_capacity(n);
            let mut mask = Vec::with_capacity(n);
            for e in batch {
                if i + 1 < e.route.len() {
                    tokens.push(e.route[i]);
                    targets.push(e.slots[i]);
                    mask.push(1.0);
                    transitions += 1;
                } else {
                    tokens.push(0);
                    targets.push(0);
                    mask.push(0.0);
                }
            }
            let inp = self.emb.forward(binder, &tokens);
            let hid = self.gru.step(binder, inp, &mut state);
            let logits = self.logits(binder, hid, &dest_segs);
            let logp = ops::log_softmax_rows(logits);
            let picked = ops::pick_per_row(logp, &targets);
            let masked = ops::sum_all(ops::mask_rows(ops::reshape(picked, &[n, 1]), &mask));
            total = Some(match total {
                Some(acc) => ops::add(acc, masked),
                None => masked,
            });
        }
        // A batch of length-1 routes has no transitions; its loss is 0.
        let total = total.unwrap_or_else(|| binder.input(Array::zeros(&[1])));
        ops::scale(total, -1.0 / transitions.max(1) as f32)
    }

    /// Statically analyze the training graph this baseline builds for
    /// `batch`: record one forward pass and run the [`st_tensor::analyze`]
    /// passes plus the module-level never-bound-parameter check. Side-effect
    /// free — no backward pass, no parameter updates.
    pub fn analyze_graph(&self, batch: &[&Example]) -> Vec<st_tensor::Diagnostic> {
        assert!(
            !batch.is_empty(),
            "analyze_graph needs at least one example"
        );
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let loss = self.batch_loss(&binder, batch);
        st_nn::analyze_module_graph(&tape, &binder, loss.id(), self)
    }

    /// Train on examples; returns per-epoch mean losses.
    pub fn fit(&mut self, examples: &[Example], rng: &mut StdRng) -> Vec<f32> {
        assert!(!examples.is_empty());
        let mut opt = Adam::new(self.cfg.lr);
        let mut history = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut order: Vec<usize> = (0..examples.len()).collect();
            order.shuffle(rng);
            let mut total = 0.0f64;
            let mut count = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                let refs: Vec<&Example> = chunk.iter().map(|&i| &examples[i]).collect();
                let tape = Tape::new();
                let binder = Binder::new(&tape);
                let loss = self.batch_loss(&binder, &refs);
                let lv = loss.scalar_value();
                if !lv.is_finite() {
                    continue;
                }
                let grads = tape.backward(loss);
                binder.accumulate_grads(&grads);
                let params = self.params();
                clip_grad_norm_grouped(&self.param_groups(), 5.0);
                opt.step(&params);
                total += lv as f64 * refs.len() as f64;
                count += refs.len();
            }
            history.push((total / count.max(1) as f64) as f32);
        }
        history
    }

    /// One recurrent step outside any training tape (compat shim): consume
    /// `token`, return the new state and the slot log-probs. Stepwise loops
    /// should open an [`RnnBaseline::decoder`] instead — this shim builds a
    /// fresh decoder per call.
    pub fn step_state(
        &self,
        state: &[Array],
        token: SegmentId,
        dest_seg: SegmentId,
    ) -> (Vec<Array>, Vec<f64>) {
        let mut dec = self.decoder(dest_seg);
        let mut new_state = state.to_vec();
        let mut logp = Vec::new();
        dec.step_rows(&[token], &mut new_state, &mut logp);
        (new_state, logp)
    }

    /// The pre-refactor taped step: records the forward pass on a throwaway
    /// tape. Kept (unused by decoding) as the parity oracle the tape-free
    /// [`RnnDecoder`] is tested against, and as the slow side of the decode
    /// benchmark.
    pub fn step_state_taped(
        &self,
        state: &[Array],
        token: SegmentId,
        dest_seg: SegmentId,
    ) -> (Vec<Array>, Vec<f64>) {
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let mut vars: Vec<_> = state.iter().map(|a| binder.input(a.clone())).collect();
        let inp = self.emb.forward(&binder, &[token]);
        let hid = self.gru.step(&binder, inp, &mut vars);
        let logits = self.logits(&binder, hid, &[dest_seg]);
        let logp = ops::log_softmax_rows(logits);
        (
            vars.iter().map(|v| (*v.value()).clone()).collect(),
            logp.value().data().iter().map(|&v| v as f64).collect(),
        )
    }

    /// Fresh zero state for [`RnnBaseline::step_state`].
    pub fn initial_state(&self) -> Vec<Array> {
        (0..self.cfg.gru_layers)
            .map(|_| Array::zeros(&[1, self.cfg.hidden]))
            .collect()
    }

    /// Open a tape-free [`StepDecoder`] for one trip. `dest_seg` is the
    /// destination segment CSSRNN conditions on (ignored by the vanilla
    /// RNN); its slot projection `emb(dest)·β` is computed once here and
    /// added to every step's logits. The recurrent weights and the slot
    /// head `α` are packed once per decoder for the fused step kernel.
    pub fn decoder(&self, dest_seg: SegmentId) -> RnnDecoder<'_> {
        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let dest_beta = self.dest.as_ref().map(|(demb, beta)| {
            let d = demb.infer(&mut arena, &[dest_seg]);
            let db = infer::matmul(&mut arena, &d, &beta.value());
            arena.recycle(d);
            db
        });
        RnnDecoder {
            model: self,
            arena,
            dest_beta,
            packed_gru: PackedGru::pack(&self.gru),
            alpha_packed: infer::PackedWeights::pack(&self.alpha.value()),
        }
    }
}

/// [`StepDecoder`] view of an [`RnnBaseline`] for one trip: tape-free
/// batched stepping over a `[rows, hidden]` packed state, with the
/// destination projection (CSSRNN) precomputed at construction.
pub struct RnnDecoder<'m> {
    model: &'m RnnBaseline,
    arena: ScratchArena,
    /// `emb(dest)·β` as a `[1, max_neighbors]` row (CSSRNN only).
    dest_beta: Option<Array>,
    /// GRU weights packed once at decoder construction.
    packed_gru: PackedGru,
    /// The slot head `α`, packed for the prepacked GEMM kernel.
    alpha_packed: infer::PackedWeights,
}

impl RnnDecoder<'_> {
    /// Advance every row: consume `tokens[i]` in state row `i`, refill
    /// `logp` with the row-major `[tokens.len(), max_neighbors]` slot
    /// log-probs. Arithmetic matches the taped step bit-for-bit: the
    /// per-row `+ dest·β` broadcast reproduces the taped
    /// `matmul(h,α) + matmul(d,β)` element order.
    fn step_rows(&mut self, tokens: &[SegmentId], state: &mut [Array], logp: &mut Vec<f64>) {
        let _scope = TapeFreeScope::enter();
        let x = self.model.emb.infer(&mut self.arena, tokens);
        self.packed_gru.infer_step_fused(&mut self.arena, &x, state);
        self.arena.recycle(x);
        let Some(h) = state.last() else {
            return;
        };
        let mut logits = infer::matmul_packed(&mut self.arena, h, &self.alpha_packed);
        if let Some(db) = &self.dest_beta {
            infer::add_bias_rows(&mut logits, db.data());
        }
        infer::log_softmax_rows_mut(&mut logits);
        logp.clear();
        logp.extend(logits.data().iter().map(|&v| f64::from(v)));
        self.arena.recycle(logits);
    }
}

impl StepDecoder for RnnDecoder<'_> {
    type State = Vec<Array>;

    fn width(&self) -> usize {
        self.model.cfg.max_neighbors
    }

    fn init_state(&mut self, n: usize) -> Vec<Array> {
        self.model.gru.infer_zero_state(&mut self.arena, n)
    }

    fn step(
        &mut self,
        _net: &RoadNetwork,
        tokens: &[SegmentId],
        state: &mut Vec<Array>,
        logp: &mut Vec<f64>,
    ) {
        self.step_rows(tokens, state, logp);
    }

    fn gather(&mut self, state: &Vec<Array>, rows: &[usize]) -> Vec<Array> {
        let mut out = Vec::with_capacity(state.len());
        for layer in state {
            let cols = layer.shape()[1];
            // Every row is overwritten below, so skip the zero fill.
            let mut sel = self.arena.alloc_uninit(&[rows.len(), cols]);
            for (r, &src) in rows.iter().enumerate() {
                sel.row_mut(r).copy_from_slice(layer.row(src));
            }
            out.push(sel);
        }
        out
    }

    fn recycle(&mut self, state: Vec<Array>) {
        for layer in state {
            self.arena.recycle(layer);
        }
    }
}

impl Module for RnnBaseline {
    fn params(&self) -> Vec<&Param> {
        let mut p = self.emb.params();
        p.extend(self.gru.params());
        p.push(&self.alpha);
        if let Some((demb, beta)) = &self.dest {
            p.extend(demb.params());
            p.push(beta);
        }
        p
    }

    /// Mirrors [`RnnBaseline::params`] with each sharded embedding table as
    /// one group, so grouped clipping stays bit-identical to the dense
    /// layout (see [`Module::param_groups`]).
    fn param_groups(&self) -> Vec<Vec<&Param>> {
        let mut g = self.emb.param_groups();
        g.extend(self.gru.params().into_iter().map(|p| vec![p]));
        g.push(vec![&self.alpha]);
        if let Some((demb, beta)) = &self.dest {
            g.extend(demb.param_groups());
            g.push(vec![beta]);
        }
        g
    }
}

impl Predictor for RnnBaseline {
    fn name(&self) -> &str {
        self.name
    }

    fn predict(&self, net: &RoadNetwork, q: &PredictQuery<'_>) -> Route {
        if self.dest.is_some() {
            // CSSRNN knows the exact destination segment (paper [7]); its
            // most-likely route is beam-decoded with the shared f_s
            // termination in the route probability.
            let mut dec = self.decoder(q.dest_segment);
            beam_decode(
                net,
                &mut dec,
                q.start,
                &q.dest_coord,
                8,
                self.cfg.max_route_len,
            )
        } else {
            // The vanilla RNN is destination-blind: greedy rollout; the
            // destination only stops generation, never steers it.
            let mut dec = self.decoder(0);
            let mut state = dec.init_state(1);
            let mut logps = Vec::new();
            generate_route(
                net,
                q.start,
                &q.dest_coord,
                self.cfg.max_route_len,
                |prefix| {
                    let cur = *prefix.last()?;
                    let nexts = net.next_segments(cur);
                    if nexts.is_empty() {
                        return None;
                    }
                    dec.step_rows(&[cur], &mut state, &mut logps);
                    let valid = &logps[..nexts.len().min(logps.len())];
                    let mut best = 0;
                    for (j, &v) in valid.iter().enumerate() {
                        if v > valid[best] {
                            best = j;
                        }
                    }
                    Some(nexts[best])
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};
    use std::sync::Arc;

    /// Examples whose next-step depends on the destination: trips to dest A
    /// always turn with slot 0, trips to dest B with slot 1.
    fn dest_dependent_examples(net: &RoadNetwork, n: usize) -> Vec<Example> {
        let tensor = Arc::new(Vec::new());
        let mut out = Vec::new();
        for i in 0..n {
            let to_a = i % 2 == 0;
            let mut route = vec![(i * 3) % net.num_segments()];
            for _ in 0..5 {
                let nexts = net.next_segments(*route.last().unwrap());
                let slot = if to_a { 0 } else { nexts.len() - 1 };
                route.push(nexts[slot]);
            }
            let dest = if to_a { [0.1, 0.1] } else { [0.9, 0.9] };
            if let Some(ex) = Example::new(net, route, dest, Arc::clone(&tensor), 0) {
                out.push(ex);
            }
        }
        out
    }

    #[test]
    fn cssrnn_beats_vanilla_on_dest_dependent_world() {
        let net = grid_city(&GridConfig::small_test(), 8);
        let examples = dest_dependent_examples(&net, 60);
        let cfg = RnnConfig {
            epochs: 18,
            lr: 5e-3,
            ..RnnConfig::new(net.num_segments(), net.max_out_degree())
        };
        let mut rng = init::rng(0);
        let mut vanilla = RnnBaseline::vanilla(cfg.clone(), 0);
        let v_hist = vanilla.fit(&examples, &mut rng);
        let mut css = RnnBaseline::cssrnn(cfg, 0);
        let c_hist = css.fit(&examples, &mut rng);
        // CSSRNN can disambiguate by destination; vanilla cannot.
        assert!(
            c_hist.last().unwrap() < v_hist.last().unwrap(),
            "CSSRNN {c_hist:?} not better than RNN {v_hist:?}"
        );
        // CSSRNN should do clearly better than a coin flip between the two
        // modes (ln 2 ≈ 0.693 nats per binary decision).
        assert!(
            *c_hist.last().unwrap() < 0.6,
            "CSSRNN loss {:?}",
            c_hist.last()
        );
    }

    #[test]
    fn training_reduces_loss() {
        let net = grid_city(&GridConfig::small_test(), 8);
        let examples = dest_dependent_examples(&net, 40);
        let cfg = RnnConfig::new(net.num_segments(), net.max_out_degree());
        let mut rng = init::rng(1);
        let mut model = RnnBaseline::vanilla(cfg, 1);
        let hist = model.fit(&examples, &mut rng);
        assert!(hist.last().unwrap() < hist.first().unwrap());
    }

    #[test]
    fn prediction_is_valid_route() {
        let net = grid_city(&GridConfig::small_test(), 8);
        let examples = dest_dependent_examples(&net, 20);
        let cfg = RnnConfig {
            epochs: 2,
            ..RnnConfig::new(net.num_segments(), net.max_out_degree())
        };
        let mut rng = init::rng(2);
        let mut model = RnnBaseline::cssrnn(cfg, 2);
        model.fit(&examples, &mut rng);
        let dst = net.num_segments() / 2;
        let q = PredictQuery {
            start: 0,
            dest_coord: net.midpoint(dst),
            dest_norm: [0.5, 0.5],
            dest_segment: dst,
            traffic: &[],
            slot_id: 0,
        };
        let r = model.predict(&net, &q);
        assert!(net.is_valid_route(&r));
        assert_eq!(r[0], 0);
        assert!(r.len() <= 150);
    }

    #[test]
    fn param_counts_differ() {
        let cfg = RnnConfig::new(50, 4);
        let v = RnnBaseline::vanilla(cfg.clone(), 0);
        let c = RnnBaseline::cssrnn(cfg, 0);
        assert!(c.num_params() > v.num_params());
        assert_eq!(v.name(), "RNN");
        assert_eq!(c.name(), "CSSRNN");
    }

    /// Zero analyzer false positives on both shipped baseline graphs.
    #[test]
    fn analyzer_clean_on_both_baselines() {
        let net = grid_city(&GridConfig::small_test(), 8);
        let examples = dest_dependent_examples(&net, 12);
        let refs: Vec<&Example> = examples.iter().collect();
        let cfg = RnnConfig::new(net.num_segments(), net.max_out_degree());
        for model in [
            RnnBaseline::vanilla(cfg.clone(), 0),
            RnnBaseline::cssrnn(cfg, 1),
        ] {
            let diags = model.analyze_graph(&refs);
            assert!(
                diags.is_empty(),
                "{}: analyzer false positives: {diags:?}",
                model.name()
            );
        }
    }

    /// Planted defects in the CSSRNN training graph: a never-bound
    /// parameter, a detached op, and an unclamped `ln` on the loss path.
    #[test]
    fn analyzer_flags_planted_defects_in_baseline_graph() {
        use st_tensor::LintKind;

        struct WithDead<'a> {
            inner: &'a RnnBaseline,
            dead: Param,
        }
        impl Module for WithDead<'_> {
            fn params(&self) -> Vec<&Param> {
                let mut ps = self.inner.params();
                ps.push(&self.dead);
                ps
            }
        }

        let net = grid_city(&GridConfig::small_test(), 8);
        let examples = dest_dependent_examples(&net, 8);
        let refs: Vec<&Example> = examples.iter().collect();
        let cfg = RnnConfig::new(net.num_segments(), net.max_out_degree());
        let model = RnnBaseline::cssrnn(cfg, 2);
        let planted = WithDead {
            inner: &model,
            dead: Param::new("CSSRNN.planted", Array::vector(vec![0.0; 3])),
        };
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let loss = model.batch_loss(&binder, &refs);
        let hazard = ops::sum_all(ops::ln(binder.input(Array::vector(vec![0.5, 2.0]))));
        let root = ops::add(loss, hazard);
        let _stray = ops::square(binder.input(Array::vector(vec![1.0, 2.0])));
        let diags = st_nn::analyze_module_graph(&tape, &binder, root.id(), &planted);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::UnreachableParam
                    && d.message.contains("CSSRNN.planted")),
            "missed never-bound parameter: {diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.kind == LintKind::DetachedSubgraph),
            "missed dead op: {diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.kind == LintKind::NanHazard),
            "missed ln hazard: {diags:?}"
        );
        assert_eq!(diags.len(), 3, "unexpected extra findings: {diags:?}");
    }
}
