//! MMI: the first-order Markov Model baseline (§V-A).
//!
//! Estimates `P(r_{i+1} | r_i)` by counting adjacent-segment transitions in
//! the historical trips, with add-one smoothing over the true adjacency.

use st_roadnet::{RoadNetwork, Route, SegmentId};

use crate::beam::StepDecoder;
use crate::predictor::{generate_route, PredictQuery, Predictor};

/// First-order Markov transition model over road segments.
pub struct Mmi {
    /// `counts[s][slot]` = observed transitions from `s` to its `slot`-th
    /// neighbor.
    counts: Vec<Vec<f64>>,
    max_len: usize,
}

impl Mmi {
    /// Fit transition counts from training routes.
    pub fn fit<'a>(net: &RoadNetwork, routes: impl IntoIterator<Item = &'a Route>) -> Self {
        let mut counts: Vec<Vec<f64>> = (0..net.num_segments())
            .map(|s| vec![0.0; net.next_segments(s).len()])
            .collect();
        for route in routes {
            for w in route.windows(2) {
                if let Some(slot) = net.neighbor_slot(w[0], w[1]) {
                    counts[w[0]][slot] += 1.0;
                }
            }
        }
        Self {
            counts,
            max_len: 150,
        }
    }

    /// Transition probability `P(next | cur)` with add-one smoothing.
    pub fn prob(&self, net: &RoadNetwork, cur: SegmentId, next: SegmentId) -> f64 {
        let Some(slot) = net.neighbor_slot(cur, next) else {
            return 0.0;
        };
        let c = &self.counts[cur];
        let total: f64 = c.iter().sum::<f64>() + c.len() as f64;
        (c[slot] + 1.0) / total
    }

    /// Log-likelihood of a route under the Markov model.
    pub fn score_route(&self, net: &RoadNetwork, route: &[SegmentId]) -> f64 {
        let mut total = 0.0;
        for w in route.windows(2) {
            let p = self.prob(net, w[0], w[1]);
            if p <= 0.0 {
                return f64::NEG_INFINITY;
            }
            total += p.ln();
        }
        total
    }

    /// Log-probabilities over the adjacent slots of `cur` (smoothed).
    pub fn slot_logprobs(&self, net: &RoadNetwork, cur: SegmentId) -> Vec<f64> {
        let c = &self.counts[cur];
        let total: f64 = c.iter().sum::<f64>() + c.len() as f64;
        net.next_segments(cur)
            .iter()
            .enumerate()
            .map(|(j, _)| ((c[j] + 1.0) / total).ln())
            .collect()
    }

    /// The most likely next segment from `cur` (greedy).
    pub fn best_next(&self, net: &RoadNetwork, cur: SegmentId) -> Option<SegmentId> {
        let nexts = net.next_segments(cur);
        if nexts.is_empty() {
            return None;
        }
        let c = &self.counts[cur];
        let mut best = 0;
        for j in 1..nexts.len() {
            if c[j] > c[best] {
                best = j;
            }
        }
        Some(nexts[best])
    }
}

/// [`StepDecoder`] view of an [`Mmi`] (for beam-decoding the Markov model
/// with the shared decoder). Stateless; rows are padded to the network's
/// maximum out-degree.
pub struct MmiDecoder<'m> {
    mmi: &'m Mmi,
    width: usize,
}

impl<'m> MmiDecoder<'m> {
    /// Build a decoder view over `net`'s fixed slot width.
    pub fn new(mmi: &'m Mmi, net: &RoadNetwork) -> Self {
        Self {
            mmi,
            width: net.max_out_degree(),
        }
    }
}

impl StepDecoder for MmiDecoder<'_> {
    type State = ();

    fn width(&self) -> usize {
        self.width
    }

    fn init_state(&mut self, _n: usize) {}

    fn step(
        &mut self,
        net: &RoadNetwork,
        tokens: &[SegmentId],
        _state: &mut (),
        logp: &mut Vec<f64>,
    ) {
        logp.clear();
        for &seg in tokens {
            let base = logp.len();
            let lps = self.mmi.slot_logprobs(net, seg);
            logp.extend(lps.into_iter().take(self.width));
            logp.resize(base + self.width, f64::NEG_INFINITY);
        }
    }

    fn gather(&mut self, _state: &(), _rows: &[usize]) {}
}

impl Predictor for Mmi {
    fn name(&self) -> &str {
        "MMI"
    }

    fn predict(&self, net: &RoadNetwork, q: &PredictQuery<'_>) -> Route {
        // MMI is destination-blind: a greedy most-likely rollout; the
        // destination only *stops* generation (shared f_s rule), it never
        // steers the search.
        generate_route(net, q.start, &q.dest_coord, self.max_len, |prefix| {
            self.best_next(net, prefix.last().copied()?)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};

    fn net() -> RoadNetwork {
        grid_city(&GridConfig::small_test(), 4)
    }

    fn routes(net: &RoadNetwork) -> Vec<Route> {
        // 10 routes always taking slot 0, 2 taking slot 1 where available
        let mut out = Vec::new();
        for rep in 0..12 {
            let slot = if rep < 10 { 0 } else { 1 };
            let mut r = vec![0usize];
            for _ in 0..4 {
                let nexts = net.next_segments(*r.last().unwrap());
                let j = slot.min(nexts.len() - 1);
                r.push(nexts[j]);
            }
            out.push(r);
        }
        out
    }

    #[test]
    fn learns_majority_transition() {
        let net = net();
        let rs = routes(&net);
        let mmi = Mmi::fit(&net, &rs);
        let nexts = net.next_segments(0);
        assert_eq!(mmi.best_next(&net, 0), Some(nexts[0]));
        // P(majority) > P(minority)
        if nexts.len() >= 2 {
            assert!(mmi.prob(&net, 0, nexts[0]) > mmi.prob(&net, 0, nexts[1]));
        }
    }

    #[test]
    fn probabilities_normalize() {
        let net = net();
        let mmi = Mmi::fit(&net, &routes(&net));
        for s in 0..net.num_segments() {
            let total: f64 = net
                .next_segments(s)
                .iter()
                .map(|&n| mmi.prob(&net, s, n))
                .sum();
            if !net.next_segments(s).is_empty() {
                assert!((total - 1.0).abs() < 1e-9, "segment {s}: total {total}");
            }
        }
    }

    #[test]
    fn unseen_transitions_are_smoothed_not_zero() {
        let net = net();
        let mmi = Mmi::fit(&net, &routes(&net));
        for &n in net.next_segments(7) {
            assert!(mmi.prob(&net, 7, n) > 0.0);
        }
        // non-adjacent is exactly zero
        let mut non_adj = None;
        for s in 0..net.num_segments() {
            if !net.adjacent(7, s) {
                non_adj = Some(s);
                break;
            }
        }
        assert_eq!(mmi.prob(&net, 7, non_adj.unwrap()), 0.0);
    }

    #[test]
    fn score_route_monotone_in_length() {
        let net = net();
        let rs = routes(&net);
        let mmi = Mmi::fit(&net, &rs);
        let r = &rs[0];
        assert!(mmi.score_route(&net, r) < mmi.score_route(&net, &r[..2]));
    }

    #[test]
    fn predicts_valid_route() {
        let net = net();
        let mmi = Mmi::fit(&net, &routes(&net));
        let q = PredictQuery {
            start: 0,
            dest_coord: net.midpoint(net.num_segments() - 1),
            dest_norm: [0.9, 0.9],
            dest_segment: net.num_segments() - 1,
            traffic: &[],
            slot_id: 0,
        };
        let r = mmi.predict(&net, &q);
        assert!(net.is_valid_route(&r));
        assert_eq!(r[0], 0);
    }
}
