//! `st-baselines`: every comparison method of the paper's evaluation (§V-A).
//!
//! - [`mmi::Mmi`] — first-order Markov model.
//! - [`wsp::Wsp`] — weighted shortest path on historical mean travel times.
//! - [`rnn::RnnBaseline`] — the vanilla RNN and CSSRNN [7] baselines.
//! - [`deepst_wrap::DeepStPredictor`] — adapter running DeepST / DeepST-C
//!   under the common [`predictor::Predictor`] interface.

pub mod beam;
pub mod deepst_wrap;
pub mod mmi;
pub mod predictor;
pub mod rnn;
pub mod wsp;

pub use beam::{
    beam_decode, beam_decode_closed, beam_decode_from, BeamSearch, DecodeCancelled, StepDecoder,
};
pub use deepst_wrap::{DeepStDecoder, DeepStPredictor};
pub use mmi::{Mmi, MmiDecoder};
pub use predictor::{generate_route, should_stop, PredictQuery, Predictor, TERM_SCALE_M};
pub use rnn::{RnnBaseline, RnnConfig, RnnDecoder};
pub use wsp::Wsp;
