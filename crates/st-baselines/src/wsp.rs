//! WSP: the weighted-shortest-path baseline (§V-A).
//!
//! "WSP always returns the shortest path from the origin road segment to the
//! destination road segment on the weighted road network. The edge weight
//! equals the mean travel time of the corresponding road segment, estimated
//! using the entire historical dataset."
//!
//! We estimate per-segment mean speeds from the historical trips' observable
//! data: each trip's average speed (route length / duration) is attributed
//! to every segment it traversed; unobserved segments fall back to the
//! network-wide mean speed.

use st_roadnet::{shortest, RoadNetwork, Route, SegmentId};

use crate::predictor::{PredictQuery, Predictor};

/// Historical mean-travel-time weights + Dijkstra.
pub struct Wsp {
    /// Mean travel time per segment (s).
    mean_time: Vec<f64>,
}

impl Wsp {
    /// Fit from `(route, duration_secs)` training trips.
    pub fn fit<'a>(net: &RoadNetwork, trips: impl IntoIterator<Item = (&'a Route, f64)>) -> Self {
        let n = net.num_segments();
        let mut speed_sum = vec![0.0f64; n];
        let mut speed_cnt = vec![0u32; n];
        let mut global_sum = 0.0;
        let mut global_cnt = 0u64;
        for (route, duration) in trips {
            let len = net.route_length(route);
            if duration <= 0.0 || len <= 0.0 {
                continue;
            }
            let avg_speed = len / duration;
            global_sum += avg_speed;
            global_cnt += 1;
            for &s in route {
                speed_sum[s] += avg_speed;
                speed_cnt[s] += 1;
            }
        }
        let global_speed = if global_cnt > 0 {
            global_sum / global_cnt as f64
        } else {
            10.0
        };
        let mean_time = (0..n)
            .map(|s| {
                let speed = if speed_cnt[s] > 0 {
                    speed_sum[s] / speed_cnt[s] as f64
                } else {
                    global_speed
                };
                net.segment(s).length / speed.max(0.5)
            })
            .collect();
        Self { mean_time }
    }

    /// The estimated mean travel time of a segment (s).
    pub fn mean_time(&self, s: SegmentId) -> f64 {
        self.mean_time[s]
    }
}

impl Predictor for Wsp {
    fn name(&self) -> &str {
        "WSP"
    }

    fn predict(&self, net: &RoadNetwork, q: &PredictQuery<'_>) -> Route {
        match shortest::shortest_route(net, q.start, q.dest_segment, &|s| self.mean_time[s]) {
            Some((route, _)) => route,
            None => vec![q.start],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig, Point};

    fn setup() -> (RoadNetwork, Wsp) {
        let net = grid_city(&GridConfig::small_test(), 6);
        // one synthetic trip over segments 0..: 10 m/s average
        let mut route = vec![0usize];
        for _ in 0..4 {
            route.push(net.next_segments(*route.last().unwrap())[0]);
        }
        let len = net.route_length(&route);
        let trips = [(route.clone(), len / 10.0)];
        let wsp = Wsp::fit(&net, trips.iter().map(|(r, d)| (r, *d)));
        (net, wsp)
    }

    #[test]
    fn observed_segments_get_observed_speed() {
        let (net, wsp) = setup();
        // segment 0 was traversed at 10 m/s
        let want = net.segment(0).length / 10.0;
        assert!((wsp.mean_time(0) - want).abs() < 1e-9);
    }

    #[test]
    fn unobserved_segments_use_global_mean() {
        let (net, wsp) = setup();
        // find an unobserved segment; its implied speed must equal 10 m/s
        // (the only trip's speed)
        let s = net.num_segments() - 1;
        let implied = net.segment(s).length / wsp.mean_time(s);
        assert!((implied - 10.0).abs() < 1e-9);
    }

    #[test]
    fn predicts_shortest_time_route() {
        let (net, wsp) = setup();
        let dst = net.num_segments() / 2;
        let q = PredictQuery {
            start: 0,
            dest_coord: net.midpoint(dst),
            dest_norm: [0.5, 0.5],
            dest_segment: dst,
            traffic: &[],
            slot_id: 0,
        };
        let r = wsp.predict(&net, &q);
        assert!(net.is_valid_route(&r));
        assert_eq!(*r.first().unwrap(), 0);
        assert_eq!(*r.last().unwrap(), dst);
        // matches Dijkstra on the same weights
        let (want, _) = shortest::shortest_route(&net, 0, dst, &|s| wsp.mean_time(s)).unwrap();
        assert_eq!(r, want);
    }

    #[test]
    fn empty_history_is_usable() {
        let net = grid_city(&GridConfig::small_test(), 6);
        let wsp = Wsp::fit(&net, std::iter::empty());
        assert!(wsp.mean_time(0) > 0.0);
        let _ = Point::new(0.0, 0.0);
    }
}
