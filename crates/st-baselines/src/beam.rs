//! Beam decoding of the most likely route under the full generative
//! probability, including the termination Bernoulli of §IV-A:
//!
//! ```text
//! P(r) = Π_i P(r_{i+1} | r_{1:i}, ·) · Π_{i<n} (1 − f_s(r_{i+1}, x)) · f_s(r_n, x)
//! ```
//!
//! Greedy sampling (Algorithm 2) is unbiased but suffers compounding errors
//! at small training scale; beam search over the *same* generative
//! probability is the deterministic "most likely route" decoder. It is used
//! uniformly for every sequential method (DeepST, DeepST-C, CSSRNN, RNN,
//! MMI) so the Table IV comparison isolates the models, not the decoders.
//!
//! The decoder is *batched*: all live beam prefixes advance through one
//! [`StepDecoder::step`] call per depth, with the recurrent state packed as
//! `[beam, hidden]` matrices, so the per-candidate GRU/GEMM work fuses into
//! single batched kernels instead of `beam_width` isolated steps. Because
//! the batched kernels compute each row exactly as a batch-1 step would,
//! the routes are bit-identical to the clone-and-step formulation (see the
//! `decode_parity` integration tests).

use st_core::CancelToken;
use st_roadnet::{Point, RoadNetwork, Route, SegmentId};

use crate::predictor::TERM_SCALE_M;

/// A batched stepwise sequence model usable by [`beam_decode`].
///
/// One implementor instance serves one trip (its context — destination,
/// traffic — is fixed at construction), owns whatever scratch memory the
/// steps need, and advances any number of candidate rows at once.
pub trait StepDecoder {
    /// Packed recurrent state for `n` candidate rows.
    type State;

    /// Number of slot log-probs emitted per row by [`StepDecoder::step`].
    ///
    /// **Truncation**: a fixed-width slot head (e.g. DeepST's
    /// `cfg.max_neighbors`-wide projection) may be narrower than
    /// `next_segments(seg)` at high-out-degree intersections. The decoder
    /// then only considers the covered prefix of the successor list; each
    /// such step bumps the `decode.truncated_transitions` /
    /// `decode.truncated_slots` st-obs counters and a one-time process
    /// warning, and `DeepSt::lint_output_space` flags the config statically.
    fn width(&self) -> usize;

    /// Fresh packed state for `n` rows (before any segment is consumed).
    fn init_state(&mut self, n: usize) -> Self::State;

    /// Consume `tokens[i]` in row `i`: update `state` in place and refill
    /// `logp` with `tokens.len() × width()` row-major log-probs over each
    /// token's adjacent slots (entries past a row's out-degree are ignored).
    fn step(
        &mut self,
        net: &RoadNetwork,
        tokens: &[SegmentId],
        state: &mut Self::State,
        logp: &mut Vec<f64>,
    );

    /// New packed state whose row `i` is `state`'s row `rows[i]` — survivor
    /// selection. Rows may repeat or be dropped.
    fn gather(&mut self, state: &Self::State, rows: &[usize]) -> Self::State;

    /// Return a state's buffers to the decoder's scratch pool (optional).
    fn recycle(&mut self, _state: Self::State) {}
}

/// The termination probability `f_s` used by the decoder: a Gaussian in the
/// distance between the destination and its projection on the segment.
///
/// The paper's `f_s = 1/(1 + ‖p(x,r) − x‖)` leaves the distance unit
/// unspecified; with any flat-tailed form, stopping far from the destination
/// is only polynomially unlikely, which biases maximum-probability decoding
/// toward degenerate short routes. The Gaussian keeps `f_s ≈ 1` at the
/// destination and makes a distant stop exponentially unlikely — the
/// behaviour the paper's generative story intends.
fn p_stop(net: &RoadNetwork, seg: SegmentId, dest: &Point) -> f64 {
    let proj = net.project_onto(dest, seg);
    let d = proj.dist(dest) / TERM_SCALE_M;
    (-d * d).exp().clamp(1e-12, 0.95)
}

/// A decode that was cancelled mid-search by its [`CancelToken`].
#[derive(Debug, Clone)]
pub struct DecodeCancelled {
    /// The best route known at the moment of cancellation: the best
    /// complete candidate if one was scored, otherwise the best live
    /// prefix. Always starts with the requested prefix.
    pub partial: Route,
}

impl std::fmt::Display for DecodeCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decode cancelled after reaching {} segment(s)",
            self.partial.len()
        )
    }
}

impl std::error::Error for DecodeCancelled {}

/// One scored successor of a live prefix, carried as `(parent, next)`
/// instead of a materialized route: routes are cloned only for the
/// `<= beam_width` survivors (plus at most one completion per depth), not
/// for every scored successor.
struct Expansion {
    next: SegmentId,
    logp: f64,
    parent_row: usize,
    parent_live: usize,
}

/// The beam search itself, factored out of [`beam_decode`] as a *resumable*
/// state machine: [`BeamSearch::plan_step`] names the rows that need one
/// batched model step, the caller runs that step however it likes (its own
/// [`StepDecoder`], or `st-serve`'s cross-request coalesced batch), and
/// [`BeamSearch::apply_step`] consumes the log-probs and reports the
/// surviving parent rows to gather. Driving it serially (as [`beam_decode`]
/// does) reproduces the original monolithic loop exactly — same expansions,
/// same tie-breaks, same counters — so one search implementation serves
/// both the offline decoder and the serving scheduler.
pub struct BeamSearch {
    beam_width: usize,
    /// Slot log-probs per row emitted by the model ([`StepDecoder::width`]).
    width: usize,
    dest: Point,
    /// `live[i]` is `(route, logp)`; its recurrent state is whatever row
    /// the caller's state holds for it (row `i` after a survivor gather).
    live: Vec<(Route, f64)>,
    best_complete: Option<(Route, f64)>,
    /// Memo of `(ln f_s, ln (1 − f_s))` per segment — the destination is
    /// fixed for the whole decode, so `p_stop` depends only on the segment,
    /// and segments recur across depths and beam rows. NaN = not yet
    /// computed; the clamp keeps `f_s` in `[1e-12, 0.95]`, so both logs are
    /// finite and NaN unambiguous.
    ps_memo: Vec<(f64, f64)>,
    /// Expansion rounds left (`max_len −` initial route length).
    remaining: usize,
    finished: bool,
    /// Closed segments (sorted): masked to −∞ transition log-prob, with the
    /// distribution renormalized over the open successors. Empty = no
    /// masking, the historical code path bit for bit.
    closed: Vec<SegmentId>,
    /// Scratch reused across depths.
    tokens: Vec<SegmentId>,
    steppable: Vec<usize>,
    survivors: Vec<usize>,
}

fn p_stop_logs(
    ps_memo: &mut [(f64, f64)],
    net: &RoadNetwork,
    seg: SegmentId,
    dest: &Point,
) -> (f64, f64) {
    let v = ps_memo[seg];
    if v.0.is_nan() {
        let ps = p_stop(net, seg, dest);
        let v = (ps.ln(), (1.0 - ps).ln());
        ps_memo[seg] = v;
        v
    } else {
        v
    }
}

impl BeamSearch {
    /// Start a search whose single live prefix is `initial` (ordinarily
    /// `vec![start]`; a longer prefix for continuation queries — the caller
    /// is responsible for having warmed its recurrent state on
    /// `initial[..len-1]`). Routes never exceed `max_len` segments.
    pub fn new(
        net: &RoadNetwork,
        initial: Route,
        dest: Point,
        beam_width: usize,
        width: usize,
        max_len: usize,
    ) -> Self {
        assert!(beam_width >= 1);
        assert!(!initial.is_empty(), "initial route must not be empty");
        let remaining = max_len.saturating_sub(initial.len());
        Self {
            beam_width,
            width,
            dest,
            live: vec![(initial, 0.0)],
            best_complete: None,
            ps_memo: vec![(f64::NAN, f64::NAN); net.num_segments()],
            remaining,
            finished: false,
            closed: Vec::new(),
            tokens: Vec::new(),
            steppable: Vec::new(),
            survivors: Vec::new(),
        }
    }

    /// Mask `closed` segments (e.g. [`st_core::livetraffic::VersionedTraffic::
    /// closed_segments`] at admission time) out of every transition
    /// distribution: a closed successor scores −∞ — never expanded, never a
    /// completion — and the remaining probability renormalizes over the open
    /// successors. When *every* successor of a prefix is closed the row
    /// falls back to the unmasked distribution (bumping
    /// `decode.closed.fallback`): a vehicle boxed in by closures still needs
    /// a route, and a guessed route beats none.
    pub fn set_closed_segments(&mut self, closed: &[SegmentId]) {
        self.closed = closed.to_vec();
        self.closed.sort_unstable();
        self.closed.dedup();
    }

    fn is_closed(&self, seg: SegmentId) -> bool {
        self.closed.binary_search(&seg).is_ok()
    }

    /// Has the search concluded? (`plan_step` will return `None`.)
    pub fn is_finished(&self) -> bool {
        self.finished || self.remaining == 0
    }

    /// Number of live prefixes (= recurrent-state rows the caller holds).
    pub fn live_rows(&self) -> usize {
        self.live.len()
    }

    /// Plan the next batched step: `(tokens, rows)` where `tokens[k]` is the
    /// head segment to feed for live prefix `rows[k]` — live prefixes whose
    /// head has successors, in live order (dead-ended prefixes drop out of
    /// the beam, exactly as in the clone-and-step formulation). The caller
    /// must gather state rows `rows`, run one batched step on `tokens`, and
    /// hand the resulting log-probs to [`BeamSearch::apply_step`]. Returns
    /// `None` when the search is over (length cap, dead ends, or prune).
    pub fn plan_step(&mut self, net: &RoadNetwork) -> Option<(&[SegmentId], &[usize])> {
        if self.finished || self.remaining == 0 {
            self.finished = true;
            return None;
        }
        self.remaining -= 1;
        self.tokens.clear();
        self.steppable.clear();
        for (i, (route, _)) in self.live.iter().enumerate() {
            let Some(&cur) = route.last() else { continue };
            if !net.next_segments(cur).is_empty() {
                self.tokens.push(cur);
                self.steppable.push(i);
            }
        }
        if self.tokens.is_empty() {
            self.finished = true;
            return None;
        }
        Some((&self.tokens, &self.steppable))
    }

    /// Consume one planned step's log-probs (`planned rows × width()`,
    /// row-major, in [`BeamSearch::plan_step`] row order): score expansions
    /// and completions, keep the best `beam_width` live prefixes, and return
    /// the surviving parent rows (indices into the *stepped* rows) for the
    /// caller to gather its state by. `None` means the search concluded at
    /// this depth (no expansions, or the −12 nat prune fired).
    pub fn apply_step(&mut self, net: &RoadNetwork, logp: &[f64]) -> Option<&[usize]> {
        let width = self.width;
        let mut expansions: Vec<Expansion> = Vec::new();
        // Best completion found at this depth, by parent + next segment;
        // materialized once after the scan. Seeding the running score from
        // the stored best keeps the "first strict improvement wins"
        // tie-break identical to scoring completions eagerly.
        let mut pending_complete: Option<(usize, SegmentId)> = None;
        let mut best_score = self
            .best_complete
            .as_ref()
            .map(|(_, s)| *s)
            .unwrap_or(f64::NEG_INFINITY);
        for (row, &i) in self.steppable.iter().enumerate() {
            let (route, item_logp) = &self.live[i];
            let Some(&cur) = route.last() else { continue };
            let nexts = net.next_segments(cur);
            if nexts.len() > width {
                st_obs::counter("decode.truncated_transitions").inc();
                st_obs::counter("decode.truncated_slots").add((nexts.len() - width) as u64);
                st_obs::warn_once(
                    "decode.truncated-output-space",
                    &format!(
                        "out-degree {} exceeds the scorer's {}-slot output: {} adjacent \
                         segment(s) unreachable in beam decoding",
                        nexts.len(),
                        width,
                        nexts.len() - width
                    ),
                );
            }
            // renormalize over the valid slots
            let lrow = &logp[row * width..(row + 1) * width];
            let valid = &lrow[..nexts.len().min(width)];
            // Closure masking: drop closed successors before renormalizing,
            // unless that would drop all of them (boxed-in fallback). With
            // no closures the skip predicate is constant-false and the fold
            // below performs the historical float ops in the historical
            // order — bit-identical.
            let mut mask = !self.closed.is_empty()
                && nexts.iter().take(valid.len()).any(|&n| self.is_closed(n));
            if mask && nexts.iter().take(valid.len()).all(|&n| self.is_closed(n)) {
                st_obs::counter("decode.closed.fallback").inc();
                st_obs::warn_once(
                    "decode.closed-fallback",
                    "every successor closed: decoding over the unmasked distribution",
                );
                mask = false;
            }
            let closed_list = &self.closed;
            let skip = |j: usize| mask && closed_list.binary_search(&nexts[j]).is_ok();
            let mut m = f64::NEG_INFINITY;
            for (j, &v) in valid.iter().enumerate() {
                if !skip(j) {
                    m = f64::max(m, v);
                }
            }
            let mut sum_exp = 0.0f64;
            for (j, &v) in valid.iter().enumerate() {
                if !skip(j) {
                    sum_exp += (v - m).exp();
                }
            }
            let lse = m + sum_exp.ln();
            for (j, &next) in nexts.iter().enumerate().take(valid.len()) {
                if skip(j) {
                    continue; // −∞ log-prob: closed successors never score
                }
                let lp_trans = valid[j] - lse;
                let (ln_ps, ln_go) = p_stop_logs(&mut self.ps_memo, net, next, &self.dest);
                // completion candidate: stop right after this segment
                let complete_score = item_logp + lp_trans + ln_ps;
                if complete_score > best_score {
                    best_score = complete_score;
                    pending_complete = Some((i, next));
                }
                expansions.push(Expansion {
                    next,
                    logp: item_logp + lp_trans + ln_go,
                    parent_row: row,
                    parent_live: i,
                });
            }
        }
        if let Some((i, next)) = pending_complete {
            let mut route = self.live[i].0.clone();
            route.push(next);
            self.best_complete = Some((route, best_score));
        }
        if expansions.is_empty() {
            self.finished = true;
            return None;
        }
        // keep the best `beam_width` live prefixes (stable sort: ties keep
        // expansion order, matching the clone-and-step decoder)
        expansions.sort_by(|a, b| b.logp.total_cmp(&a.logp));
        expansions.truncate(self.beam_width);
        // prune: if even the best live prefix cannot beat the best complete
        // candidate (its logp already below), stop early.
        if let Some((_, best)) = &self.best_complete {
            if expansions[0].logp < *best - 12.0 {
                self.finished = true;
                return None;
            }
        }
        // survivors: the caller gathers their parents' post-step state rows;
        // we materialize only the surviving routes.
        self.survivors.clear();
        self.survivors
            .extend(expansions.iter().map(|e| e.parent_row));
        self.live = expansions
            .iter()
            .map(|e| {
                let mut route = self.live[e.parent_live].0.clone();
                route.push(e.next);
                (route, e.logp)
            })
            .collect();
        Some(&self.survivors)
    }

    /// Conclude the search: the best complete candidate found, falling back
    /// to the best live prefix when no completion was ever scored (dead-end
    /// start or `max_len == 1`). Bumps `decode.beam.{complete,fallback}`.
    pub fn into_route(self) -> Route {
        match self.best_complete {
            Some((route, _)) => {
                st_obs::counter("decode.beam.complete").inc();
                route
            }
            None => {
                st_obs::counter("decode.beam.fallback").inc();
                self.live
                    .into_iter()
                    .next()
                    .map(|(route, _)| route)
                    .unwrap_or_default()
            }
        }
    }
}

/// Decode the most likely complete route from `start` toward `dest`.
///
/// Keeps `beam_width` live prefixes; whenever a prefix is extended, a
/// completed candidate (prefix + stop) is also scored. Returns the best
/// complete candidate found, falling back to the best live prefix at the
/// length cap. All live prefixes advance through one batched
/// [`StepDecoder::step`] per depth.
pub fn beam_decode<M: StepDecoder>(
    net: &RoadNetwork,
    model: &mut M,
    start: SegmentId,
    dest: &Point,
    beam_width: usize,
    max_len: usize,
) -> Route {
    let never = CancelToken::new();
    match beam_decode_from(net, model, &[start], dest, beam_width, max_len, &never) {
        Ok(route) => route,
        // Unreachable: the token above is never cancelled and has no
        // deadline, but the partial route is still the best answer.
        Err(cancelled) => cancelled.partial,
    }
}

/// [`beam_decode`] generalized to a traveled `prefix` (continuation
/// queries) and a cooperative [`CancelToken`], the serving deadline hook.
///
/// The recurrent state is warmed on `prefix[..len-1]` (the last prefix
/// segment is consumed by the first search step, exactly like
/// `DeepSt::predict_continuation`); with a one-segment prefix this is
/// [`beam_decode`] itself. The token is polled once per model step — during
/// warm-up and at every search depth — so a cancellation or deadline fires
/// within one step instead of waiting for the decode to run to its length
/// cap. On cancellation the best route known so far comes back in
/// [`DecodeCancelled::partial`].
#[allow(clippy::too_many_arguments)]
pub fn beam_decode_from<M: StepDecoder>(
    net: &RoadNetwork,
    model: &mut M,
    prefix: &[SegmentId],
    dest: &Point,
    beam_width: usize,
    max_len: usize,
    cancel: &CancelToken,
) -> Result<Route, DecodeCancelled> {
    beam_decode_closed(net, model, prefix, dest, beam_width, max_len, &[], cancel)
}

/// [`beam_decode_from`] under road closures: every segment in `closed`
/// (typically [`st_core::livetraffic::VersionedTraffic::closed_segments`]
/// at decode time) is masked to −∞ transition log-prob, so decoded routes
/// detour around closures — see [`BeamSearch::set_closed_segments`] for the
/// renormalization and boxed-in fallback semantics. An empty `closed` is
/// bit-identical to [`beam_decode_from`].
#[allow(clippy::too_many_arguments)]
pub fn beam_decode_closed<M: StepDecoder>(
    net: &RoadNetwork,
    model: &mut M,
    prefix: &[SegmentId],
    dest: &Point,
    beam_width: usize,
    max_len: usize,
    closed: &[SegmentId],
    cancel: &CancelToken,
) -> Result<Route, DecodeCancelled> {
    assert!(beam_width >= 1);
    assert!(
        !prefix.is_empty(),
        "prefix must hold at least the start segment"
    );
    let _sp = st_obs::span("decode/beam");
    let mut state = model.init_state(1);
    let mut logp_buf: Vec<f64> = Vec::new();
    if let Some((_, warm)) = prefix.split_last() {
        for &seg in warm {
            if cancel.is_cancelled() {
                model.recycle(state);
                return Err(DecodeCancelled {
                    partial: prefix.to_vec(),
                });
            }
            model.step(net, &[seg], &mut state, &mut logp_buf);
        }
    }
    let mut bs = BeamSearch::new(
        net,
        prefix.to_vec(),
        *dest,
        beam_width,
        model.width(),
        max_len,
    );
    if !closed.is_empty() {
        bs.set_closed_segments(closed);
    }
    loop {
        if cancel.is_cancelled() {
            model.recycle(state);
            return Err(DecodeCancelled {
                partial: bs.into_route(),
            });
        }
        let Some((tokens, rows)) = bs.plan_step(net) else {
            break;
        };
        // Pack the steppable rows and advance them all in one batched step.
        let packed = model.gather(&state, rows);
        model.recycle(std::mem::replace(&mut state, packed));
        model.step(net, tokens, &mut state, &mut logp_buf);
        let Some(srows) = bs.apply_step(net, &logp_buf) else {
            break;
        };
        let survivors = model.gather(&state, srows);
        model.recycle(std::mem::replace(&mut state, survivors));
    }
    model.recycle(state);
    Ok(bs.into_route())
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};

    /// A scorer that always prefers heading toward a fixed target vertex by
    /// straight-line distance (uniform otherwise).
    struct TowardTarget {
        target: Point,
        width: usize,
    }

    impl TowardTarget {
        fn new(net: &RoadNetwork, target: Point) -> Self {
            Self {
                target,
                width: net.max_out_degree(),
            }
        }
    }

    impl StepDecoder for TowardTarget {
        type State = ();
        fn width(&self) -> usize {
            self.width
        }
        fn init_state(&mut self, _n: usize) {}
        fn step(
            &mut self,
            net: &RoadNetwork,
            tokens: &[SegmentId],
            _state: &mut (),
            logp: &mut Vec<f64>,
        ) {
            logp.clear();
            for &seg in tokens {
                let nexts = net.next_segments(seg);
                for &n in nexts {
                    logp.push(-net.end_point(n).dist(&self.target) / 100.0);
                }
                for _ in nexts.len()..self.width {
                    logp.push(f64::NEG_INFINITY);
                }
            }
        }
        fn gather(&mut self, _state: &(), _rows: &[usize]) {}
    }

    #[test]
    fn beam_reaches_destination_area() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let mut model = TowardTarget::new(&net, dest);
        let route = beam_decode(&net, &mut model, 0, &dest, 4, 60);
        assert!(net.is_valid_route(&route));
        let last = *route.last().unwrap();
        let d = net.project_onto(&dest, last).dist(&dest);
        assert!(d < 200.0, "beam ended {d}m from destination");
        assert!(
            route.len() < 25,
            "beam route unreasonably long: {}",
            route.len()
        );
    }

    #[test]
    fn dead_end_start_returns_start_only() {
        // A network where one segment has no outgoing continuation.
        let mut net = RoadNetwork::new();
        let a = net.add_vertex(Point::new(0.0, 0.0));
        let b = net.add_vertex(Point::new(100.0, 0.0));
        let s = net.add_segment(a, b, 10.0); // one-way into a dead end
        net.freeze();
        let dest = Point::new(100.0, 0.0);
        let mut model = TowardTarget::new(&net, dest);
        let route = beam_decode(&net, &mut model, s, &dest, 4, 20);
        assert_eq!(route, vec![s]);
    }

    #[test]
    fn beam_one_is_greedy_like() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(10);
        let mut model = TowardTarget::new(&net, dest);
        let route = beam_decode(&net, &mut model, 0, &dest, 1, 60);
        assert!(net.is_valid_route(&route));
        assert_eq!(route[0], 0);
    }

    /// Greedy decoding that mirrors `beam_decode`'s semantics exactly
    /// (per-step renormalization, completion candidates scored for *every*
    /// successor, the −12 nat prune): the oracle for `beam_width = 1`.
    fn greedy_reference<M: StepDecoder>(
        net: &RoadNetwork,
        model: &mut M,
        start: SegmentId,
        dest: &Point,
        max_len: usize,
    ) -> Route {
        let width = model.width();
        let mut route = vec![start];
        let mut state = model.init_state(1);
        let mut logps = Vec::new();
        let mut logp = 0.0f64;
        let mut best_complete: Option<(Route, f64)> = None;
        for _ in 1..max_len {
            let cur = *route.last().unwrap();
            let nexts = net.next_segments(cur);
            if nexts.is_empty() {
                break;
            }
            model.step(net, &[cur], &mut state, &mut logps);
            let valid = &logps[..nexts.len().min(width)];
            let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = m + valid.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
            let mut best_j = 0;
            let mut best_live = f64::NEG_INFINITY;
            for (j, &next) in nexts.iter().enumerate().take(valid.len()) {
                let lp_trans = valid[j] - lse;
                let ps = p_stop(net, next, dest);
                let complete = logp + lp_trans + ps.ln();
                if best_complete
                    .as_ref()
                    .map(|(_, s)| complete > *s)
                    .unwrap_or(true)
                {
                    let mut r = route.clone();
                    r.push(next);
                    best_complete = Some((r, complete));
                }
                let live = lp_trans + (1.0 - ps).ln();
                if live > best_live {
                    best_live = live;
                    best_j = j;
                }
            }
            logp += best_live;
            route.push(nexts[best_j]);
            if let Some((_, best)) = &best_complete {
                if logp < *best - 12.0 {
                    break;
                }
            }
        }
        match best_complete {
            Some((r, _)) => r,
            None => route,
        }
    }

    #[test]
    fn beam_width_one_matches_greedy_reference() {
        let net = grid_city(&GridConfig::small_test(), 3);
        for target_seg in [1usize, 10, net.num_segments() - 1] {
            let dest = net.midpoint(target_seg);
            let mut model = TowardTarget::new(&net, dest);
            let beam = beam_decode(&net, &mut model, 0, &dest, 1, 60);
            let greedy = greedy_reference(&net, &mut model, 0, &dest, 60);
            assert_eq!(beam, greedy, "target segment {target_seg}");
        }
    }

    /// Satellite pin: decoding under a closure detours — the closed segment
    /// never appears in the route, and the destination is still reached.
    #[test]
    fn closure_masking_detours_around_closed_segment() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let mut model = TowardTarget::new(&net, dest);
        let open = beam_decode(&net, &mut model, 0, &dest, 4, 60);
        assert!(open.len() >= 3, "route too short to close a middle segment");
        // close a segment the unmasked decode wanted to use
        let blocked = open[open.len() / 2];
        let never = CancelToken::new();
        let detour =
            beam_decode_closed(&net, &mut model, &[0], &dest, 4, 60, &[blocked], &never).unwrap();
        assert!(net.is_valid_route(&detour));
        assert!(
            !detour.contains(&blocked),
            "decoded route drives through the closed segment"
        );
        let last = *detour.last().unwrap();
        let d = net.project_onto(&dest, last).dist(&dest);
        assert!(d < 300.0, "detour ended {d}m from destination");
    }

    /// An empty or irrelevant closed set leaves the decode bit-identical.
    #[test]
    fn irrelevant_closures_do_not_perturb_the_route() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let mut model = TowardTarget::new(&net, dest);
        let baseline = beam_decode(&net, &mut model, 0, &dest, 4, 60);
        let never = CancelToken::new();
        let masked_empty =
            beam_decode_closed(&net, &mut model, &[0], &dest, 4, 60, &[], &never).unwrap();
        assert_eq!(baseline, masked_empty);
        // a closed segment the search never considers: same route
        let far = baseline.iter().fold(0usize, |acc, &s| acc.max(s)) + 1;
        if far < net.num_segments() && !baseline.contains(&far) {
            let masked_far =
                beam_decode_closed(&net, &mut model, &[0], &dest, 4, 60, &[far], &never).unwrap();
            assert_eq!(baseline, masked_far);
        }
    }

    /// Boxed in: when every successor is closed the row falls back to the
    /// unmasked distribution instead of dead-ending the beam.
    #[test]
    fn all_successors_closed_falls_back_to_unmasked() {
        // a → b → c: segment s2 is b→c, the only way onward from s1.
        let mut net = RoadNetwork::new();
        let a = net.add_vertex(Point::new(0.0, 0.0));
        let b = net.add_vertex(Point::new(100.0, 0.0));
        let c = net.add_vertex(Point::new(200.0, 0.0));
        let s1 = net.add_segment(a, b, 10.0);
        let s2 = net.add_segment(b, c, 10.0);
        net.freeze();
        let dest = Point::new(200.0, 0.0);
        let mut model = TowardTarget::new(&net, dest);
        let before = st_obs::counter("decode.closed.fallback").get();
        let never = CancelToken::new();
        let route =
            beam_decode_closed(&net, &mut model, &[s1], &dest, 2, 10, &[s2], &never).unwrap();
        assert_eq!(route, vec![s1, s2], "boxed-in vehicle still gets a route");
        assert!(
            st_obs::counter("decode.closed.fallback").get() > before,
            "fallback not counted"
        );
    }

    #[test]
    fn dead_end_prefix_completes_at_the_dead_end() {
        // a → b → c, with c terminal: the only live prefix dies after two
        // steps, and the decoder must return the complete candidate
        // [s1, s2] scored before the dead end — not an empty fallback.
        let mut net = RoadNetwork::new();
        let a = net.add_vertex(Point::new(0.0, 0.0));
        let b = net.add_vertex(Point::new(100.0, 0.0));
        let c = net.add_vertex(Point::new(200.0, 0.0));
        let s1 = net.add_segment(a, b, 10.0);
        let s2 = net.add_segment(b, c, 10.0);
        net.freeze();
        let dest = Point::new(200.0, 0.0);
        let mut model = TowardTarget::new(&net, dest);
        let route = beam_decode(&net, &mut model, s1, &dest, 4, 20);
        assert_eq!(route, vec![s1, s2]);
    }

    #[test]
    fn length_cap_of_one_falls_back_to_start_prefix() {
        // max_len = 1 forbids any expansion, so no complete candidate can
        // exist; the decoder must fall back to the best (only) live
        // prefix — the bare start segment.
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let mut model = TowardTarget::new(&net, dest);
        let before = st_obs::counter("decode.beam.fallback").get();
        let route = beam_decode(&net, &mut model, 0, &dest, 4, 1);
        assert_eq!(route, vec![0]);
        assert_eq!(st_obs::counter("decode.beam.fallback").get(), before + 1);
    }

    #[test]
    fn length_cap_bounds_route_length() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let mut model = TowardTarget::new(&net, dest);
        for cap in [2usize, 3, 5] {
            let route = beam_decode(&net, &mut model, 0, &dest, 4, cap);
            assert!(
                route.len() <= cap,
                "cap {cap} produced length {}",
                route.len()
            );
            assert!(net.is_valid_route(&route));
        }
    }

    #[test]
    fn truncated_scorer_is_counted() {
        // A scorer reporting only one slot regardless of out-degree: every
        // multi-successor step truncates.
        struct OneSlot;
        impl StepDecoder for OneSlot {
            type State = ();
            fn width(&self) -> usize {
                1
            }
            fn init_state(&mut self, _n: usize) {}
            fn step(
                &mut self,
                _net: &RoadNetwork,
                tokens: &[SegmentId],
                _state: &mut (),
                logp: &mut Vec<f64>,
            ) {
                logp.clear();
                logp.resize(tokens.len(), 0.0);
            }
            fn gather(&mut self, _state: &(), _rows: &[usize]) {}
        }
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let before = st_obs::counter("decode.truncated_transitions").get();
        let route = beam_decode(&net, &mut OneSlot, 0, &dest, 2, 10);
        assert!(net.is_valid_route(&route));
        assert!(
            st_obs::counter("decode.truncated_transitions").get() > before,
            "truncation went uncounted"
        );
    }

    /// A `StepDecoder` wrapper that counts model steps and trips a
    /// [`CancelToken`] from inside step number `cancel_on` — simulating a
    /// deadline expiring while the kernel is running.
    struct CancelDuringStep<M> {
        inner: M,
        steps: usize,
        cancel_on: usize,
        token: CancelToken,
    }

    impl<M: StepDecoder> StepDecoder for CancelDuringStep<M> {
        type State = M::State;
        fn width(&self) -> usize {
            self.inner.width()
        }
        fn init_state(&mut self, n: usize) -> M::State {
            self.inner.init_state(n)
        }
        fn step(
            &mut self,
            net: &RoadNetwork,
            tokens: &[SegmentId],
            state: &mut M::State,
            logp: &mut Vec<f64>,
        ) {
            self.steps += 1;
            if self.steps == self.cancel_on {
                self.token.cancel();
            }
            self.inner.step(net, tokens, state, logp);
        }
        fn gather(&mut self, state: &M::State, rows: &[usize]) -> M::State {
            self.inner.gather(state, rows)
        }
    }

    /// The satellite-2 pin: a decode cancelled during step `k` performs no
    /// step `k + 1` — cancellation fires within one step, not at the length
    /// cap or the end of the request.
    #[test]
    fn cancelled_decode_returns_within_one_step() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        // Uncancelled baseline: how many steps does the full decode take?
        let mut free = CancelDuringStep {
            inner: TowardTarget::new(&net, dest),
            steps: 0,
            cancel_on: usize::MAX,
            token: CancelToken::new(),
        };
        let free_token = free.token.clone();
        let full = beam_decode_from(&net, &mut free, &[0], &dest, 4, 60, &free_token);
        assert!(full.is_ok());
        let full_steps = free.steps;
        assert!(full_steps > 3, "route too short to test mid-decode cancel");

        // Cancel from inside step 2: the decoder must observe it before
        // step 3 and return the best partial route with a typed error.
        let mut model = CancelDuringStep {
            inner: TowardTarget::new(&net, dest),
            steps: 0,
            cancel_on: 2,
            token: CancelToken::new(),
        };
        let token = model.token.clone();
        let out = beam_decode_from(&net, &mut model, &[0], &dest, 4, 60, &token);
        let cancelled = match out {
            Err(c) => c,
            Ok(_) => panic!("cancelled decode returned Ok"),
        };
        assert_eq!(model.steps, 2, "decode ran past the cancellation step");
        assert!(net.is_valid_route(&cancelled.partial));
        assert_eq!(cancelled.partial[0], 0);
        assert!(!cancelled.to_string().is_empty());
    }

    /// A pre-cancelled token stops the decode before any model step.
    #[test]
    fn pre_cancelled_decode_takes_no_steps() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(5);
        let mut model = CancelDuringStep {
            inner: TowardTarget::new(&net, dest),
            steps: 0,
            cancel_on: usize::MAX,
            token: CancelToken::new(),
        };
        model.token.cancel();
        let token = model.token.clone();
        let out = beam_decode_from(&net, &mut model, &[0], &dest, 4, 60, &token);
        assert!(out.is_err());
        assert_eq!(model.steps, 0);
    }

    /// With a one-segment prefix and a live token, `beam_decode_from` *is*
    /// `beam_decode`.
    #[test]
    fn decode_from_single_segment_prefix_matches_beam_decode() {
        let net = grid_city(&GridConfig::small_test(), 3);
        for target in [1usize, 10, net.num_segments() - 1] {
            let dest = net.midpoint(target);
            let mut model = TowardTarget::new(&net, dest);
            let plain = beam_decode(&net, &mut model, 0, &dest, 4, 60);
            let token = CancelToken::new();
            let via_from = beam_decode_from(&net, &mut model, &[0], &dest, 4, 60, &token);
            assert_eq!(via_from.ok().as_ref(), Some(&plain), "target {target}");
        }
    }

    /// Continuation decoding extends the prefix with valid segments and
    /// returns the prefix itself unchanged at its head.
    #[test]
    fn decode_from_longer_prefix_extends_it() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let mut prefix = vec![0usize];
        for _ in 0..3 {
            prefix.push(net.next_segments(*prefix.last().unwrap())[0]);
        }
        let mut model = TowardTarget::new(&net, dest);
        let token = CancelToken::new();
        let route =
            beam_decode_from(&net, &mut model, &prefix, &dest, 4, 60, &token).expect("live token");
        assert!(route.len() >= prefix.len());
        assert_eq!(&route[..prefix.len()], prefix.as_slice());
        assert!(net.is_valid_route(&route));
    }

    #[test]
    fn wider_beam_never_worse_under_own_score() {
        // score routes under the model's own full generative probability
        let net = grid_city(&GridConfig::small_test(), 5);
        let dest = net.midpoint(net.num_segments() / 2);
        let mut model = TowardTarget::new(&net, dest);
        let narrow = beam_decode(&net, &mut model, 1, &dest, 1, 50);
        let wide = beam_decode(&net, &mut model, 1, &dest, 8, 50);
        let mut full_score = |route: &Route| {
            let mut lp = 0.0;
            let mut state = ();
            model.init_state(1);
            let mut logps = Vec::new();
            for i in 0..route.len() - 1 {
                model.step(&net, &[route[i]], &mut state, &mut logps);
                let nexts = net.next_segments(route[i]);
                let valid = &logps[..nexts.len()];
                let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lse = m + valid.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
                let j = nexts.iter().position(|&n| n == route[i + 1]).unwrap();
                lp += valid[j] - lse;
                let ps = p_stop(&net, route[i + 1], &dest);
                lp += if i + 1 == route.len() - 1 {
                    ps.ln()
                } else {
                    (1.0 - ps).ln()
                };
            }
            lp
        };
        let wide_score = full_score(&wide);
        let narrow_score = full_score(&narrow);
        assert!(wide_score >= narrow_score - 1e-9);
    }
}
