//! Beam decoding of the most likely route under the full generative
//! probability, including the termination Bernoulli of §IV-A:
//!
//! ```text
//! P(r) = Π_i P(r_{i+1} | r_{1:i}, ·) · Π_{i<n} (1 − f_s(r_{i+1}, x)) · f_s(r_n, x)
//! ```
//!
//! Greedy sampling (Algorithm 2) is unbiased but suffers compounding errors
//! at small training scale; beam search over the *same* generative
//! probability is the deterministic "most likely route" decoder. It is used
//! uniformly for every sequential method (DeepST, DeepST-C, CSSRNN, RNN,
//! MMI) so the Table IV comparison isolates the models, not the decoders.
//!
//! The decoder is *batched*: all live beam prefixes advance through one
//! [`StepDecoder::step`] call per depth, with the recurrent state packed as
//! `[beam, hidden]` matrices, so the per-candidate GRU/GEMM work fuses into
//! single batched kernels instead of `beam_width` isolated steps. Because
//! the batched kernels compute each row exactly as a batch-1 step would,
//! the routes are bit-identical to the clone-and-step formulation (see the
//! `decode_parity` integration tests).

use st_roadnet::{Point, RoadNetwork, Route, SegmentId};

use crate::predictor::TERM_SCALE_M;

/// A batched stepwise sequence model usable by [`beam_decode`].
///
/// One implementor instance serves one trip (its context — destination,
/// traffic — is fixed at construction), owns whatever scratch memory the
/// steps need, and advances any number of candidate rows at once.
pub trait StepDecoder {
    /// Packed recurrent state for `n` candidate rows.
    type State;

    /// Number of slot log-probs emitted per row by [`StepDecoder::step`].
    ///
    /// **Truncation**: a fixed-width slot head (e.g. DeepST's
    /// `cfg.max_neighbors`-wide projection) may be narrower than
    /// `next_segments(seg)` at high-out-degree intersections. The decoder
    /// then only considers the covered prefix of the successor list; each
    /// such step bumps the `decode.truncated_transitions` /
    /// `decode.truncated_slots` st-obs counters and a one-time process
    /// warning, and `DeepSt::lint_output_space` flags the config statically.
    fn width(&self) -> usize;

    /// Fresh packed state for `n` rows (before any segment is consumed).
    fn init_state(&mut self, n: usize) -> Self::State;

    /// Consume `tokens[i]` in row `i`: update `state` in place and refill
    /// `logp` with `tokens.len() × width()` row-major log-probs over each
    /// token's adjacent slots (entries past a row's out-degree are ignored).
    fn step(
        &mut self,
        net: &RoadNetwork,
        tokens: &[SegmentId],
        state: &mut Self::State,
        logp: &mut Vec<f64>,
    );

    /// New packed state whose row `i` is `state`'s row `rows[i]` — survivor
    /// selection. Rows may repeat or be dropped.
    fn gather(&mut self, state: &Self::State, rows: &[usize]) -> Self::State;

    /// Return a state's buffers to the decoder's scratch pool (optional).
    fn recycle(&mut self, _state: Self::State) {}
}

/// The termination probability `f_s` used by the decoder: a Gaussian in the
/// distance between the destination and its projection on the segment.
///
/// The paper's `f_s = 1/(1 + ‖p(x,r) − x‖)` leaves the distance unit
/// unspecified; with any flat-tailed form, stopping far from the destination
/// is only polynomially unlikely, which biases maximum-probability decoding
/// toward degenerate short routes. The Gaussian keeps `f_s ≈ 1` at the
/// destination and makes a distant stop exponentially unlikely — the
/// behaviour the paper's generative story intends.
fn p_stop(net: &RoadNetwork, seg: SegmentId, dest: &Point) -> f64 {
    let proj = net.project_onto(dest, seg);
    let d = proj.dist(dest) / TERM_SCALE_M;
    (-d * d).exp().clamp(1e-12, 0.95)
}

/// Decode the most likely complete route from `start` toward `dest`.
///
/// Keeps `beam_width` live prefixes; whenever a prefix is extended, a
/// completed candidate (prefix + stop) is also scored. Returns the best
/// complete candidate found, falling back to the best live prefix at the
/// length cap. All live prefixes advance through one batched
/// [`StepDecoder::step`] per depth.
pub fn beam_decode<M: StepDecoder>(
    net: &RoadNetwork,
    model: &mut M,
    start: SegmentId,
    dest: &Point,
    beam_width: usize,
    max_len: usize,
) -> Route {
    assert!(beam_width >= 1);
    let _sp = st_obs::span("decode/beam");
    let width = model.width();
    // `live[i]` is `(route, logp)`; row `i` of `state` is its GRU state.
    let mut live: Vec<(Route, f64)> = vec![(vec![start], 0.0)];
    let mut state = model.init_state(1);
    let mut logp_buf: Vec<f64> = Vec::new();
    let mut best_complete: Option<(Route, f64)> = None;
    // The destination is fixed for the whole decode, so `p_stop` depends
    // only on the segment: memoize `(ln f_s, ln (1 − f_s))` per segment —
    // the scoring loop only ever consumes the logs, and segments recur
    // across depths and beam rows. NaN = not yet computed; the clamp keeps
    // `f_s` in `[1e-12, 0.95]`, so both logs are finite and NaN unambiguous.
    let mut ps_memo: Vec<(f64, f64)> = vec![(f64::NAN, f64::NAN); net.num_segments()];
    let mut p_stop_logs = |seg: SegmentId| -> (f64, f64) {
        let v = ps_memo[seg];
        if v.0.is_nan() {
            let ps = p_stop(net, seg, dest);
            let v = (ps.ln(), (1.0 - ps).ln());
            ps_memo[seg] = v;
            v
        } else {
            v
        }
    };
    for _ in 1..max_len {
        // Rows that can step: live prefixes whose head has successors, in
        // live order (dead-ended prefixes drop out of the beam, exactly as
        // in the clone-and-step formulation).
        let mut tokens: Vec<SegmentId> = Vec::new();
        let mut steppable: Vec<usize> = Vec::new();
        for (i, (route, _)) in live.iter().enumerate() {
            let Some(&cur) = route.last() else { continue };
            if !net.next_segments(cur).is_empty() {
                tokens.push(cur);
                steppable.push(i);
            }
        }
        if tokens.is_empty() {
            break;
        }
        // Pack the steppable rows and advance them all in one batched step.
        let packed = model.gather(&state, &steppable);
        model.recycle(std::mem::replace(&mut state, packed));
        model.step(net, &tokens, &mut state, &mut logp_buf);

        // Expansions carry `(parent, next)` instead of a materialized route:
        // routes are cloned only for the <= beam_width survivors (plus at
        // most one completion per depth), not for every scored successor.
        struct Expansion {
            next: SegmentId,
            logp: f64,
            parent_row: usize,
            parent_live: usize,
        }
        let mut expansions: Vec<Expansion> = Vec::new();
        // Best completion found at this depth, by parent + next segment;
        // materialized once after the scan. Seeding the running score from
        // the stored best keeps the "first strict improvement wins"
        // tie-break identical to scoring completions eagerly.
        let mut pending_complete: Option<(usize, SegmentId)> = None;
        let mut best_score = best_complete
            .as_ref()
            .map(|(_, s)| *s)
            .unwrap_or(f64::NEG_INFINITY);
        for (row, &i) in steppable.iter().enumerate() {
            let (route, item_logp) = &live[i];
            let Some(&cur) = route.last() else { continue };
            let nexts = net.next_segments(cur);
            if nexts.len() > width {
                st_obs::counter("decode.truncated_transitions").inc();
                st_obs::counter("decode.truncated_slots").add((nexts.len() - width) as u64);
                st_obs::warn_once(
                    "decode.truncated-output-space",
                    &format!(
                        "out-degree {} exceeds the scorer's {}-slot output: {} adjacent \
                         segment(s) unreachable in beam decoding",
                        nexts.len(),
                        width,
                        nexts.len() - width
                    ),
                );
            }
            // renormalize over the valid slots
            let lrow = &logp_buf[row * width..(row + 1) * width];
            let valid = &lrow[..nexts.len().min(width)];
            let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = m + valid.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
            for (j, &next) in nexts.iter().enumerate().take(valid.len()) {
                let lp_trans = valid[j] - lse;
                let (ln_ps, ln_go) = p_stop_logs(next);
                // completion candidate: stop right after this segment
                let complete_score = item_logp + lp_trans + ln_ps;
                if complete_score > best_score {
                    best_score = complete_score;
                    pending_complete = Some((i, next));
                }
                expansions.push(Expansion {
                    next,
                    logp: item_logp + lp_trans + ln_go,
                    parent_row: row,
                    parent_live: i,
                });
            }
        }
        if let Some((i, next)) = pending_complete {
            let mut route = live[i].0.clone();
            route.push(next);
            best_complete = Some((route, best_score));
        }
        if expansions.is_empty() {
            break;
        }
        // keep the best `beam_width` live prefixes (stable sort: ties keep
        // expansion order, matching the clone-and-step decoder)
        expansions.sort_by(|a, b| b.logp.total_cmp(&a.logp));
        expansions.truncate(beam_width);
        // prune: if even the best live prefix cannot beat the best complete
        // candidate (its logp already below), stop early.
        if let Some((_, best)) = &best_complete {
            if expansions[0].logp < *best - 12.0 {
                break;
            }
        }
        // survivors: gather their parents' post-step state rows and
        // materialize only the surviving routes
        let rows: Vec<usize> = expansions.iter().map(|e| e.parent_row).collect();
        let survivors = model.gather(&state, &rows);
        model.recycle(std::mem::replace(&mut state, survivors));
        live = expansions
            .iter()
            .map(|e| {
                let mut route = live[e.parent_live].0.clone();
                route.push(e.next);
                (route, e.logp)
            })
            .collect();
    }
    match best_complete {
        Some((route, _)) => {
            st_obs::counter("decode.beam.complete").inc();
            route
        }
        None => {
            // No expansion ever happened (dead-end start or max_len == 1):
            // fall back to the best live prefix.
            st_obs::counter("decode.beam.fallback").inc();
            live.into_iter()
                .next()
                .map(|(route, _)| route)
                .unwrap_or_else(|| vec![start])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};

    /// A scorer that always prefers heading toward a fixed target vertex by
    /// straight-line distance (uniform otherwise).
    struct TowardTarget {
        target: Point,
        width: usize,
    }

    impl TowardTarget {
        fn new(net: &RoadNetwork, target: Point) -> Self {
            Self {
                target,
                width: net.max_out_degree(),
            }
        }
    }

    impl StepDecoder for TowardTarget {
        type State = ();
        fn width(&self) -> usize {
            self.width
        }
        fn init_state(&mut self, _n: usize) {}
        fn step(
            &mut self,
            net: &RoadNetwork,
            tokens: &[SegmentId],
            _state: &mut (),
            logp: &mut Vec<f64>,
        ) {
            logp.clear();
            for &seg in tokens {
                let nexts = net.next_segments(seg);
                for &n in nexts {
                    logp.push(-net.end_point(n).dist(&self.target) / 100.0);
                }
                for _ in nexts.len()..self.width {
                    logp.push(f64::NEG_INFINITY);
                }
            }
        }
        fn gather(&mut self, _state: &(), _rows: &[usize]) {}
    }

    #[test]
    fn beam_reaches_destination_area() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let mut model = TowardTarget::new(&net, dest);
        let route = beam_decode(&net, &mut model, 0, &dest, 4, 60);
        assert!(net.is_valid_route(&route));
        let last = *route.last().unwrap();
        let d = net.project_onto(&dest, last).dist(&dest);
        assert!(d < 200.0, "beam ended {d}m from destination");
        assert!(
            route.len() < 25,
            "beam route unreasonably long: {}",
            route.len()
        );
    }

    #[test]
    fn dead_end_start_returns_start_only() {
        // A network where one segment has no outgoing continuation.
        let mut net = RoadNetwork::new();
        let a = net.add_vertex(Point::new(0.0, 0.0));
        let b = net.add_vertex(Point::new(100.0, 0.0));
        let s = net.add_segment(a, b, 10.0); // one-way into a dead end
        net.freeze();
        let dest = Point::new(100.0, 0.0);
        let mut model = TowardTarget::new(&net, dest);
        let route = beam_decode(&net, &mut model, s, &dest, 4, 20);
        assert_eq!(route, vec![s]);
    }

    #[test]
    fn beam_one_is_greedy_like() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(10);
        let mut model = TowardTarget::new(&net, dest);
        let route = beam_decode(&net, &mut model, 0, &dest, 1, 60);
        assert!(net.is_valid_route(&route));
        assert_eq!(route[0], 0);
    }

    /// Greedy decoding that mirrors `beam_decode`'s semantics exactly
    /// (per-step renormalization, completion candidates scored for *every*
    /// successor, the −12 nat prune): the oracle for `beam_width = 1`.
    fn greedy_reference<M: StepDecoder>(
        net: &RoadNetwork,
        model: &mut M,
        start: SegmentId,
        dest: &Point,
        max_len: usize,
    ) -> Route {
        let width = model.width();
        let mut route = vec![start];
        let mut state = model.init_state(1);
        let mut logps = Vec::new();
        let mut logp = 0.0f64;
        let mut best_complete: Option<(Route, f64)> = None;
        for _ in 1..max_len {
            let cur = *route.last().unwrap();
            let nexts = net.next_segments(cur);
            if nexts.is_empty() {
                break;
            }
            model.step(net, &[cur], &mut state, &mut logps);
            let valid = &logps[..nexts.len().min(width)];
            let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = m + valid.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
            let mut best_j = 0;
            let mut best_live = f64::NEG_INFINITY;
            for (j, &next) in nexts.iter().enumerate().take(valid.len()) {
                let lp_trans = valid[j] - lse;
                let ps = p_stop(net, next, dest);
                let complete = logp + lp_trans + ps.ln();
                if best_complete
                    .as_ref()
                    .map(|(_, s)| complete > *s)
                    .unwrap_or(true)
                {
                    let mut r = route.clone();
                    r.push(next);
                    best_complete = Some((r, complete));
                }
                let live = lp_trans + (1.0 - ps).ln();
                if live > best_live {
                    best_live = live;
                    best_j = j;
                }
            }
            logp += best_live;
            route.push(nexts[best_j]);
            if let Some((_, best)) = &best_complete {
                if logp < *best - 12.0 {
                    break;
                }
            }
        }
        match best_complete {
            Some((r, _)) => r,
            None => route,
        }
    }

    #[test]
    fn beam_width_one_matches_greedy_reference() {
        let net = grid_city(&GridConfig::small_test(), 3);
        for target_seg in [1usize, 10, net.num_segments() - 1] {
            let dest = net.midpoint(target_seg);
            let mut model = TowardTarget::new(&net, dest);
            let beam = beam_decode(&net, &mut model, 0, &dest, 1, 60);
            let greedy = greedy_reference(&net, &mut model, 0, &dest, 60);
            assert_eq!(beam, greedy, "target segment {target_seg}");
        }
    }

    #[test]
    fn dead_end_prefix_completes_at_the_dead_end() {
        // a → b → c, with c terminal: the only live prefix dies after two
        // steps, and the decoder must return the complete candidate
        // [s1, s2] scored before the dead end — not an empty fallback.
        let mut net = RoadNetwork::new();
        let a = net.add_vertex(Point::new(0.0, 0.0));
        let b = net.add_vertex(Point::new(100.0, 0.0));
        let c = net.add_vertex(Point::new(200.0, 0.0));
        let s1 = net.add_segment(a, b, 10.0);
        let s2 = net.add_segment(b, c, 10.0);
        net.freeze();
        let dest = Point::new(200.0, 0.0);
        let mut model = TowardTarget::new(&net, dest);
        let route = beam_decode(&net, &mut model, s1, &dest, 4, 20);
        assert_eq!(route, vec![s1, s2]);
    }

    #[test]
    fn length_cap_of_one_falls_back_to_start_prefix() {
        // max_len = 1 forbids any expansion, so no complete candidate can
        // exist; the decoder must fall back to the best (only) live
        // prefix — the bare start segment.
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let mut model = TowardTarget::new(&net, dest);
        let before = st_obs::counter("decode.beam.fallback").get();
        let route = beam_decode(&net, &mut model, 0, &dest, 4, 1);
        assert_eq!(route, vec![0]);
        assert_eq!(st_obs::counter("decode.beam.fallback").get(), before + 1);
    }

    #[test]
    fn length_cap_bounds_route_length() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let mut model = TowardTarget::new(&net, dest);
        for cap in [2usize, 3, 5] {
            let route = beam_decode(&net, &mut model, 0, &dest, 4, cap);
            assert!(
                route.len() <= cap,
                "cap {cap} produced length {}",
                route.len()
            );
            assert!(net.is_valid_route(&route));
        }
    }

    #[test]
    fn truncated_scorer_is_counted() {
        // A scorer reporting only one slot regardless of out-degree: every
        // multi-successor step truncates.
        struct OneSlot;
        impl StepDecoder for OneSlot {
            type State = ();
            fn width(&self) -> usize {
                1
            }
            fn init_state(&mut self, _n: usize) {}
            fn step(
                &mut self,
                _net: &RoadNetwork,
                tokens: &[SegmentId],
                _state: &mut (),
                logp: &mut Vec<f64>,
            ) {
                logp.clear();
                logp.resize(tokens.len(), 0.0);
            }
            fn gather(&mut self, _state: &(), _rows: &[usize]) {}
        }
        let net = grid_city(&GridConfig::small_test(), 3);
        let dest = net.midpoint(net.num_segments() - 1);
        let before = st_obs::counter("decode.truncated_transitions").get();
        let route = beam_decode(&net, &mut OneSlot, 0, &dest, 2, 10);
        assert!(net.is_valid_route(&route));
        assert!(
            st_obs::counter("decode.truncated_transitions").get() > before,
            "truncation went uncounted"
        );
    }

    #[test]
    fn wider_beam_never_worse_under_own_score() {
        // score routes under the model's own full generative probability
        let net = grid_city(&GridConfig::small_test(), 5);
        let dest = net.midpoint(net.num_segments() / 2);
        let mut model = TowardTarget::new(&net, dest);
        let narrow = beam_decode(&net, &mut model, 1, &dest, 1, 50);
        let wide = beam_decode(&net, &mut model, 1, &dest, 8, 50);
        let mut full_score = |route: &Route| {
            let mut lp = 0.0;
            let mut state = ();
            model.init_state(1);
            let mut logps = Vec::new();
            for i in 0..route.len() - 1 {
                model.step(&net, &[route[i]], &mut state, &mut logps);
                let nexts = net.next_segments(route[i]);
                let valid = &logps[..nexts.len()];
                let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lse = m + valid.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
                let j = nexts.iter().position(|&n| n == route[i + 1]).unwrap();
                lp += valid[j] - lse;
                let ps = p_stop(&net, route[i + 1], &dest);
                lp += if i + 1 == route.len() - 1 {
                    ps.ln()
                } else {
                    (1.0 - ps).ln()
                };
            }
            lp
        };
        let wide_score = full_score(&wide);
        let narrow_score = full_score(&narrow);
        assert!(wide_score >= narrow_score - 1e-9);
    }
}
