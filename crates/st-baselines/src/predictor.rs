//! The common interface all route-prediction methods implement, and shared
//! generation helpers.
//!
//! Each method sees a [`PredictQuery`] and uses only the fields its paper
//! description allows:
//!
//! | method  | start | dest coord | exact dest segment | traffic |
//! |---------|-------|------------|--------------------|---------|
//! | MMI     | ✓     | (termination only) | –          | –       |
//! | RNN     | ✓     | (termination only) | –          | –       |
//! | WSP     | ✓     | –          | ✓                  | –       |
//! | CSSRNN  | ✓     | (termination only) | ✓          | –       |
//! | DeepST-C| ✓     | ✓          | –                  | –       |
//! | DeepST  | ✓     | ✓          | –                  | ✓       |
//!
//! Decoding protocol (see DESIGN.md §4b): destination-aware methods
//! (DeepST, DeepST-C, CSSRNN) decode the most likely route with beam search
//! over their full generative probability including the termination
//! Bernoulli `f_s`; destination-blind methods (MMI, RNN) use greedy
//! most-likely rollouts in which `f_s` only *stops* generation and never
//! steers it; WSP is a Dijkstra query. This keeps each method's information
//! set exactly as the paper describes.

use st_roadnet::{Point, RoadNetwork, Route, SegmentId};

/// Everything a method may condition on for one trip.
#[derive(Debug, Clone)]
pub struct PredictQuery<'a> {
    /// The initial road segment `T.r₁`.
    pub start: SegmentId,
    /// Rough destination coordinate (meters).
    pub dest_coord: Point,
    /// Destination coordinate normalized to the unit square.
    pub dest_norm: [f32; 2],
    /// The exact destination road segment — only CSSRNN and WSP may read
    /// this (the paper grants those baselines exact ending streets).
    pub dest_segment: SegmentId,
    /// The traffic tensor of the trip's slot (`[H·W]`).
    pub traffic: &'a [f32],
    /// The traffic slot id (for caching encodings).
    pub slot_id: usize,
}

/// A route-prediction method under evaluation.
pub trait Predictor {
    /// Display name used in tables.
    fn name(&self) -> &str;

    /// Predict the most likely route for a trip.
    fn predict(&self, net: &RoadNetwork, query: &PredictQuery<'_>) -> Route;
}

/// Termination scale shared by all `f_s`-terminated methods (m).
pub const TERM_SCALE_M: f64 = 150.0;

/// The geometric stop rule `f_s` thresholded at ½: stop once the projection
/// of the destination onto the current segment is within
/// `TERM_SCALE_M·√(ln 2)` (Gaussian termination, see [`crate::beam`]).
pub fn should_stop(net: &RoadNetwork, seg: SegmentId, dest: &Point) -> bool {
    let proj = net.project_onto(dest, seg);
    let d = proj.dist(dest) / TERM_SCALE_M;
    (-d * d).exp() > 0.5
}

/// Greedy sequential generation: repeatedly apply `choose_next` (which maps
/// the traveled prefix to the next segment, or `None` at dead ends) until
/// the stop rule fires or `max_len` is reached.
pub fn generate_route(
    net: &RoadNetwork,
    start: SegmentId,
    dest: &Point,
    max_len: usize,
    mut choose_next: impl FnMut(&[SegmentId]) -> Option<SegmentId>,
) -> Route {
    let mut route = vec![start];
    while route.len() < max_len {
        let Some(next) = choose_next(&route) else {
            break;
        };
        debug_assert!(route.last().is_some_and(|&cur| net.adjacent(cur, next)));
        route.push(next);
        if should_stop(net, next, dest) {
            break;
        }
    }
    route
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};

    #[test]
    fn stop_rule_fires_near_destination() {
        let net = grid_city(&GridConfig::small_test(), 0);
        let dest = net.midpoint(0);
        assert!(should_stop(&net, 0, &dest));
        let far = Point::new(dest.x + 5_000.0, dest.y);
        assert!(!should_stop(&net, 0, &far));
    }

    #[test]
    fn generate_respects_max_len_and_dead_end() {
        let net = grid_city(&GridConfig::small_test(), 0);
        let dest = Point::new(1e6, 1e6); // unreachable, never stops early
        let r = generate_route(&net, 0, &dest, 5, |prefix| {
            net.next_segments(*prefix.last().unwrap()).first().copied()
        });
        assert_eq!(r.len(), 5);
        let r2 = generate_route(&net, 0, &dest, 5, |_| None);
        assert_eq!(r2, vec![0]);
    }
}
