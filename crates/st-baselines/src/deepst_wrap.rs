//! [`Predictor`] adapter for DeepST / DeepST-C with per-slot traffic caching.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use st_core::{DeepSt, TripContext};
use st_roadnet::{RoadNetwork, Route, SegmentId};
use st_tensor::Array;

use crate::beam::{beam_decode, SeqScorer};
use crate::predictor::{PredictQuery, Predictor};

/// Wraps a trained [`DeepSt`] so it can be evaluated alongside the baselines.
/// Traffic encodings are cached per slot id — trips in the same 20-minute
/// slot share one `C` (§IV-D), so the CNN runs once per slot.
pub struct DeepStPredictor {
    model: DeepSt,
    name: &'static str,
    traffic_cache: RefCell<HashMap<usize, Array>>,
    /// Whether the output-space lint has run for this predictor (once, on
    /// the first predict call — `max_out_degree` scans the whole network).
    linted: Cell<bool>,
}

impl DeepStPredictor {
    /// Wrap a trained model. The display name is `DeepST` or `DeepST-C`
    /// depending on the model's traffic pathway.
    pub fn new(model: DeepSt) -> Self {
        let name = if model.cfg.use_traffic {
            "DeepST"
        } else {
            "DeepST-C"
        };
        Self {
            model,
            name,
            traffic_cache: RefCell::new(HashMap::new()),
            linted: Cell::new(false),
        }
    }

    /// Access the wrapped model.
    pub fn model(&self) -> &DeepSt {
        &self.model
    }

    fn traffic_context(&self, q: &PredictQuery<'_>) -> Option<Array> {
        if !self.model.cfg.use_traffic {
            return None;
        }
        let mut cache = self.traffic_cache.borrow_mut();
        Some(
            cache
                .entry(q.slot_id)
                .or_insert_with(|| self.model.encode_traffic(q.traffic))
                .clone(),
        )
    }
}

/// [`SeqScorer`] view of a DeepST model for one trip (fixed context).
struct DeepStScorer<'m> {
    model: &'m DeepSt,
    ctx: TripContext,
}

impl SeqScorer for DeepStScorer<'_> {
    type State = Vec<Array>;

    fn init_state(&self) -> Vec<Array> {
        self.model.initial_state()
    }

    fn step(
        &self,
        _net: &RoadNetwork,
        state: &Vec<Array>,
        seg: SegmentId,
    ) -> (Vec<Array>, Vec<f64>) {
        self.model.step_state(state, seg, &self.ctx)
    }
}

impl Predictor for DeepStPredictor {
    fn name(&self) -> &str {
        self.name
    }

    fn predict(&self, net: &RoadNetwork, q: &PredictQuery<'_>) -> Route {
        if !self.linted.replace(true) {
            if let Some(diag) = self.model.lint_output_space(net) {
                st_obs::warn_once("deepst.truncated-output-space", &diag.to_string());
            }
        }
        let c = self.traffic_context(q);
        let ctx = self.model.encode_context(q.dest_norm, c);
        let scorer = DeepStScorer {
            model: &self.model,
            ctx,
        };
        beam_decode(
            net,
            &scorer,
            q.start,
            &q.dest_coord,
            8,
            self.model.cfg.max_route_len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::DeepStConfig;
    use st_roadnet::{grid_city, GridConfig};

    #[test]
    fn wrapper_predicts_and_caches() {
        let net = grid_city(&GridConfig::small_test(), 1);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 0);
        let wrapper = DeepStPredictor::new(model);
        assert_eq!(wrapper.name(), "DeepST");
        let tensor = vec![0.1f32; 64];
        let q = PredictQuery {
            start: 0,
            dest_coord: net.midpoint(5),
            dest_norm: [0.5, 0.5],
            dest_segment: 5,
            traffic: &tensor,
            slot_id: 3,
        };
        let r1 = wrapper.predict(&net, &q);
        assert!(net.is_valid_route(&r1));
        assert_eq!(wrapper.traffic_cache.borrow().len(), 1);
        let _ = wrapper.predict(&net, &q);
        assert_eq!(wrapper.traffic_cache.borrow().len(), 1, "cache not reused");
    }

    #[test]
    fn deepst_c_wrapper_name() {
        let net = grid_city(&GridConfig::small_test(), 1);
        let cfg =
            DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8).without_traffic();
        let wrapper = DeepStPredictor::new(DeepSt::new(cfg, 0));
        assert_eq!(wrapper.name(), "DeepST-C");
        let q = PredictQuery {
            start: 2,
            dest_coord: net.midpoint(9),
            dest_norm: [0.3, 0.7],
            dest_segment: 9,
            traffic: &[],
            slot_id: 0,
        };
        let r = wrapper.predict(&net, &q);
        assert!(net.is_valid_route(&r));
    }
}
