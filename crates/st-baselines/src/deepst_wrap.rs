//! [`Predictor`] adapter for DeepST / DeepST-C with per-slot traffic caching.

use std::cell::{Cell, RefCell};

use st_core::livetraffic::{ApplyOutcome, TrafficCache, TrafficEvent, VersionedTraffic};
use st_core::{DeepSt, InferPrecision, InferSession, TripContext};
use st_roadnet::{RoadNetwork, Route, SegmentId};
use st_tensor::Array;

use crate::beam::{beam_decode, StepDecoder};
use crate::predictor::{PredictQuery, Predictor};

/// Default bound on cached traffic-slot encodings: one day of the paper's
/// 20-minute slots. Keeps a long-running server's cache from growing with
/// the number of distinct slots ever seen.
pub const DEFAULT_TRAFFIC_CACHE_CAP: usize = 72;

/// Wraps a trained [`DeepSt`] so it can be evaluated alongside the baselines.
///
/// Trips in the same 20-minute slot share one `C` (§IV-D), so the CNN runs
/// once per `(slot, traffic version)`: the [`TrafficCache`] keys encodings
/// by slot *and* the slot's live-feed version, so a live update can never be
/// served a stale encoding — the version mismatch evicts exactly that slot's
/// entry (`predict.traffic_cache.invalidate`), leaving the rest of the cache
/// warm. Feed events enter through [`DeepStPredictor::ingest`].
pub struct DeepStPredictor {
    model: DeepSt,
    name: &'static str,
    traffic_cache: RefCell<TrafficCache>,
    /// Live traffic state built from ingested feed events. Slots the feed
    /// has never touched report version 0 and fall back to the query's own
    /// tensor, so a feed-less deployment behaves exactly as before.
    live: RefCell<VersionedTraffic>,
    /// Whether the output-space lint has run for this predictor (once, on
    /// the first predict call — `max_out_degree` scans the whole network).
    linted: Cell<bool>,
    /// Numeric precision every decode session opens with.
    precision: InferPrecision,
}

impl DeepStPredictor {
    /// Wrap a trained model. The display name is `DeepST` or `DeepST-C`
    /// depending on the model's traffic pathway.
    pub fn new(model: DeepSt) -> Self {
        Self::with_cache_cap(model, DEFAULT_TRAFFIC_CACHE_CAP)
    }

    /// Wrap a trained model with an explicit traffic-cache capacity.
    pub fn with_cache_cap(model: DeepSt, cap: usize) -> Self {
        let name = if model.cfg.use_traffic {
            "DeepST"
        } else {
            "DeepST-C"
        };
        Self {
            model,
            name,
            traffic_cache: RefCell::new(TrafficCache::new(cap)),
            live: RefCell::new(VersionedTraffic::new()),
            linted: Cell::new(false),
            precision: InferPrecision::F32,
        }
    }

    /// Wrap a trained model decoding at the given precision.
    /// [`InferPrecision::Int8`] trades bitwise fidelity for quantized
    /// embedding/head kernels; its accuracy is gated statistically by the
    /// decode benchmark.
    pub fn with_precision(model: DeepSt, precision: InferPrecision) -> Self {
        let mut p = Self::new(model);
        p.precision = precision;
        p
    }

    /// Access the wrapped model.
    pub fn model(&self) -> &DeepSt {
        &self.model
    }

    /// Number of traffic-slot encodings currently cached.
    pub fn traffic_cache_len(&self) -> usize {
        self.traffic_cache.borrow().len()
    }

    /// The live-feed version of `slot` (0 if the feed has never revised it).
    pub fn traffic_version(&self, slot: usize) -> u64 {
        self.live.borrow().slot_version(slot)
    }

    /// Ingest one live traffic event. On a fresh application the stale
    /// cached encoding for the event's slot (if any) is evicted *eagerly*
    /// and *targeted* — other slots stay warm — so the next predict in that
    /// slot re-encodes from the live tensor. Duplicates, reorderings and
    /// past-horizon events are rejected idempotently (typed outcome plus
    /// `traffic.feed.*` counters).
    pub fn ingest(&self, ev: &TrafficEvent) -> ApplyOutcome {
        let outcome = self.live.borrow_mut().apply(ev);
        if let ApplyOutcome::Applied { slot, version } = outcome {
            self.traffic_cache
                .borrow_mut()
                .invalidate_stale(slot, version);
        }
        outcome
    }

    fn traffic_context(&self, q: &PredictQuery<'_>) -> Option<Array> {
        if !self.model.cfg.use_traffic {
            return None;
        }
        let live = self.live.borrow();
        let version = live.slot_version(q.slot_id);
        // The live tensor supersedes the query's frozen snapshot once the
        // feed has revised this slot.
        let tensor = live.tensor(q.slot_id).unwrap_or(q.traffic);
        Some(
            self.traffic_cache
                .borrow_mut()
                .get_or_encode(q.slot_id, version, || self.model.encode_traffic(tensor)),
        )
    }
}

/// [`StepDecoder`] view of a DeepST model for one trip: a tape-free
/// [`InferSession`] with the recurrent state packed as `[rows, hidden]`
/// matrices, so one beam step over all candidates is one batched GEMM.
pub struct DeepStDecoder<'m> {
    sess: InferSession<'m>,
    width: usize,
    /// When set, steps go through the pre-packing
    /// [`InferSession::step_into_generic`] baseline instead of the fused
    /// kernels — the decode benchmark's reference path.
    generic: bool,
}

impl<'m> DeepStDecoder<'m> {
    /// Open a decoder for one trip context (fused f32 kernels).
    pub fn new(model: &'m DeepSt, ctx: &TripContext) -> Self {
        Self::with_precision(model, ctx, InferPrecision::F32)
    }

    /// Open a decoder with an explicit numeric precision for the hot loop.
    pub fn with_precision(model: &'m DeepSt, ctx: &TripContext, precision: InferPrecision) -> Self {
        Self {
            width: model.cfg.max_neighbors,
            sess: model.infer_session_with(ctx, precision),
            generic: false,
        }
    }

    /// Test hook: wrap an explicitly-constructed session (e.g. the coarse
    /// int8 session behind the planted-regression accuracy test).
    #[doc(hidden)]
    pub fn from_session(sess: InferSession<'m>) -> Self {
        Self {
            width: sess.model().cfg.max_neighbors,
            sess,
            generic: false,
        }
    }

    /// Open a decoder that steps through the unpacked per-call-GEMM
    /// baseline. Bit-identical routes to [`DeepStDecoder::new`]; kept so the
    /// decode benchmark measures the fused kernels against a live
    /// implementation.
    pub fn new_generic(model: &'m DeepSt, ctx: &TripContext) -> Self {
        Self {
            width: model.cfg.max_neighbors,
            sess: model.infer_session(ctx),
            generic: true,
        }
    }
}

impl StepDecoder for DeepStDecoder<'_> {
    type State = Vec<Array>;

    fn width(&self) -> usize {
        self.width
    }

    fn init_state(&mut self, n: usize) -> Vec<Array> {
        self.sess.zero_state(n)
    }

    fn step(
        &mut self,
        _net: &RoadNetwork,
        tokens: &[SegmentId],
        state: &mut Vec<Array>,
        logp: &mut Vec<f64>,
    ) {
        if self.generic {
            self.sess.step_into_generic(tokens, state, logp);
        } else {
            self.sess.step_into(tokens, state, logp);
        }
    }

    fn gather(&mut self, state: &Vec<Array>, rows: &[usize]) -> Vec<Array> {
        self.sess.gather_state(state, rows)
    }

    fn recycle(&mut self, state: Vec<Array>) {
        self.sess.recycle_state(state);
    }
}

impl Predictor for DeepStPredictor {
    fn name(&self) -> &str {
        self.name
    }

    fn predict(&self, net: &RoadNetwork, q: &PredictQuery<'_>) -> Route {
        if !self.linted.replace(true) {
            if let Some(diag) = self.model.lint_output_space(net) {
                st_obs::warn_once("deepst.truncated-output-space", &diag.to_string());
            }
        }
        let c = self.traffic_context(q);
        let ctx = self.model.encode_context(q.dest_norm, c);
        let mut dec = DeepStDecoder::with_precision(&self.model, &ctx, self.precision);
        beam_decode(
            net,
            &mut dec,
            q.start,
            &q.dest_coord,
            8,
            self.model.cfg.max_route_len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::DeepStConfig;
    use st_roadnet::{grid_city, GridConfig};

    fn query<'a>(net: &RoadNetwork, tensor: &'a [f32], slot_id: usize) -> PredictQuery<'a> {
        PredictQuery {
            start: 0,
            dest_coord: net.midpoint(5),
            dest_norm: [0.5, 0.5],
            dest_segment: 5,
            traffic: tensor,
            slot_id,
        }
    }

    #[test]
    fn wrapper_predicts_and_caches() {
        let net = grid_city(&GridConfig::small_test(), 1);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 0);
        let wrapper = DeepStPredictor::new(model);
        assert_eq!(wrapper.name(), "DeepST");
        let tensor = vec![0.1f32; 64];
        let q = query(&net, &tensor, 3);
        let hits = st_obs::counter("predict.traffic_cache.hit").get();
        let misses = st_obs::counter("predict.traffic_cache.miss").get();
        let r1 = wrapper.predict(&net, &q);
        assert!(net.is_valid_route(&r1));
        assert_eq!(wrapper.traffic_cache_len(), 1);
        assert_eq!(
            st_obs::counter("predict.traffic_cache.miss").get(),
            misses + 1
        );
        let _ = wrapper.predict(&net, &q);
        assert_eq!(wrapper.traffic_cache_len(), 1, "cache not reused");
        assert_eq!(st_obs::counter("predict.traffic_cache.hit").get(), hits + 1);
    }

    #[test]
    fn traffic_cache_is_bounded_and_evicts_lru() {
        let net = grid_city(&GridConfig::small_test(), 1);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let wrapper = DeepStPredictor::with_cache_cap(DeepSt::new(cfg, 0), 2);
        let tensor = vec![0.1f32; 64];
        for slot in [0usize, 1, 2] {
            let q = query(&net, &tensor, slot);
            let _ = wrapper.predict(&net, &q);
        }
        assert_eq!(wrapper.traffic_cache_len(), 2, "cache exceeded its cap");
        // Slot 0 was least recently used and must have been evicted:
        // touching it again is a miss, while slot 2 is still a hit.
        let misses = st_obs::counter("predict.traffic_cache.miss").get();
        let _ = wrapper.predict(&net, &query(&net, &tensor, 2));
        assert_eq!(
            st_obs::counter("predict.traffic_cache.miss").get(),
            misses,
            "recently used slot should still be cached"
        );
        let _ = wrapper.predict(&net, &query(&net, &tensor, 0));
        assert_eq!(
            st_obs::counter("predict.traffic_cache.miss").get(),
            misses + 1,
            "least recently used slot should have been evicted"
        );
    }

    fn feed_event(seq: u64, slot: usize, tensor: Vec<f32>) -> TrafficEvent {
        TrafficEvent {
            seq,
            time: seq as f64,
            slot,
            kind: st_core::livetraffic::TrafficEventKind::Incident,
            tensor,
        }
    }

    #[test]
    fn ingest_invalidates_exactly_the_changed_slot() {
        let net = grid_city(&GridConfig::small_test(), 1);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let wrapper = DeepStPredictor::new(DeepSt::new(cfg, 0));
        let tensor = vec![0.1f32; 64];
        // warm slots 3 and 4
        let _ = wrapper.predict(&net, &query(&net, &tensor, 3));
        let _ = wrapper.predict(&net, &query(&net, &tensor, 4));
        assert_eq!(wrapper.traffic_cache_len(), 2);

        let hits = st_obs::counter("predict.traffic_cache.hit").get();
        let misses = st_obs::counter("predict.traffic_cache.miss").get();
        let invalidations = st_obs::counter("predict.traffic_cache.invalidate").get();

        // a live update to slot 3 evicts slot 3's encoding eagerly...
        let out = wrapper.ingest(&feed_event(1, 3, vec![0.9f32; 64]));
        assert!(out.is_applied());
        assert_eq!(wrapper.traffic_version(3), 1);
        assert_eq!(wrapper.traffic_cache_len(), 1, "eviction was not eager");
        assert_eq!(
            st_obs::counter("predict.traffic_cache.invalidate").get(),
            invalidations + 1
        );

        // ...so slot 3 re-encodes (miss at the new version) while slot 4 is
        // untouched and still hits: targeted, not a flush.
        let _ = wrapper.predict(&net, &query(&net, &tensor, 3));
        assert_eq!(
            st_obs::counter("predict.traffic_cache.miss").get(),
            misses + 1
        );
        let _ = wrapper.predict(&net, &query(&net, &tensor, 4));
        assert_eq!(st_obs::counter("predict.traffic_cache.hit").get(), hits + 1);
        // steady state: slot 3 at version 1 now hits again
        let _ = wrapper.predict(&net, &query(&net, &tensor, 3));
        assert_eq!(st_obs::counter("predict.traffic_cache.hit").get(), hits + 2);
    }

    #[test]
    fn duplicate_and_out_of_order_ingest_is_idempotent() {
        let net = grid_city(&GridConfig::small_test(), 1);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let wrapper = DeepStPredictor::new(DeepSt::new(cfg, 0));
        assert!(wrapper
            .ingest(&feed_event(5, 2, vec![0.5; 64]))
            .is_applied());
        let v = wrapper.traffic_version(2);
        // same event redelivered: duplicate, version unmoved
        assert!(matches!(
            wrapper.ingest(&feed_event(5, 2, vec![0.5; 64])),
            ApplyOutcome::Duplicate
        ));
        // an older event arriving late: rejected, version unmoved
        assert!(matches!(
            wrapper.ingest(&feed_event(4, 2, vec![0.4; 64])),
            ApplyOutcome::OutOfOrder
        ));
        assert_eq!(wrapper.traffic_version(2), v);
    }

    #[test]
    fn deepst_c_wrapper_name() {
        let net = grid_city(&GridConfig::small_test(), 1);
        let cfg =
            DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8).without_traffic();
        let wrapper = DeepStPredictor::new(DeepSt::new(cfg, 0));
        assert_eq!(wrapper.name(), "DeepST-C");
        let q = PredictQuery {
            start: 2,
            dest_coord: net.midpoint(9),
            dest_norm: [0.3, 0.7],
            dest_segment: 9,
            traffic: &[],
            slot_id: 0,
        };
        let r = wrapper.predict(&net, &q);
        assert!(net.is_valid_route(&r));
    }
}
