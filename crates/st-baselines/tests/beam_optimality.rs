//! Validates the beam decoder against exhaustive enumeration: on small
//! graphs, a sufficiently wide beam must find the globally most likely
//! complete route under the full generative probability.

use proptest::prelude::*;

use st_baselines::{beam_decode, StepDecoder};
use st_roadnet::{grid_city, GridConfig, Point, RoadNetwork, Route, SegmentId};

/// A deterministic toy scorer whose slot log-probs depend on the current
/// segment id (stateless, so exhaustive search is cheap).
struct ToyScorer {
    salt: u64,
    width: usize,
}

impl ToyScorer {
    /// Pseudo-random but deterministic log-prob for (salt, seg, slot).
    fn lp(&self, seg: SegmentId, j: usize) -> f64 {
        let h = seg
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(j * 0x85EB_CA6B)
            .wrapping_add(self.salt as usize);
        -((h % 97) as f64) / 23.0
    }
}

impl StepDecoder for ToyScorer {
    type State = ();
    fn width(&self) -> usize {
        self.width
    }
    fn init_state(&mut self, _n: usize) {}
    fn step(
        &mut self,
        net: &RoadNetwork,
        tokens: &[SegmentId],
        _state: &mut (),
        logp: &mut Vec<f64>,
    ) {
        logp.clear();
        for &seg in tokens {
            let deg = net.next_segments(seg).len();
            for j in 0..self.width {
                logp.push(if j < deg {
                    self.lp(seg, j)
                } else {
                    f64::NEG_INFINITY
                });
            }
        }
    }
    fn gather(&mut self, _state: &(), _rows: &[usize]) {}
}

/// Gaussian termination identical to the decoder's.
fn p_stop(net: &RoadNetwork, seg: SegmentId, dest: &Point) -> f64 {
    let proj = net.project_onto(dest, seg);
    let d = proj.dist(dest) / st_baselines::TERM_SCALE_M;
    (-d * d).exp().clamp(1e-12, 0.95)
}

/// Full generative log-probability of a complete route under the toy model.
fn full_score(net: &RoadNetwork, model: &ToyScorer, route: &Route, dest: &Point) -> f64 {
    let mut lp = 0.0;
    for i in 0..route.len() - 1 {
        let nexts = net.next_segments(route[i]);
        let logps: Vec<f64> = (0..nexts.len()).map(|j| model.lp(route[i], j)).collect();
        let m = logps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = m + logps.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
        let j = nexts.iter().position(|&n| n == route[i + 1]).unwrap();
        lp += logps[j] - lse;
        let ps = p_stop(net, route[i + 1], dest);
        lp += if i + 1 == route.len() - 1 {
            ps.ln()
        } else {
            (1.0 - ps).ln()
        };
    }
    lp
}

/// Exhaustively enumerate every complete route of length ≤ `max_len` from
/// `start` and return the best full score.
fn exhaustive_best(
    net: &RoadNetwork,
    model: &ToyScorer,
    start: SegmentId,
    dest: &Point,
    max_len: usize,
) -> f64 {
    let mut best = f64::NEG_INFINITY;
    let mut stack: Vec<Route> = vec![vec![start]];
    while let Some(prefix) = stack.pop() {
        if prefix.len() >= 2 {
            best = best.max(full_score(net, model, &prefix, dest));
        }
        if prefix.len() < max_len {
            for &n in net.next_segments(*prefix.last().unwrap()) {
                let mut next = prefix.clone();
                next.push(n);
                stack.push(next);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// With a beam at least as wide as the total number of prefixes, beam
    /// decoding must recover the exhaustive optimum (short horizons keep
    /// enumeration tractable: ≤ 2⁵ prefixes on the tiny grid).
    #[test]
    fn beam_matches_exhaustive_on_short_horizons(salt in 0u64..300, start in 0usize..40) {
        let net = grid_city(&GridConfig::small_test(), 3);
        let start = start % net.num_segments();
        let dest = net.midpoint((start * 7 + 5) % net.num_segments());
        let mut model = ToyScorer { salt, width: net.max_out_degree() };
        let max_len = 5;
        let want = exhaustive_best(&net, &model, start, &dest, max_len);
        let route = beam_decode(&net, &mut model, start, &dest, 64, max_len);
        prop_assume!(route.len() >= 2); // degenerate starts can't complete
        let got = full_score(&net, &model, &route, &dest);
        prop_assert!(
            (got - want).abs() < 1e-9,
            "beam found {got}, exhaustive optimum {want} (route {route:?})"
        );
    }
}
