//! Decode-under-change: a live traffic update must reach predictions within
//! one slot, with zero stale cache hits.
//!
//! This is the acceptance test for the streaming traffic path at the
//! predictor level: ingest an injected incident for the slot being served,
//! then prove (a) the very next prediction in that slot differs — reaction
//! latency 0 slots, well within the one-slot bound — (b) the stale encoding
//! was never served (counters: one targeted invalidation, one re-encode
//! miss, no hit until the new version is warm), and (c) redelivery of the
//! same event is a no-op.

use st_baselines::{DeepStPredictor, PredictQuery, Predictor};
use st_core::livetraffic::{ApplyOutcome, TrafficEvent, TrafficEventKind};
use st_core::{DeepSt, DeepStConfig};
use st_roadnet::Route;
use st_sim::{CityPreset, Dataset};

/// Counters are process-global; tests asserting exact deltas must not
/// interleave with other tests' predictions.
static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn rivertown() -> Dataset {
    Dataset::generate(&CityPreset::rivertown(), 24, 7)
}

fn wrapper_for(ds: &Dataset, seed: u64) -> DeepStPredictor {
    let cfg = DeepStConfig::new(
        ds.net.num_segments(),
        ds.net.max_out_degree(),
        ds.grid.height,
        ds.grid.width,
    );
    DeepStPredictor::new(DeepSt::new(cfg, seed))
}

/// Pinned queries over distinct trips, all bound to traffic slot `slot`.
fn queries<'a>(ds: &'a Dataset, tensor: &'a [f32], slot: usize, n: usize) -> Vec<PredictQuery<'a>> {
    (0..ds.trips.len())
        .step_by(ds.trips.len().div_ceil(n).max(1))
        .map(|t| {
            let trip = &ds.trips[t];
            PredictQuery {
                start: trip.origin_segment(),
                dest_coord: trip.dest_coord,
                dest_norm: ds.unit_coord(&trip.dest_coord),
                dest_segment: trip.dest_segment(),
                traffic: tensor,
                slot_id: slot,
            }
        })
        .collect()
}

/// A city-wide gridlock report for `slot`: every cell reads crawl speed.
/// Drastic on purpose — the reaction test must not hinge on one cell's
/// influence through an untrained CNN.
fn gridlock_event(ds: &Dataset, seq: u64, slot: usize) -> TrafficEvent {
    TrafficEvent {
        seq,
        time: slot as f64 * st_sim::SLOT_SECS,
        slot,
        kind: TrafficEventKind::Incident,
        tensor: vec![0.02; ds.grid.len()],
    }
}

#[test]
fn prediction_reacts_within_one_slot_with_zero_stale_hits() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let ds = rivertown();
    let wrapper = wrapper_for(&ds, 7);
    let slot = 3usize;
    let tensor = ds.traffic_tensor(slot);
    let qs = queries(&ds, tensor, slot, 8);

    // Steady state before the incident: first query encodes the slot, the
    // rest hit the cache.
    let before: Vec<Route> = qs.iter().map(|q| wrapper.predict(&ds.net, q)).collect();

    let hits = st_obs::counter("predict.traffic_cache.hit").get();
    let misses = st_obs::counter("predict.traffic_cache.miss").get();
    let invalidations = st_obs::counter("predict.traffic_cache.invalidate").get();

    // The incident lands *in the slot being served*.
    let ev = gridlock_event(&ds, 1, slot);
    assert!(wrapper.ingest(&ev).is_applied());
    assert_eq!(
        st_obs::counter("predict.traffic_cache.invalidate").get(),
        invalidations + 1,
        "ingest must evict the stale encoding eagerly"
    );

    // Reaction within the same slot: predictions re-run right away and at
    // least one route must change (reaction latency 0 slots <= 1 slot).
    let after: Vec<Route> = qs.iter().map(|q| wrapper.predict(&ds.net, q)).collect();
    let changed = before.iter().zip(&after).filter(|(b, a)| b != a).count();
    assert!(
        changed > 0,
        "no prediction reacted to a city-wide gridlock event"
    );

    // Zero stale hits: the first post-ingest lookup was a miss at the new
    // version (fresh encode), and every later one hit the *new* encoding.
    assert_eq!(
        st_obs::counter("predict.traffic_cache.miss").get(),
        misses + 1,
        "exactly one re-encode expected"
    );
    assert_eq!(
        st_obs::counter("predict.traffic_cache.hit").get(),
        hits + (qs.len() as u64 - 1),
        "post-ingest lookups must hit the fresh encoding only"
    );

    // Redelivery of the same event is a no-op: no invalidation, no
    // re-encode, routes bit-identical.
    let inv2 = st_obs::counter("predict.traffic_cache.invalidate").get();
    assert!(matches!(wrapper.ingest(&ev), ApplyOutcome::Duplicate));
    assert_eq!(
        st_obs::counter("predict.traffic_cache.invalidate").get(),
        inv2
    );
    let replay: Vec<Route> = qs.iter().map(|q| wrapper.predict(&ds.net, q)).collect();
    assert_eq!(replay, after, "duplicate ingest changed predictions");
}

#[test]
fn updates_to_other_slots_leave_this_slots_predictions_alone() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let ds = rivertown();
    let wrapper = wrapper_for(&ds, 11);
    let slot = 2usize;
    let tensor = ds.traffic_tensor(slot);
    let qs = queries(&ds, tensor, slot, 4);
    let before: Vec<Route> = qs.iter().map(|q| wrapper.predict(&ds.net, q)).collect();
    // a storm of updates to *other* slots
    for (i, other) in [0usize, 1, 4, 5, 6].iter().enumerate() {
        assert!(wrapper
            .ingest(&gridlock_event(&ds, i as u64 + 1, *other))
            .is_applied());
    }
    // targeted invalidation: slot 2's encoding is untouched, predictions
    // bit-identical
    let after: Vec<Route> = qs.iter().map(|q| wrapper.predict(&ds.net, q)).collect();
    assert_eq!(before, after, "unrelated slot update changed predictions");
    assert_eq!(wrapper.traffic_version(slot), 0, "slot 2 was never revised");
}

/// An injected incident built by st-sim's `incident_event` helper (single
/// affected cell, real geometry) flows through the same path: versions bump,
/// the stale encoding is evicted, and the live tensor is what gets encoded.
#[test]
fn sim_incident_event_invalidates_and_reencodes() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let ds = rivertown();
    let wrapper = wrapper_for(&ds, 5);
    let center = ds.net.midpoint(ds.net.num_segments() / 2);
    let t = 2.5 * st_sim::SLOT_SECS;
    let ev = st_sim::incident_event(&ds, 1, t, &center, 0.95).expect("incident in range");
    let slot = ev.slot;
    let tensor = ds.traffic_tensor(slot);
    let q = &queries(&ds, tensor, slot, 2)[0];
    let _ = wrapper.predict(&ds.net, q);
    assert_eq!(wrapper.traffic_version(slot), 0);
    assert!(wrapper.ingest(&ev).is_applied());
    assert_eq!(wrapper.traffic_version(slot), 1);
    let misses = st_obs::counter("predict.traffic_cache.miss").get();
    let _ = wrapper.predict(&ds.net, q);
    assert_eq!(
        st_obs::counter("predict.traffic_cache.miss").get(),
        misses + 1,
        "stale encoding survived the incident"
    );
}
