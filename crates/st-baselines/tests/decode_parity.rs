//! Decode parity oracle: the batched-beam decoder (packed `[beam, hidden]`
//! state, one GEMM per depth, tape-free kernels) must produce routes
//! **identical** to the pre-refactor clone-and-step beam driven by the taped
//! per-item step, on a pinned Rivertown world — for DeepST (with traffic),
//! DeepST-C, and CSSRNN.
//!
//! This is the end-to-end guarantee the whole inference-runtime refactor
//! rests on; the per-op and per-layer bitwise parity tests (st-tensor,
//! st-nn, st-core) explain *why* it holds.

use st_baselines::{beam_decode, DeepStDecoder, PredictQuery, StepDecoder, TERM_SCALE_M};
use st_core::{DeepSt, DeepStConfig};
use st_roadnet::{Point, RoadNetwork, Route, SegmentId};
use st_sim::{CityPreset, Dataset};

/// The decoder's termination Bernoulli, reimplemented for the reference.
fn p_stop(net: &RoadNetwork, seg: SegmentId, dest: &Point) -> f64 {
    let proj = net.project_onto(dest, seg);
    let d = proj.dist(dest) / TERM_SCALE_M;
    (-d * d).exp().clamp(1e-12, 0.95)
}

/// The pre-refactor beam decoder, verbatim: every live prefix carries its
/// own cloned recurrent state and steps in isolation through `step`.
fn reference_beam<S: Clone>(
    net: &RoadNetwork,
    init: S,
    step: impl Fn(&S, SegmentId) -> (S, Vec<f64>),
    start: SegmentId,
    dest: &Point,
    beam_width: usize,
    max_len: usize,
) -> Route {
    struct Item<S> {
        route: Route,
        state: S,
        logp: f64,
    }
    let mut live = vec![Item {
        route: vec![start],
        state: init,
        logp: 0.0,
    }];
    let mut best_complete: Option<(Route, f64)> = None;
    for _ in 1..max_len {
        let mut expansions: Vec<Item<S>> = Vec::new();
        for item in &live {
            let cur = *item.route.last().unwrap();
            let nexts = net.next_segments(cur);
            if nexts.is_empty() {
                continue;
            }
            let (new_state, logps) = step(&item.state, cur);
            let valid = &logps[..nexts.len().min(logps.len())];
            let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = m + valid.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
            for (j, &next) in nexts.iter().enumerate().take(valid.len()) {
                let lp_trans = valid[j] - lse;
                let ps = p_stop(net, next, dest);
                let mut new_route = item.route.clone();
                new_route.push(next);
                let complete_score = item.logp + lp_trans + ps.ln();
                if best_complete
                    .as_ref()
                    .map(|(_, s)| complete_score > *s)
                    .unwrap_or(true)
                {
                    best_complete = Some((new_route.clone(), complete_score));
                }
                expansions.push(Item {
                    route: new_route,
                    state: new_state.clone(),
                    logp: item.logp + lp_trans + (1.0 - ps).ln(),
                });
            }
        }
        if expansions.is_empty() {
            break;
        }
        expansions.sort_by(|a, b| b.logp.total_cmp(&a.logp));
        expansions.truncate(beam_width);
        if let Some((_, best)) = &best_complete {
            if expansions[0].logp < *best - 12.0 {
                break;
            }
        }
        live = expansions;
    }
    match best_complete {
        Some((route, _)) => route,
        None => live.into_iter().next().map(|i| i.route).unwrap(),
    }
}

/// A handful of pinned test queries over the Rivertown world.
fn queries(ds: &Dataset, n: usize) -> Vec<usize> {
    (0..ds.trips.len())
        .step_by(ds.trips.len().div_ceil(n).max(1))
        .collect()
}

fn rivertown() -> Dataset {
    Dataset::generate(&CityPreset::rivertown(), 24, 7)
}

#[test]
fn deepst_batched_beam_matches_clone_and_step_taped_beam() {
    let ds = rivertown();
    for use_traffic in [true, false] {
        let mut cfg = DeepStConfig::new(
            ds.net.num_segments(),
            ds.net.max_out_degree(),
            ds.grid.height,
            ds.grid.width,
        );
        if !use_traffic {
            cfg = cfg.without_traffic();
        }
        // Untrained weights exercise the same arithmetic as trained ones.
        let model = DeepSt::new(cfg, 7);
        for (qi, &t) in queries(&ds, 6).iter().enumerate() {
            let trip = &ds.trips[t];
            let slot = ds.slot_of(trip.start_time);
            let c = use_traffic.then(|| model.encode_traffic(ds.traffic_tensor(slot)));
            let ctx = model.encode_context(ds.unit_coord(&trip.dest_coord), c);
            for width in [1usize, 4, 8] {
                let want = reference_beam(
                    &ds.net,
                    model.initial_state(),
                    |state, seg| model.step_state_taped(state, seg, &ctx),
                    trip.origin_segment(),
                    &trip.dest_coord,
                    width,
                    model.cfg.max_route_len,
                );
                let mut dec = DeepStDecoder::new(&model, &ctx);
                let got = beam_decode(
                    &ds.net,
                    &mut dec,
                    trip.origin_segment(),
                    &trip.dest_coord,
                    width,
                    model.cfg.max_route_len,
                );
                assert_eq!(
                    got, want,
                    "route diverged (traffic={use_traffic}, query {qi}, beam {width})"
                );
            }
        }
    }
}

#[test]
fn cssrnn_batched_beam_matches_clone_and_step_taped_beam() {
    use st_baselines::{RnnBaseline, RnnConfig};
    let ds = rivertown();
    let cfg = RnnConfig::new(ds.net.num_segments(), ds.net.max_out_degree());
    let max_len = cfg.max_route_len;
    let model = RnnBaseline::cssrnn(cfg, 7);
    for (qi, &t) in queries(&ds, 6).iter().enumerate() {
        let trip = &ds.trips[t];
        let dest_seg = trip.dest_segment();
        for width in [1usize, 8] {
            let want = reference_beam(
                &ds.net,
                model.initial_state(),
                |state, seg| model.step_state_taped(state, seg, dest_seg),
                trip.origin_segment(),
                &trip.dest_coord,
                width,
                max_len,
            );
            let mut dec = model.decoder(dest_seg);
            let got = beam_decode(
                &ds.net,
                &mut dec,
                trip.origin_segment(),
                &trip.dest_coord,
                width,
                max_len,
            );
            assert_eq!(got, want, "route diverged (query {qi}, beam {width})");
        }
    }
}

/// The vanilla RNN's greedy rollout also rides on the tape-free decoder;
/// its routes must match a greedy rollout over the taped step.
#[test]
fn vanilla_rnn_greedy_matches_taped_rollout() {
    use st_baselines::{should_stop, Predictor, RnnBaseline, RnnConfig};
    let ds = rivertown();
    let cfg = RnnConfig::new(ds.net.num_segments(), ds.net.max_out_degree());
    let max_len = cfg.max_route_len;
    let model = RnnBaseline::vanilla(cfg, 7);
    for &t in &queries(&ds, 6) {
        let trip = &ds.trips[t];
        // taped greedy reference, mirroring generate_route's control flow
        let mut route = vec![trip.origin_segment()];
        let mut state = model.initial_state();
        while route.len() < max_len {
            let cur = *route.last().unwrap();
            let nexts = ds.net.next_segments(cur);
            if nexts.is_empty() {
                break;
            }
            let (ns, logps) = model.step_state_taped(&state, cur, 0);
            state = ns;
            let valid = &logps[..nexts.len().min(logps.len())];
            let mut best = 0;
            for (j, &v) in valid.iter().enumerate() {
                if v > valid[best] {
                    best = j;
                }
            }
            route.push(nexts[best]);
            if should_stop(&ds.net, nexts[best], &trip.dest_coord) {
                break;
            }
        }
        let q = PredictQuery {
            start: trip.origin_segment(),
            dest_coord: trip.dest_coord,
            dest_norm: ds.unit_coord(&trip.dest_coord),
            dest_segment: trip.dest_segment(),
            traffic: &[],
            slot_id: 0,
        };
        let got = model.predict(&ds.net, &q);
        assert_eq!(got, route, "vanilla greedy diverged on trip {t}");
    }
}

/// Sanity: the trait object in the batched path reports the width the
/// model's slot head actually has.
#[test]
fn decoder_width_matches_config() {
    let ds = rivertown();
    let cfg = DeepStConfig::new(
        ds.net.num_segments(),
        ds.net.max_out_degree(),
        ds.grid.height,
        ds.grid.width,
    );
    let model = DeepSt::new(cfg, 1);
    let ctx = model.encode_context([0.5, 0.5], Some(model.encode_traffic(ds.traffic_tensor(0))));
    let dec = DeepStDecoder::new(&model, &ctx);
    assert_eq!(dec.width(), model.cfg.max_neighbors);
}
