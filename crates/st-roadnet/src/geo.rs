//! Planar geometry primitives.
//!
//! The simulator works in a local planar coordinate system measured in
//! meters (a city-scale tangent plane), so Euclidean geometry is exact
//! enough; the paper's destination coordinates are lat/lon pairs, which our
//! synthetic cities replace with planar coordinates of the same role.

use serde::{Deserialize, Serialize};

/// A point in the city plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate (m).
    pub x: f64,
    /// North-south coordinate (m).
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared distance (avoids the sqrt in comparisons).
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of two points.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `self + t·(other − self)`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }
}

/// Projection of point `p` onto the segment `a→b`.
///
/// Returns `(projection point, t)` where `t ∈ [0, 1]` is the normalized
/// position along the segment (clamped to the endpoints).
pub fn project_onto_segment(p: &Point, a: &Point, b: &Point) -> (Point, f64) {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len_sq = abx * abx + aby * aby;
    if len_sq <= f64::EPSILON {
        return (*a, 0.0);
    }
    let t = (((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq).clamp(0.0, 1.0);
    (a.lerp(b, t), t)
}

/// Distance from `p` to the segment `a→b`.
pub fn dist_to_segment(p: &Point, a: &Point, b: &Point) -> f64 {
    let (proj, _) = project_onto_segment(p, a, b);
    p.dist(&proj)
}

/// The heading (radians, CCW from +x) of the vector `a→b`.
pub fn heading(a: &Point, b: &Point) -> f64 {
    (b.y - a.y).atan2(b.x - a.x)
}

/// Absolute turn angle (radians, in `[0, π]`) between headings `h1 → h2`.
pub fn turn_angle(h1: f64, h2: f64) -> f64 {
    let mut d = (h2 - h1).rem_euclid(std::f64::consts::TAU);
    if d > std::f64::consts::PI {
        d = std::f64::consts::TAU - d;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.midpoint(&b), Point::new(1.5, 2.0));
    }

    #[test]
    fn projection_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let (proj, t) = project_onto_segment(&Point::new(3.0, 5.0), &a, &b);
        assert_eq!(proj, Point::new(3.0, 0.0));
        assert!((t - 0.3).abs() < 1e-12);
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let (proj, t) = project_onto_segment(&Point::new(-5.0, 2.0), &a, &b);
        assert_eq!(proj, a);
        assert_eq!(t, 0.0);
        let (proj, t) = project_onto_segment(&Point::new(25.0, -1.0), &a, &b);
        assert_eq!(proj, b);
        assert_eq!(t, 1.0);
    }

    #[test]
    fn degenerate_segment() {
        let a = Point::new(2.0, 2.0);
        let (proj, t) = project_onto_segment(&Point::new(5.0, 5.0), &a, &a);
        assert_eq!(proj, a);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn headings_and_turns() {
        let o = Point::new(0.0, 0.0);
        let east = heading(&o, &Point::new(1.0, 0.0));
        let north = heading(&o, &Point::new(0.0, 1.0));
        assert!((east - 0.0).abs() < 1e-12);
        assert!((north - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((turn_angle(east, north) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // U-turn is π
        let west = heading(&o, &Point::new(-1.0, 0.0));
        assert!((turn_angle(east, west) - std::f64::consts::PI).abs() < 1e-12);
        // turn angle is symmetric
        assert_eq!(turn_angle(north, east), turn_angle(east, north));
    }

    proptest! {
        #[test]
        fn projection_is_closest_point(
            px in -100.0..100.0f64, py in -100.0..100.0f64,
            ax in -100.0..100.0f64, ay in -100.0..100.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64,
            t in 0.0..1.0f64,
        ) {
            let p = Point::new(px, py);
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let d = dist_to_segment(&p, &a, &b);
            // No point on the segment may be closer than the projection.
            let other = a.lerp(&b, t);
            prop_assert!(d <= p.dist(&other) + 1e-9);
        }

        #[test]
        fn turn_angle_in_range(h1 in -10.0..10.0f64, h2 in -10.0..10.0f64) {
            let t = turn_angle(h1, h2);
            prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&t));
        }

        #[test]
        fn dist_triangle_inequality(
            ax in -50.0..50.0f64, ay in -50.0..50.0f64,
            bx in -50.0..50.0f64, by in -50.0..50.0f64,
            cx in -50.0..50.0f64, cy in -50.0..50.0f64,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-9);
        }
    }
}
