//! Synthetic city generation.
//!
//! The paper's datasets cover Chengdu (compact, ~3.2k segments) and Harbin
//! (larger, ~12.5k segments) road networks extracted from OpenStreetMap.
//! Neither dataset is redistributable here, so we generate irregular grid
//! cities with the same roles: a jittered lattice with arterial corridors
//! (faster roads every few blocks) and random street removals so that route
//! choice is non-trivial. Removals never disconnect the network.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use serde::{Deserialize, Serialize};

use crate::geo::Point;
use crate::graph::RoadNetwork;

/// Parameters of the grid-city generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridConfig {
    /// Number of intersection columns.
    pub nx: usize,
    /// Number of intersection rows.
    pub ny: usize,
    /// Block edge length in meters.
    pub spacing_m: f64,
    /// Jitter of intersection positions as a fraction of spacing.
    pub jitter_frac: f64,
    /// Probability of removing an interior street (kept only if the network
    /// stays connected).
    pub removal_prob: f64,
    /// Every `arterial_every`-th row/column is an arterial road.
    pub arterial_every: usize,
    /// Free-flow speed of local streets (m/s).
    pub local_speed: f64,
    /// Free-flow speed of arterial roads (m/s).
    pub arterial_speed: f64,
}

impl GridConfig {
    /// A tiny 4×4 city for unit tests.
    pub fn small_test() -> Self {
        Self {
            nx: 4,
            ny: 4,
            spacing_m: 100.0,
            jitter_frac: 0.1,
            removal_prob: 0.1,
            arterial_every: 2,
            local_speed: 8.0,
            arterial_speed: 14.0,
        }
    }
}

/// Union-find over vertex ids, used for connectivity checks during removal.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
    fn connected_count(&mut self, n: usize) -> usize {
        let root = self.find(0);
        (0..n).filter(|&v| self.find(v) == root).count()
    }
}

/// Generate an irregular grid city. All roads are two-way, so the resulting
/// directed segment graph is strongly connected.
///
/// ```
/// use st_roadnet::{grid_city, GridConfig, shortest_route};
///
/// let net = grid_city(&GridConfig::small_test(), 42);
/// assert!(net.num_segments() > 0);
/// // every pair of segments is connected
/// let (route, cost) =
///     shortest_route(&net, 0, net.num_segments() - 1, &|s| net.segment(s).length).unwrap();
/// assert!(net.is_valid_route(&route));
/// assert!(cost > 0.0);
/// ```
pub fn grid_city(cfg: &GridConfig, seed: u64) -> RoadNetwork {
    assert!(cfg.nx >= 2 && cfg.ny >= 2, "grid must be at least 2×2");
    assert!((0.0..0.5).contains(&cfg.jitter_frac));
    assert!((0.0..0.9).contains(&cfg.removal_prob));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = RoadNetwork::new();

    // Jittered lattice of intersections.
    let mut vid = vec![vec![0usize; cfg.nx]; cfg.ny];
    for (r, row) in vid.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            let jx = rng.gen_range(-cfg.jitter_frac..cfg.jitter_frac) * cfg.spacing_m;
            let jy = rng.gen_range(-cfg.jitter_frac..cfg.jitter_frac) * cfg.spacing_m;
            *slot = net.add_vertex(Point::new(
                c as f64 * cfg.spacing_m + jx,
                r as f64 * cfg.spacing_m + jy,
            ));
        }
    }

    // Candidate streets: horizontal and vertical lattice edges.
    // (a, b, arterial, interior)
    let mut edges: Vec<(usize, usize, bool, bool)> = Vec::new();
    for r in 0..cfg.ny {
        for c in 0..cfg.nx {
            let arterial_row = r % cfg.arterial_every == 0;
            let arterial_col = c % cfg.arterial_every == 0;
            if c + 1 < cfg.nx {
                let interior = r > 0 && r + 1 < cfg.ny;
                edges.push((vid[r][c], vid[r][c + 1], arterial_row, interior));
            }
            if r + 1 < cfg.ny {
                let interior = c > 0 && c + 1 < cfg.nx;
                edges.push((vid[r][c], vid[r + 1][c], arterial_col, interior));
            }
        }
    }

    // Decide removals: only interior, non-arterial streets may be removed,
    // and only while the remaining street graph stays connected.
    let keep_flags: Vec<bool> = edges
        .iter()
        .map(|&(_, _, arterial, interior)| {
            !(interior && !arterial && rng.gen::<f64>() < cfg.removal_prob)
        })
        .collect();
    // Connectivity repair: start from kept edges; re-add removed ones until
    // connected.
    let n_vertices = cfg.nx * cfg.ny;
    let mut uf = UnionFind::new(n_vertices);
    for (e, &keep) in edges.iter().zip(&keep_flags) {
        if keep {
            uf.union(e.0, e.1);
        }
    }
    let mut final_keep = keep_flags.clone();
    if uf.connected_count(n_vertices) != n_vertices {
        for (i, e) in edges.iter().enumerate() {
            if !final_keep[i] {
                let (ra, rb) = (uf.find(e.0), uf.find(e.1));
                if ra != rb {
                    final_keep[i] = true;
                    uf.union(e.0, e.1);
                }
            }
        }
    }

    for (e, keep) in edges.iter().zip(&final_keep) {
        if *keep {
            let speed = if e.2 {
                cfg.arterial_speed
            } else {
                cfg.local_speed
            };
            net.add_twoway(e.0, e.1, speed);
        }
    }
    net.freeze();
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest::all_costs_from;

    #[test]
    fn deterministic_for_seed() {
        let a = grid_city(&GridConfig::small_test(), 42);
        let b = grid_city(&GridConfig::small_test(), 42);
        assert_eq!(a.num_segments(), b.num_segments());
        assert_eq!(a.num_vertices(), b.num_vertices());
        let c = grid_city(&GridConfig::small_test(), 43);
        // different seed usually gives different jitter; check a vertex moved
        assert!(a.vertex(5).dist(&c.vertex(5)) > 1e-9);
    }

    #[test]
    fn strongly_connected() {
        for seed in 0..5 {
            let net = grid_city(&GridConfig::small_test(), seed);
            let costs = all_costs_from(&net, 0, &|_| 1.0);
            assert!(
                costs.iter().all(|c| c.is_finite()),
                "seed {seed}: network not strongly connected"
            );
        }
    }

    #[test]
    fn segment_count_in_expected_range() {
        let cfg = GridConfig::small_test();
        let net = grid_city(&cfg, 1);
        // full 4x4 lattice has 2*4*3 = 24 streets = 48 directed segments
        assert!(net.num_segments() <= 48);
        assert!(net.num_segments() >= 40, "too many removals");
    }

    #[test]
    fn arterials_are_faster() {
        let cfg = GridConfig::small_test();
        let net = grid_city(&cfg, 3);
        let speeds: Vec<f64> = (0..net.num_segments())
            .map(|s| net.segment(s).base_speed)
            .collect();
        assert!(speeds
            .iter()
            .any(|&s| (s - cfg.arterial_speed).abs() < 1e-9));
        assert!(speeds.iter().any(|&s| (s - cfg.local_speed).abs() < 1e-9));
    }

    #[test]
    fn larger_city_scales() {
        let cfg = GridConfig {
            nx: 12,
            ny: 10,
            ..GridConfig::small_test()
        };
        let net = grid_city(&cfg, 0);
        assert_eq!(net.num_vertices(), 120);
        assert!(net.num_segments() > 300);
        let costs = all_costs_from(&net, 0, &|_| 1.0);
        assert!(costs.iter().all(|c| c.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn rejects_degenerate_grid() {
        let mut cfg = GridConfig::small_test();
        cfg.nx = 1;
        grid_city(&cfg, 0);
    }
}
