//! A* shortest route with an admissible straight-line heuristic.
//!
//! Same contract as [`crate::shortest::shortest_route`], but expands far
//! fewer nodes on city-scale networks when the cost function is travel
//! time: the heuristic is the Euclidean distance to the goal divided by the
//! network's maximum speed (never overestimates).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{RoadNetwork, Route, SegmentId};

#[derive(PartialEq)]
struct Entry {
    f: f64,
    g: f64,
    seg: SegmentId,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| other.seg.cmp(&self.seg))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A* from segment `src` to `dst` under per-segment entry costs, with an
/// admissible heuristic `h(s)` (a lower bound on the remaining cost from
/// `s`'s end vertex). Returns the optimal route and its cost, identical to
/// Dijkstra's answer.
pub fn astar_route(
    net: &RoadNetwork,
    src: SegmentId,
    dst: SegmentId,
    cost: &dyn Fn(SegmentId) -> f64,
    heuristic: &dyn Fn(SegmentId) -> f64,
) -> Option<(Route, f64)> {
    let n = net.num_segments();
    assert!(src < n && dst < n);
    if src == dst {
        return Some((vec![src], 0.0));
    }
    let mut g_best = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<SegmentId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    g_best[src] = 0.0;
    heap.push(Entry {
        f: heuristic(src),
        g: 0.0,
        seg: src,
    });
    while let Some(Entry { g, seg, .. }) = heap.pop() {
        if g > g_best[seg] {
            continue;
        }
        if seg == dst {
            break;
        }
        for &next in net.next_segments(seg) {
            if next == src {
                continue;
            }
            let ng = g + cost(next);
            if ng < g_best[next] {
                g_best[next] = ng;
                prev[next] = Some(seg);
                heap.push(Entry {
                    f: ng + heuristic(next),
                    g: ng,
                    seg: next,
                });
            }
        }
    }
    if !g_best[dst].is_finite() {
        return None;
    }
    let mut route = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur] {
        route.push(p);
        cur = p;
    }
    route.reverse();
    Some((route, g_best[dst]))
}

/// A travel-time A* heuristic: straight-line distance from a segment's end
/// vertex to the destination's start vertex, divided by the network's top
/// speed. Admissible because no route is shorter than the straight line nor
/// faster than the top speed.
pub fn travel_time_heuristic<'a>(
    net: &'a RoadNetwork,
    dst: SegmentId,
) -> impl Fn(SegmentId) -> f64 + 'a {
    let goal = net.start_point(dst);
    let max_speed = (0..net.num_segments())
        .map(|s| net.segment(s).base_speed)
        .fold(1.0f64, f64::max);
    move |s: SegmentId| net.end_point(s).dist(&goal) / max_speed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid_city, GridConfig};
    use crate::shortest::shortest_route;

    #[test]
    fn astar_matches_dijkstra_costs() {
        let net = grid_city(
            &GridConfig {
                nx: 8,
                ny: 8,
                ..GridConfig::small_test()
            },
            13,
        );
        let cost = |s: SegmentId| net.segment(s).length / net.segment(s).base_speed;
        for (src, dst) in [(0, 50), (3, 120), (40, 7), (10, 10)] {
            let dst = dst % net.num_segments();
            let h = travel_time_heuristic(&net, dst);
            let a = astar_route(&net, src, dst, &cost, &h);
            let d = shortest_route(&net, src, dst, &cost);
            match (a, d) {
                (Some((ra, ca)), Some((rd, cd))) => {
                    assert!((ca - cd).abs() < 1e-9, "cost mismatch {ca} vs {cd}");
                    assert!(net.is_valid_route(&ra));
                    assert_eq!(ra.first(), rd.first());
                    assert_eq!(ra.last(), rd.last());
                }
                (None, None) => {}
                other => panic!("reachability disagreement: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_heuristic_is_dijkstra() {
        let net = grid_city(&GridConfig::small_test(), 2);
        let cost = |s: SegmentId| net.segment(s).length;
        let (r1, c1) = astar_route(&net, 0, 20 % net.num_segments(), &cost, &|_| 0.0).unwrap();
        let (r2, c2) = shortest_route(&net, 0, 20 % net.num_segments(), &cost).unwrap();
        assert!((c1 - c2).abs() < 1e-9);
        assert_eq!(r1.len(), r2.len());
    }

    #[test]
    fn heuristic_is_admissible() {
        let net = grid_city(&GridConfig::small_test(), 5);
        let cost = |s: SegmentId| net.segment(s).length / net.segment(s).base_speed;
        let dst = net.num_segments() - 1;
        let h = travel_time_heuristic(&net, dst);
        // for a sample of sources, h(src) ≤ true cost
        for src in (0..net.num_segments()).step_by(7) {
            if let Some((_, c)) = shortest_route(&net, src, dst, &cost) {
                assert!(
                    h(src) <= c + 1e-6,
                    "heuristic overestimates at {src}: {} > {c}",
                    h(src)
                );
            }
        }
    }
}
