//! A uniform-cell spatial index over road segments for fast
//! nearest/candidate queries (used by trip generation and map matching).

use crate::geo::Point;
use crate::graph::{RoadNetwork, SegmentId};

/// Buckets segment ids by the grid cell of their midpoint; queries scan the
/// cells within the search radius. Cells are sized to the query radius the
/// caller expects (a few hundred meters).
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    min: Point,
    cell_size: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<SegmentId>>,
}

impl SegmentIndex {
    /// Build an index with the given cell size (m).
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(cell_size > 0.0);
        let (mut min, mut max) = net.bounding_box();
        min.x -= cell_size;
        min.y -= cell_size;
        max.x += cell_size;
        max.y += cell_size;
        let nx = ((max.x - min.x) / cell_size).ceil() as usize + 1;
        let ny = ((max.y - min.y) / cell_size).ceil() as usize + 1;
        let mut cells = vec![Vec::new(); nx * ny];
        for s in 0..net.num_segments() {
            let m = net.midpoint(s);
            let cx = ((m.x - min.x) / cell_size) as usize;
            let cy = ((m.y - min.y) / cell_size) as usize;
            cells[cy.min(ny - 1) * nx + cx.min(nx - 1)].push(s);
        }
        Self {
            min,
            cell_size,
            nx,
            ny,
            cells,
        }
    }

    /// All segments whose midpoint lies within `radius` cells-distance of
    /// `p` (superset of the true radius; callers filter by exact geometry).
    pub fn candidates(&self, p: &Point, radius: f64) -> Vec<SegmentId> {
        let r_cells = (radius / self.cell_size).ceil() as isize + 1;
        let cx = ((p.x - self.min.x) / self.cell_size) as isize;
        let cy = ((p.y - self.min.y) / self.cell_size) as isize;
        let mut out = Vec::new();
        for dy in -r_cells..=r_cells {
            for dx in -r_cells..=r_cells {
                let (x, y) = (cx + dx, cy + dy);
                if x < 0 || y < 0 || x as usize >= self.nx || y as usize >= self.ny {
                    continue;
                }
                out.extend_from_slice(&self.cells[y as usize * self.nx + x as usize]);
            }
        }
        out
    }

    /// Nearest segment to `p` by exact segment-geometry distance. Expands the
    /// search radius until a hit is found.
    pub fn nearest(&self, net: &RoadNetwork, p: &Point) -> Option<SegmentId> {
        if net.num_segments() == 0 {
            return None;
        }
        let mut radius = self.cell_size;
        loop {
            let cands = self.candidates(p, radius);
            if let Some(&best) = cands.iter().min_by(|&&a, &&b| {
                net.dist_to_segment(p, a)
                    .total_cmp(&net.dist_to_segment(p, b))
            }) {
                // A candidate strictly inside the scanned radius is provably
                // nearest; otherwise expand once more to be safe.
                if net.dist_to_segment(p, best) <= radius {
                    return Some(best);
                }
            }
            radius *= 2.0;
            if radius > 1e7 {
                return net.nearest_segment(p); // degenerate fallback
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid_city, GridConfig};

    #[test]
    fn nearest_matches_linear_scan() {
        let net = grid_city(&GridConfig::small_test(), 11);
        let idx = SegmentIndex::build(&net, 80.0);
        let probes = [
            Point::new(10.0, 10.0),
            Point::new(150.0, 220.0),
            Point::new(-50.0, 400.0),
            Point::new(305.0, 120.0),
        ];
        for p in &probes {
            let fast = idx.nearest(&net, p).unwrap();
            let slow = net.nearest_segment(p).unwrap();
            // distances must match even if ids differ (ties between twins)
            assert!(
                (net.dist_to_segment(p, fast) - net.dist_to_segment(p, slow)).abs() < 1e-9,
                "nearest mismatch at {p:?}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn candidates_superset_contains_close_segments() {
        let net = grid_city(&GridConfig::small_test(), 1);
        let idx = SegmentIndex::build(&net, 100.0);
        let p = net.midpoint(0);
        let cands = idx.candidates(&p, 150.0);
        for s in 0..net.num_segments() {
            if p.dist(&net.midpoint(s)) <= 150.0 {
                assert!(cands.contains(&s), "missing close segment {s}");
            }
        }
    }

    #[test]
    fn far_point_still_resolves() {
        let net = grid_city(&GridConfig::small_test(), 2);
        let idx = SegmentIndex::build(&net, 50.0);
        let p = Point::new(10_000.0, 10_000.0);
        assert!(idx.nearest(&net, &p).is_some());
    }
}
