//! The road network as a directed graph of road segments.
//!
//! Matches Definition 1 of the paper: vertices are crossroads, edges are
//! (directed) road segments. Transitions happen *between segments*: from
//! segment `s` a vehicle may continue onto any outgoing segment of `s`'s end
//! vertex. Each segment's outgoing neighbors have a canonical order, giving
//! the "adjacent road segment slots" the DeepST output head projects into
//! (§IV-A: the categories of the next-road Categorical distribution).

use serde::{Deserialize, Serialize};

use crate::geo::{self, Point};

/// Index of a vertex (crossroad).
pub type VertexId = usize;
/// Index of a directed road segment.
pub type SegmentId = usize;
/// A route is a sequence of adjacent road segments (Definition 2).
pub type Route = Vec<SegmentId>;

/// A directed road segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segment {
    /// Start crossroad.
    pub from: VertexId,
    /// End crossroad.
    pub to: VertexId,
    /// Length in meters.
    pub length: f64,
    /// Free-flow speed in m/s.
    pub base_speed: f64,
}

/// A directed road network.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    vertices: Vec<Point>,
    segments: Vec<Segment>,
    /// Outgoing segments per vertex, sorted by heading then id (canonical).
    out_by_vertex: Vec<Vec<SegmentId>>,
    /// Incoming segments per vertex.
    in_by_vertex: Vec<Vec<SegmentId>>,
    /// For each segment, the segment that traverses the same edge in the
    /// opposite direction, if any (used to forbid immediate U-turns).
    reverse_of: Vec<Option<SegmentId>>,
    frozen: bool,
}

impl RoadNetwork {
    /// An empty network under construction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a crossroad, returning its id.
    pub fn add_vertex(&mut self, p: Point) -> VertexId {
        assert!(!self.frozen, "network is frozen");
        self.vertices.push(p);
        self.out_by_vertex.push(Vec::new());
        self.in_by_vertex.push(Vec::new());
        self.vertices.len() - 1
    }

    /// Add a one-way segment, returning its id. Length is the Euclidean
    /// distance between the endpoints.
    pub fn add_segment(&mut self, from: VertexId, to: VertexId, base_speed: f64) -> SegmentId {
        assert!(!self.frozen, "network is frozen");
        assert!(from < self.vertices.len() && to < self.vertices.len());
        assert!(from != to, "self-loop segments are not allowed");
        assert!(base_speed > 0.0, "base speed must be positive");
        let length = self.vertices[from].dist(&self.vertices[to]);
        let id = self.segments.len();
        self.segments.push(Segment {
            from,
            to,
            length,
            base_speed,
        });
        self.out_by_vertex[from].push(id);
        self.in_by_vertex[to].push(id);
        self.reverse_of.push(None);
        id
    }

    /// Add both directions of a road, returning `(forward, backward)` ids and
    /// linking them as mutual reverses.
    pub fn add_twoway(
        &mut self,
        a: VertexId,
        b: VertexId,
        base_speed: f64,
    ) -> (SegmentId, SegmentId) {
        let f = self.add_segment(a, b, base_speed);
        let r = self.add_segment(b, a, base_speed);
        self.reverse_of[f] = Some(r);
        self.reverse_of[r] = Some(f);
        (f, r)
    }

    /// Finish construction: canonicalize neighbor orders. Must be called
    /// before using the query API.
    pub fn freeze(&mut self) {
        // Canonical order: by heading (so the order is geographically stable),
        // ties broken by id.
        for v in 0..self.vertices.len() {
            let verts = &self.vertices;
            let segs = &self.segments;
            self.out_by_vertex[v].sort_by(|&a, &b| {
                let ha = geo::heading(&verts[segs[a].from], &verts[segs[a].to]);
                let hb = geo::heading(&verts[segs[b].from], &verts[segs[b].to]);
                ha.total_cmp(&hb).then(a.cmp(&b))
            });
            self.in_by_vertex[v].sort_unstable();
        }
        self.frozen = true;
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of directed segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Vertex position.
    pub fn vertex(&self, v: VertexId) -> Point {
        self.vertices[v]
    }

    /// Segment metadata.
    pub fn segment(&self, s: SegmentId) -> &Segment {
        &self.segments[s]
    }

    /// Start point of a segment.
    pub fn start_point(&self, s: SegmentId) -> Point {
        self.vertices[self.segments[s].from]
    }

    /// End point of a segment.
    pub fn end_point(&self, s: SegmentId) -> Point {
        self.vertices[self.segments[s].to]
    }

    /// Midpoint of a segment.
    pub fn midpoint(&self, s: SegmentId) -> Point {
        self.start_point(s).midpoint(&self.end_point(s))
    }

    /// Heading of a segment (radians).
    pub fn heading(&self, s: SegmentId) -> f64 {
        geo::heading(&self.start_point(s), &self.end_point(s))
    }

    /// Outgoing segments reachable after traversing `s`, in canonical slot
    /// order. This is `N(rᵢ)` in the paper.
    pub fn next_segments(&self, s: SegmentId) -> &[SegmentId] {
        debug_assert!(self.frozen, "call freeze() first");
        &self.out_by_vertex[self.segments[s].to]
    }

    /// Outgoing segments from a vertex, canonical order.
    pub fn out_segments(&self, v: VertexId) -> &[SegmentId] {
        &self.out_by_vertex[v]
    }

    /// Incoming segments of a vertex.
    pub fn in_segments(&self, v: VertexId) -> &[SegmentId] {
        &self.in_by_vertex[v]
    }

    /// The opposite-direction twin of `s`, if the road is two-way.
    pub fn reverse_of(&self, s: SegmentId) -> Option<SegmentId> {
        self.reverse_of[s]
    }

    /// The slot index of `next` among `s`'s adjacent segments, if adjacent.
    pub fn neighbor_slot(&self, s: SegmentId, next: SegmentId) -> Option<usize> {
        self.next_segments(s).iter().position(|&n| n == next)
    }

    /// Maximum out-degree over all segments — `max_r N(r)` in §IV-A, the
    /// width of the shared projection matrices.
    pub fn max_out_degree(&self) -> usize {
        self.out_by_vertex.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether `b` may directly follow `a` on a route.
    pub fn adjacent(&self, a: SegmentId, b: SegmentId) -> bool {
        self.segments[a].to == self.segments[b].from
    }

    /// Validate a route: non-empty and consecutive segments adjacent.
    pub fn is_valid_route(&self, route: &[SegmentId]) -> bool {
        if route.is_empty() || route.iter().any(|&s| s >= self.segments.len()) {
            return false;
        }
        route.windows(2).all(|w| self.adjacent(w[0], w[1]))
    }

    /// Total length of a route in meters.
    pub fn route_length(&self, route: &[SegmentId]) -> f64 {
        route.iter().map(|&s| self.segments[s].length).sum()
    }

    /// Distance from a point to a segment (to its straight-line geometry).
    pub fn dist_to_segment(&self, p: &Point, s: SegmentId) -> f64 {
        geo::dist_to_segment(p, &self.start_point(s), &self.end_point(s))
    }

    /// Projection of a point onto a segment: `p(x, r)` in the paper's
    /// termination function `f_s` (§IV-A).
    pub fn project_onto(&self, p: &Point, s: SegmentId) -> Point {
        geo::project_onto_segment(p, &self.start_point(s), &self.end_point(s)).0
    }

    /// The segment whose geometry is closest to `p` (linear scan; use
    /// `st-mapmatch`'s spatial index for bulk queries).
    pub fn nearest_segment(&self, p: &Point) -> Option<SegmentId> {
        (0..self.segments.len()).min_by(|&a, &b| {
            self.dist_to_segment(p, a)
                .total_cmp(&self.dist_to_segment(p, b))
        })
    }

    /// Bounding box `(min, max)` over all vertices.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in &self.vertices {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 grid with two-way streets:
    ///
    /// ```text
    /// 2 — 3
    /// |   |
    /// 0 — 1
    /// ```
    pub(crate) fn square() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let v = [
            net.add_vertex(Point::new(0.0, 0.0)),
            net.add_vertex(Point::new(100.0, 0.0)),
            net.add_vertex(Point::new(0.0, 100.0)),
            net.add_vertex(Point::new(100.0, 100.0)),
        ];
        net.add_twoway(v[0], v[1], 10.0);
        net.add_twoway(v[0], v[2], 10.0);
        net.add_twoway(v[1], v[3], 10.0);
        net.add_twoway(v[2], v[3], 10.0);
        net.freeze();
        net
    }

    #[test]
    fn counts_and_lengths() {
        let net = square();
        assert_eq!(net.num_vertices(), 4);
        assert_eq!(net.num_segments(), 8);
        assert_eq!(net.segment(0).length, 100.0);
        assert_eq!(net.route_length(&[0, 4]), 200.0);
    }

    #[test]
    fn adjacency_and_slots() {
        let net = square();
        // Segment 0 is v0→v1; its next segments leave v1.
        let nexts = net.next_segments(0);
        assert!(!nexts.is_empty());
        for &n in nexts {
            assert_eq!(net.segment(n).from, 1);
            assert_eq!(net.neighbor_slot(0, n).map(|i| nexts[i]), Some(n));
        }
        assert_eq!(net.neighbor_slot(0, 3), None); // v0→v2 does not follow v0→v1
    }

    #[test]
    fn reverse_links() {
        let net = square();
        assert_eq!(net.reverse_of(0), Some(1));
        assert_eq!(net.reverse_of(1), Some(0));
    }

    #[test]
    fn route_validation() {
        let net = square();
        // v0→v1 (0), then v1→v3 (4)
        assert!(net.adjacent(0, 4));
        assert!(net.is_valid_route(&[0, 4]));
        assert!(!net.is_valid_route(&[0, 2]));
        assert!(!net.is_valid_route(&[]));
        assert!(!net.is_valid_route(&[999]));
    }

    #[test]
    fn max_out_degree_square() {
        let net = square();
        // each vertex has 2 outgoing segments
        assert_eq!(net.max_out_degree(), 2);
    }

    #[test]
    fn geometry_queries() {
        let net = square();
        assert_eq!(net.midpoint(0), Point::new(50.0, 0.0));
        let p = Point::new(50.0, 10.0);
        assert!((net.dist_to_segment(&p, 0) - 10.0).abs() < 1e-9);
        assert_eq!(net.project_onto(&p, 0), Point::new(50.0, 0.0));
        let nearest = net.nearest_segment(&p).unwrap();
        // nearest must be one of the two directions of the bottom road
        assert!(nearest == 0 || nearest == 1);
    }

    #[test]
    fn bounding_box() {
        let net = square();
        let (min, max) = net.bounding_box();
        assert_eq!(min, Point::new(0.0, 0.0));
        assert_eq!(max, Point::new(100.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let mut net = RoadNetwork::new();
        let v = net.add_vertex(Point::new(0.0, 0.0));
        net.add_segment(v, v, 10.0);
    }

    #[test]
    fn canonical_order_is_by_heading() {
        let net = square();
        for v in 0..net.num_vertices() {
            let outs = net.out_segments(v);
            let headings: Vec<f64> = outs.iter().map(|&s| net.heading(s)).collect();
            for w in headings.windows(2) {
                assert!(w[0] <= w[1], "neighbors not sorted by heading");
            }
        }
    }
}
