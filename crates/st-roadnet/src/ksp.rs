//! Yen's algorithm for k-shortest loopless routes.
//!
//! Route recovery (§V-C) scores a set of candidate routes between two
//! observed road segments; the candidate set is produced here.

use std::collections::BTreeSet;

use crate::graph::{RoadNetwork, Route, SegmentId};
use crate::shortest::shortest_route_filtered;

/// A candidate route with its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredRoute {
    /// The route (src..=dst).
    pub route: Route,
    /// Total cost under the supplied cost function.
    pub cost: f64,
}

/// Up to `k` loopless shortest routes from `src` to `dst`, in nondecreasing
/// cost order. Returns fewer if the graph does not contain `k` distinct
/// routes.
pub fn k_shortest_routes(
    net: &RoadNetwork,
    src: SegmentId,
    dst: SegmentId,
    k: usize,
    cost: &dyn Fn(SegmentId) -> f64,
) -> Vec<ScoredRoute> {
    if k == 0 {
        return Vec::new();
    }
    let Some((first, first_cost)) = shortest_route_filtered(net, src, dst, cost, &|_, _| true)
    else {
        return Vec::new();
    };
    let mut found = vec![ScoredRoute {
        route: first,
        cost: first_cost,
    }];
    // Candidate pool, deduplicated by route.
    let mut candidates: Vec<ScoredRoute> = Vec::new();
    let mut seen: BTreeSet<Route> = BTreeSet::new();
    seen.insert(found[0].route.clone());

    while found.len() < k {
        let last = &found[found.len() - 1].route;
        // Spur from every prefix position of the last found route.
        for i in 0..last.len() - 1 {
            let spur_node = last[i];
            let root: Vec<SegmentId> = last[..=i].to_vec();
            // Segments banned at the spur: the next hop of any found route
            // sharing this root, plus everything already on the root (to keep
            // routes loopless).
            let mut banned: BTreeSet<SegmentId> = BTreeSet::new();
            for sr in found.iter() {
                if sr.route.len() > i + 1 && sr.route[..=i] == root[..] {
                    banned.insert(sr.route[i + 1]);
                }
            }
            let root_set: BTreeSet<SegmentId> = root.iter().copied().collect();
            // Ban the already-used next hops only as *first transitions out
            // of the spur node*; ban root segments everywhere (looplessness).
            let allowed = |from: SegmentId, s: SegmentId| {
                (from != spur_node || !banned.contains(&s)) && !root_set.contains(&s)
            };
            if let Some((spur, _)) = shortest_route_filtered(net, spur_node, dst, cost, &allowed) {
                let mut total: Route = root[..i].to_vec();
                total.extend_from_slice(&spur);
                if seen.insert(total.clone()) {
                    let total_cost: f64 = total[1..].iter().map(|&s| cost(s)).sum();
                    candidates.push(ScoredRoute {
                        route: total,
                        cost: total_cost,
                    });
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate (non-empty: checked just above).
        let Some(best) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.cost.total_cmp(&b.cost))
            .map(|(i, _)| i)
        else {
            break;
        };
        found.push(candidates.swap_remove(best));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid_city, GridConfig};
    use crate::geo::Point;
    use crate::graph::RoadNetwork;

    fn square() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let v: Vec<_> = [(0., 0.), (100., 0.), (0., 100.), (100., 100.)]
            .iter()
            .map(|&(x, y)| net.add_vertex(Point::new(x, y)))
            .collect();
        net.add_twoway(v[0], v[1], 10.0); // 0,1
        net.add_twoway(v[0], v[2], 10.0); // 2,3
        net.add_twoway(v[1], v[3], 10.0); // 4,5
        net.add_twoway(v[2], v[3], 10.0); // 6,7
        net.freeze();
        net
    }

    #[test]
    fn two_routes_across_square() {
        let net = square();
        let cost = |s: SegmentId| net.segment(s).length;
        // From v0→v1 (0) to v2→v3 (6): e.g. 0,4,7? No: 7 is v3→v2. Use dst 6.
        // Route A: 0 (v0→v1), 4 (v1→v3) ... 6 is v2→v3, ends at v3. Reaching 6
        // requires arriving at v2: 0,4,7? 7=v3→v2 then 6=v2→v3. Or 1? Can't use src twice.
        let routes = k_shortest_routes(&net, 0, 6, 4, &cost);
        assert!(!routes.is_empty());
        for sr in &routes {
            assert!(net.is_valid_route(&sr.route), "invalid {:?}", sr.route);
            assert_eq!(sr.route.first(), Some(&0));
            assert_eq!(sr.route.last(), Some(&6));
        }
        // nondecreasing cost
        for w in routes.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-9);
        }
        // all distinct
        let set: BTreeSet<_> = routes.iter().map(|r| r.route.clone()).collect();
        assert_eq!(set.len(), routes.len());
    }

    #[test]
    fn k_one_equals_dijkstra() {
        let net = grid_city(&GridConfig::small_test(), 5);
        let cost = |s: SegmentId| net.segment(s).length;
        let routes = k_shortest_routes(&net, 0, net.num_segments() - 1, 1, &cost);
        if let Some(first) = routes.first() {
            let (r, c) =
                crate::shortest::shortest_route(&net, 0, net.num_segments() - 1, &cost).unwrap();
            assert_eq!(first.route, r);
            assert!((first.cost - c).abs() < 1e-6);
        }
    }

    #[test]
    fn grid_yields_many_distinct_routes() {
        let net = grid_city(&GridConfig::small_test(), 5);
        let cost = |s: SegmentId| net.segment(s).length;
        let src = 0;
        let dst = net.num_segments() / 2;
        let routes = k_shortest_routes(&net, src, dst, 6, &cost);
        if routes.len() >= 2 {
            let set: BTreeSet<_> = routes.iter().map(|r| r.route.clone()).collect();
            assert_eq!(set.len(), routes.len(), "duplicate routes returned");
            for sr in &routes {
                assert!(net.is_valid_route(&sr.route));
            }
            for w in routes.windows(2) {
                assert!(w[0].cost <= w[1].cost + 1e-9, "costs not sorted");
            }
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let net = square();
        assert!(k_shortest_routes(&net, 0, 6, 0, &|_| 1.0).is_empty());
    }

    #[test]
    fn routes_are_loopless() {
        let net = grid_city(&GridConfig::small_test(), 9);
        let cost = |s: SegmentId| net.segment(s).length;
        let routes = k_shortest_routes(&net, 1, net.num_segments() - 2, 8, &cost);
        for sr in &routes {
            let set: BTreeSet<_> = sr.route.iter().collect();
            assert_eq!(set.len(), sr.route.len(), "loop in {:?}", sr.route);
        }
    }
}
