//! `st-roadnet`: the road-network substrate for the DeepST reproduction.
//!
//! Provides the directed segment graph of Definition 1 ([`graph::RoadNetwork`]),
//! planar geometry ([`geo`]), Dijkstra shortest paths ([`shortest`]), Yen's
//! k-shortest routes for recovery candidates ([`ksp`]), and a synthetic
//! city generator standing in for the paper's OSM extracts ([`gen`]).

pub mod astar;
pub mod gen;
pub mod geo;
pub mod graph;
pub mod index;
pub mod ksp;
pub mod shortest;

pub use astar::{astar_route, travel_time_heuristic};
pub use gen::{grid_city, GridConfig};
pub use geo::Point;
pub use graph::{RoadNetwork, Route, Segment, SegmentId, VertexId};
pub use index::SegmentIndex;
pub use ksp::{k_shortest_routes, ScoredRoute};
pub use shortest::{all_costs_from, all_costs_to, shortest_route};
