//! Shortest paths over the segment graph (Dijkstra).
//!
//! Costs are supplied by a closure so the same machinery serves free-flow
//! distance, historical mean travel time (the WSP baseline, §V-A) and
//! traffic-dependent times (the simulator's route choice).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{RoadNetwork, Route, SegmentId};

/// Priority-queue entry (min-heap by cost).
#[derive(PartialEq)]
struct Entry {
    cost: f64,
    seg: SegmentId,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reverse for a min-heap; total_cmp gives a total order even if a
        // cost function ever produces NaN (NaN sorts last, never ties)
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.seg.cmp(&self.seg))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest route from segment `src` to segment `dst`.
///
/// The cost of a route is `Σ cost(s)` over its segments *excluding* `src`
/// (the vehicle is already on `src`). Returns the route (including both
/// endpoints) and its cost, or `None` if unreachable. `cost` must be
/// non-negative for every segment.
pub fn shortest_route(
    net: &RoadNetwork,
    src: SegmentId,
    dst: SegmentId,
    cost: &dyn Fn(SegmentId) -> f64,
) -> Option<(Route, f64)> {
    shortest_route_filtered(net, src, dst, cost, &|_, _| true)
}

/// Like [`shortest_route`], but only relaxes transitions `(from, next)` for
/// which `allowed` returns true (`src` is always a valid starting point).
/// The edge-level filter is what Yen's algorithm needs: it must ban a
/// specific transition out of the spur node while leaving the target segment
/// reachable elsewhere.
pub fn shortest_route_filtered(
    net: &RoadNetwork,
    src: SegmentId,
    dst: SegmentId,
    cost: &dyn Fn(SegmentId) -> f64,
    allowed: &dyn Fn(SegmentId, SegmentId) -> bool,
) -> Option<(Route, f64)> {
    let n = net.num_segments();
    assert!(src < n && dst < n, "segment out of range");
    if src == dst {
        return Some((vec![src], 0.0));
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<SegmentId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(Entry {
        cost: 0.0,
        seg: src,
    });
    while let Some(Entry { cost: d, seg }) = heap.pop() {
        if d > dist[seg] {
            continue;
        }
        if seg == dst {
            break;
        }
        for &next in net.next_segments(seg) {
            if next == src || !allowed(seg, next) {
                continue;
            }
            let w = cost(next);
            debug_assert!(w >= 0.0, "negative edge cost on segment {next}");
            let nd = d + w;
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = Some(seg);
                heap.push(Entry {
                    cost: nd,
                    seg: next,
                });
            }
        }
    }
    if !dist[dst].is_finite() {
        return None;
    }
    let mut route = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur] {
        route.push(p);
        cur = p;
    }
    debug_assert_eq!(cur, src);
    route.reverse();
    Some((route, dist[dst]))
}

/// Single-source costs to every segment (∞ where unreachable).
pub fn all_costs_from(
    net: &RoadNetwork,
    src: SegmentId,
    cost: &dyn Fn(SegmentId) -> f64,
) -> Vec<f64> {
    let n = net.num_segments();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(Entry {
        cost: 0.0,
        seg: src,
    });
    while let Some(Entry { cost: d, seg }) = heap.pop() {
        if d > dist[seg] {
            continue;
        }
        for &next in net.next_segments(seg) {
            let nd = d + cost(next);
            if nd < dist[next] {
                dist[next] = nd;
                heap.push(Entry {
                    cost: nd,
                    seg: next,
                });
            }
        }
    }
    dist
}

/// Costs *to* `dst` from every segment (runs Dijkstra on the reversed graph).
/// `cost(s)` is charged when `s` is entered, consistent with
/// [`shortest_route`]: the cost from `s` to `dst` excludes `cost(s)` itself.
pub fn all_costs_to(
    net: &RoadNetwork,
    dst: SegmentId,
    cost: &dyn Fn(SegmentId) -> f64,
) -> Vec<f64> {
    let n = net.num_segments();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[dst] = 0.0;
    heap.push(Entry {
        cost: 0.0,
        seg: dst,
    });
    while let Some(Entry { cost: d, seg }) = heap.pop() {
        if d > dist[seg] {
            continue;
        }
        // predecessors of `seg`: segments whose end vertex is seg's start
        for &p in net.in_segments(net.segment(seg).from) {
            let nd = d + cost(seg);
            if nd < dist[p] {
                dist[p] = nd;
                heap.push(Entry { cost: nd, seg: p });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid_city, GridConfig};
    use crate::geo::Point;
    use crate::graph::RoadNetwork;

    fn square() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let v: Vec<_> = [(0., 0.), (100., 0.), (0., 100.), (100., 100.)]
            .iter()
            .map(|&(x, y)| net.add_vertex(Point::new(x, y)))
            .collect();
        net.add_twoway(v[0], v[1], 10.0); // 0,1
        net.add_twoway(v[0], v[2], 10.0); // 2,3
        net.add_twoway(v[1], v[3], 10.0); // 4,5
        net.add_twoway(v[2], v[3], 10.0); // 6,7
        net.freeze();
        net
    }

    fn by_length(net: &RoadNetwork) -> impl Fn(SegmentId) -> f64 + '_ {
        move |s| net.segment(s).length
    }

    #[test]
    fn trivial_same_segment() {
        let net = square();
        let (r, c) = shortest_route(&net, 0, 0, &by_length(&net)).unwrap();
        assert_eq!(r, vec![0]);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn finds_shortest_in_square() {
        let net = square();
        // from v0→v1 (0) to v1→v3 (4): directly adjacent
        let cost = by_length(&net);
        let (r, c) = shortest_route(&net, 0, 4, &cost).unwrap();
        assert_eq!(r, vec![0, 4]);
        assert_eq!(c, 100.0);
        // from v0→v1 (0) to v3→v2 (7): 0 → 4 → 7
        let (r, c) = shortest_route(&net, 0, 7, &cost).unwrap();
        assert!(net.is_valid_route(&r));
        assert_eq!(r, vec![0, 4, 7]);
        assert_eq!(c, 200.0);
    }

    #[test]
    fn respects_costs_not_hops() {
        let net = square();
        // Make segment 4 (v1→v3) hugely expensive: the route 0 → ... → 7
        // must detour through v0→v2→v3 even though it has more hops.
        let cost = |s: SegmentId| if s == 4 { 1e9 } else { net.segment(s).length };
        let (r, c) = shortest_route(&net, 0, 7, &cost).unwrap();
        assert!(!r.contains(&4), "expensive segment used: {r:?}");
        assert!(c < 1e9);
        assert!(net.is_valid_route(&r));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = RoadNetwork::new();
        let a = net.add_vertex(Point::new(0.0, 0.0));
        let b = net.add_vertex(Point::new(1.0, 0.0));
        let c = net.add_vertex(Point::new(2.0, 0.0));
        let d = net.add_vertex(Point::new(3.0, 0.0));
        let s1 = net.add_segment(a, b, 10.0);
        let s2 = net.add_segment(c, d, 10.0); // disconnected from s1
        net.freeze();
        assert!(shortest_route(&net, s1, s2, &|_| 1.0).is_none());
    }

    #[test]
    fn all_costs_consistent_with_point_queries() {
        let net = grid_city(&GridConfig::small_test(), 7);
        let cost = |s: SegmentId| net.segment(s).length;
        let src = 0;
        let all = all_costs_from(&net, src, &cost);
        for dst in (0..net.num_segments()).step_by(17) {
            match shortest_route(&net, src, dst, &cost) {
                Some((_, c)) => assert!(
                    (c - all[dst]).abs() < 1e-6,
                    "mismatch at {dst}: {c} vs {}",
                    all[dst]
                ),
                None => assert!(!all[dst].is_finite()),
            }
        }
    }

    #[test]
    fn reverse_costs_match_forward() {
        let net = grid_city(&GridConfig::small_test(), 3);
        let cost = |s: SegmentId| net.segment(s).length;
        let dst = net.num_segments() / 2;
        let to = all_costs_to(&net, dst, &cost);
        for src in (0..net.num_segments()).step_by(13) {
            match shortest_route(&net, src, dst, &cost) {
                Some((_, c)) => {
                    assert!(
                        (c - to[src]).abs() < 1e-6,
                        "mismatch at {src}: {c} vs {}",
                        to[src]
                    )
                }
                None => assert!(!to[src].is_finite()),
            }
        }
    }
}
