//! SVG rendering of road networks, routes, and GPS data.
//!
//! Produces self-contained SVG strings (no external dependencies) for
//! inspecting predictions: the network in grey, overlaid routes in color,
//! destination markers, and optional GPS point clouds. Used by the examples
//! and handy in downstream debugging.

use std::fmt::Write as _;

use st_roadnet::{Point, RoadNetwork, SegmentId};

/// A route overlay: segments + stroke color + label.
#[derive(Debug, Clone)]
pub struct RouteLayer<'a> {
    /// Segments to draw.
    pub route: &'a [SegmentId],
    /// CSS color, e.g. `"#d62728"`.
    pub color: &'a str,
    /// Legend label.
    pub label: &'a str,
}

/// SVG scene builder over a road network.
pub struct SvgScene<'a> {
    net: &'a RoadNetwork,
    width: f64,
    height: f64,
    scale: f64,
    min: Point,
    body: String,
    legend: Vec<(String, String)>,
}

impl<'a> SvgScene<'a> {
    /// A scene sized to `width_px` with the aspect ratio of the network's
    /// bounding box.
    pub fn new(net: &'a RoadNetwork, width_px: f64) -> Self {
        let (min, max) = net.bounding_box();
        let span_x = (max.x - min.x).max(1.0);
        let span_y = (max.y - min.y).max(1.0);
        let scale = width_px / span_x;
        let mut scene = Self {
            net,
            width: width_px,
            height: span_y * scale,
            scale,
            min,
            body: String::new(),
            legend: Vec::new(),
        };
        scene.draw_network();
        scene
    }

    fn tx(&self, p: &Point) -> (f64, f64) {
        (
            (p.x - self.min.x) * self.scale,
            // SVG y grows downward; flip so north is up
            self.height - (p.y - self.min.y) * self.scale,
        )
    }

    fn draw_network(&mut self) {
        let mut path = String::new();
        for s in 0..self.net.num_segments() {
            // draw each two-way road once
            if matches!(self.net.reverse_of(s), Some(r) if r < s) {
                continue;
            }
            let (x1, y1) = self.tx(&self.net.start_point(s));
            let (x2, y2) = self.tx(&self.net.end_point(s));
            let _ = write!(path, "M{x1:.1} {y1:.1}L{x2:.1} {y2:.1}");
        }
        let _ = write!(
            self.body,
            r##"<path d="{path}" stroke="#c8c8c8" stroke-width="1.5" fill="none"/>"##
        );
    }

    /// Overlay a route.
    pub fn add_route(&mut self, layer: &RouteLayer<'_>) {
        if layer.route.is_empty() {
            return;
        }
        let mut path = String::new();
        let (x0, y0) = self.tx(&self.net.start_point(layer.route[0]));
        let _ = write!(path, "M{x0:.1} {y0:.1}");
        for &s in layer.route {
            let (x, y) = self.tx(&self.net.end_point(s));
            let _ = write!(path, "L{x:.1} {y:.1}");
        }
        let _ = write!(
            self.body,
            r##"<path d="{path}" stroke="{color}" stroke-width="3" fill="none" stroke-linecap="round" opacity="0.8"/>"##,
            color = layer.color
        );
        self.legend
            .push((layer.color.to_string(), layer.label.to_string()));
    }

    /// Mark a point (e.g. the destination) with a circle.
    pub fn add_marker(&mut self, p: &Point, color: &str, radius_px: f64) {
        let (x, y) = self.tx(p);
        let _ = write!(
            self.body,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="{radius_px}" fill="{color}" opacity="0.9"/>"##
        );
    }

    /// Scatter small dots (e.g. GPS fixes).
    pub fn add_points(&mut self, points: impl IntoIterator<Item = Point>, color: &str) {
        for p in points {
            let (x, y) = self.tx(&p);
            let _ = write!(
                self.body,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="1.2" fill="{color}" opacity="0.5"/>"##
            );
        }
    }

    /// Finish the SVG document.
    pub fn finish(self) -> String {
        let mut legend = String::new();
        for (i, (color, label)) in self.legend.iter().enumerate() {
            let y = 18.0 + 16.0 * i as f64;
            let _ = write!(
                legend,
                r##"<rect x="8" y="{ry:.1}" width="12" height="4" fill="{color}"/><text x="26" y="{ty:.1}" font-size="12" font-family="sans-serif">{label}</text>"##,
                ry = y - 4.0,
                ty = y + 2.0,
            );
        }
        format!(
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}"><rect width="100%" height="100%" fill="white"/>{body}{legend}</svg>"##,
            w = self.width,
            h = self.height,
            body = self.body,
        )
    }

    /// Convenience: write the SVG to a file.
    pub fn save(self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};

    fn scene() -> (RoadNetwork, Vec<SegmentId>) {
        let net = grid_city(&GridConfig::small_test(), 1);
        let mut route = vec![0usize];
        for _ in 0..4 {
            route.push(net.next_segments(*route.last().unwrap())[0]);
        }
        (net, route)
    }

    #[test]
    fn produces_valid_svg_skeleton() {
        let (net, route) = scene();
        let mut s = SvgScene::new(&net, 400.0);
        s.add_route(&RouteLayer {
            route: &route,
            color: "#d62728",
            label: "truth",
        });
        s.add_marker(&net.midpoint(route[route.len() - 1]), "#2ca02c", 5.0);
        let svg = s.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("#d62728"));
        assert!(svg.contains("truth"));
        // legend entry and network path exist
        assert!(svg.contains("#c8c8c8"));
    }

    #[test]
    fn aspect_ratio_follows_bbox() {
        let (net, _) = scene();
        let s = SvgScene::new(&net, 300.0);
        let (min, max) = net.bounding_box();
        let want = (max.y - min.y) / (max.x - min.x) * 300.0;
        assert!((s.height - want).abs() < 1e-6);
        let svg = s.finish();
        assert!(svg.contains(&format!(r#"width="{:.0}""#, 300.0)));
    }

    #[test]
    fn empty_route_is_noop() {
        let (net, _) = scene();
        let mut s = SvgScene::new(&net, 200.0);
        let before = s.body.len();
        s.add_route(&RouteLayer {
            route: &[],
            color: "#000",
            label: "x",
        });
        assert_eq!(s.body.len(), before);
    }

    #[test]
    fn save_writes_file() {
        let (net, route) = scene();
        let mut s = SvgScene::new(&net, 200.0);
        s.add_route(&RouteLayer {
            route: &route,
            color: "#1f77b4",
            label: "r",
        });
        let dir = std::env::temp_dir().join("st_eval_viz_test");
        let path = dir.join("map.svg");
        s.save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn points_render() {
        let (net, _) = scene();
        let mut s = SvgScene::new(&net, 200.0);
        s.add_points(
            vec![Point::new(10.0, 10.0), Point::new(50.0, 80.0)],
            "#9467bd",
        );
        let svg = s.finish();
        assert_eq!(svg.matches("circle").count(), 2);
    }
}
