//! Evaluation metrics: recall@n (Eq. 8) and accuracy (Eq. 9).

use st_roadnet::SegmentId;

/// `|a ∩ b|` as a multiset intersection (min of per-segment multiplicities),
/// so routes that revisit a segment are handled exactly.
fn intersection_size(a: &[SegmentId], b: &[SegmentId]) -> usize {
    let mut counts: std::collections::BTreeMap<SegmentId, usize> =
        std::collections::BTreeMap::new();
    for &s in a {
        *counts.entry(s).or_insert(0) += 1;
    }
    let mut inter = 0;
    for &s in b {
        if let Some(c) = counts.get_mut(&s) {
            if *c > 0 {
                *c -= 1;
                inter += 1;
            }
        }
    }
    inter
}

/// recall@n (Eq. 8): truncate the prediction to the ground-truth length,
/// then `|r ∩ r̂_t| / |r|`.
///
/// ```
/// use st_eval::metrics::{accuracy, recall_at_n};
///
/// let truth = [1, 2, 3, 4];
/// let pred = [1, 2, 9, 4, 7, 8];
/// assert_eq!(recall_at_n(&truth, &pred), 0.75); // 3 of 4 within the first |r|
/// assert_eq!(accuracy(&truth, &pred), 0.5);     // 3 of max(4, 6)
/// ```
pub fn recall_at_n(truth: &[SegmentId], predicted: &[SegmentId]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let truncated = &predicted[..predicted.len().min(truth.len())];
    intersection_size(truth, truncated) as f64 / truth.len() as f64
}

/// accuracy (Eq. 9): `|r ∩ r̂| / max(|r|, |r̂|)` — penalizes both missing
/// and excess segments.
pub fn accuracy(truth: &[SegmentId], predicted: &[SegmentId]) -> f64 {
    let denom = truth.len().max(predicted.len());
    if denom == 0 {
        return 0.0;
    }
    intersection_size(truth, predicted) as f64 / denom as f64
}

/// Aggregate of both metrics over many trips.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct MetricSums {
    /// Σ recall@n.
    pub recall_sum: f64,
    /// Σ accuracy.
    pub accuracy_sum: f64,
    /// Number of evaluated trips.
    pub count: usize,
}

impl MetricSums {
    /// Add one trip's metrics.
    pub fn add(&mut self, truth: &[SegmentId], predicted: &[SegmentId]) {
        self.recall_sum += recall_at_n(truth, predicted);
        self.accuracy_sum += accuracy(truth, predicted);
        self.count += 1;
    }

    /// Mean recall@n.
    pub fn recall(&self) -> f64 {
        self.recall_sum / self.count.max(1) as f64
    }

    /// Mean accuracy.
    pub fn accuracy(&self) -> f64 {
        self.accuracy_sum / self.count.max(1) as f64
    }
}

/// The paper's travel-distance buckets (km) for Fig. 7.
pub const DISTANCE_BUCKETS: [(f64, f64); 8] = [
    (1.0, 3.0),
    (3.0, 5.0),
    (5.0, 10.0),
    (10.0, 15.0),
    (15.0, 20.0),
    (20.0, 25.0),
    (25.0, 30.0),
    (30.0, f64::INFINITY),
];

/// The bucket index of a travel distance in km (Fig. 7), or `None` below
/// the first bucket.
pub fn distance_bucket(km: f64, buckets: &[(f64, f64)]) -> Option<usize> {
    buckets.iter().position(|&(lo, hi)| km >= lo && km < hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_prediction() {
        let r = vec![1, 2, 3, 4];
        assert_eq!(recall_at_n(&r, &r), 1.0);
        assert_eq!(accuracy(&r, &r), 1.0);
    }

    #[test]
    fn disjoint_prediction() {
        let truth = vec![1, 2, 3];
        let pred = vec![4, 5, 6];
        assert_eq!(recall_at_n(&truth, &pred), 0.0);
        assert_eq!(accuracy(&truth, &pred), 0.0);
    }

    #[test]
    fn recall_truncates_long_predictions() {
        let truth = vec![1, 2];
        // the correct segments appear only after position |r|; truncation
        // removes them
        let pred = vec![7, 8, 1, 2];
        assert_eq!(recall_at_n(&truth, &pred), 0.0);
        // accuracy sees the full prediction but penalizes its length
        assert_eq!(accuracy(&truth, &pred), 0.5);
    }

    #[test]
    fn overlong_prediction_penalized_in_accuracy_only() {
        let truth = vec![1, 2, 3];
        let pred = vec![1, 2, 3, 4, 5, 6];
        assert_eq!(recall_at_n(&truth, &pred), 1.0);
        assert_eq!(accuracy(&truth, &pred), 0.5);
    }

    #[test]
    fn sums_average_correctly() {
        let mut m = MetricSums::default();
        m.add(&[1, 2], &[1, 2]);
        m.add(&[1, 2], &[3, 4]);
        assert_eq!(m.count, 2);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.accuracy(), 0.5);
    }

    #[test]
    fn buckets_match_paper() {
        assert_eq!(distance_bucket(1.5, &DISTANCE_BUCKETS), Some(0));
        assert_eq!(distance_bucket(4.0, &DISTANCE_BUCKETS), Some(1));
        assert_eq!(distance_bucket(12.0, &DISTANCE_BUCKETS), Some(3));
        assert_eq!(distance_bucket(99.0, &DISTANCE_BUCKETS), Some(7));
        assert_eq!(distance_bucket(0.5, &DISTANCE_BUCKETS), None);
    }

    proptest! {
        #[test]
        fn metrics_bounded(
            truth in proptest::collection::vec(0usize..50, 1..20),
            pred in proptest::collection::vec(0usize..50, 0..30),
        ) {
            let r = recall_at_n(&truth, &pred);
            let a = accuracy(&truth, &pred);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!((0.0..=1.0).contains(&a));
            // accuracy never exceeds recall@n when prediction is not longer
            // than truth (both use the same intersection, recall's denom is
            // |r| ≥ max with shorter pred... just sanity: identical inputs)
            prop_assert_eq!(recall_at_n(&truth, &truth), 1.0);
        }

        #[test]
        fn accuracy_symmetric(
            a in proptest::collection::vec(0usize..30, 1..15),
            b in proptest::collection::vec(0usize..30, 1..15),
        ) {
            prop_assert!((accuracy(&a, &b) - accuracy(&b, &a)).abs() < 1e-12);
        }
    }
}
