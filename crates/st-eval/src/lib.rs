//! `st-eval`: metrics and experiment runners for the DeepST reproduction.
//!
//! - [`metrics`] — recall@n (Eq. 8) and accuracy (Eq. 9), distance buckets.
//! - [`runner`] — dataset → examples → trained methods → evaluation
//!   (the machinery behind Tables IV/VI and Fig. 7).
//! - [`report`] — ASCII tables, bar "figures", heat maps, JSON output.

pub mod metrics;
pub mod report;
pub mod runner;
pub mod viz;

pub use metrics::{accuracy, distance_bucket, recall_at_n, MetricSums, DISTANCE_BUCKETS};
pub use runner::{
    build_examples, deepst_config, evaluate_methods, quantile_buckets, teacher_forced_accuracy,
    train_all_methods, train_deepst, EvalSummary, MethodResult, SuiteConfig,
};
pub use viz::{RouteLayer, SvgScene};
