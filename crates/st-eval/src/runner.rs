//! End-to-end experiment runner: dataset → trained methods → metrics.
//!
//! This is the machinery behind Table IV, Table VI and Fig. 7: it converts a
//! simulated [`Dataset`] into training [`Example`]s, fits every method of
//! §V-A, and evaluates most-likely-route prediction on the test split.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use st_baselines::{DeepStPredictor, Mmi, PredictQuery, Predictor, RnnBaseline, RnnConfig, Wsp};
use st_core::{DeepSt, DeepStConfig, Example, TrainConfig, Trainer};
use st_roadnet::Route;
use st_sim::Dataset;

use crate::metrics::{distance_bucket, MetricSums};

/// Knobs for a full evaluation suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Master seed.
    pub seed: u64,
    /// DeepST training epochs.
    pub deepst_epochs: usize,
    /// Neural baseline training epochs.
    pub rnn_epochs: usize,
    /// Minibatch size for all neural models.
    pub batch_size: usize,
    /// Learning rate for all neural models.
    pub lr: f32,
    /// Number of destination proxies K for DeepST.
    pub k_proxies: usize,
    /// Cap on evaluated test trips (None = all).
    pub max_eval: Option<usize>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            deepst_epochs: 8,
            rnn_epochs: 8,
            batch_size: 64,
            lr: 3e-3,
            k_proxies: 24,
            max_eval: None,
        }
    }
}

/// Convert dataset trips at `indices` into model [`Example`]s. Traffic
/// tensors are shared per slot via `Arc`.
pub fn build_examples(ds: &Dataset, indices: &[usize]) -> Vec<Example> {
    let mut tensor_cache: std::collections::HashMap<usize, Arc<Vec<f32>>> =
        std::collections::HashMap::new();
    indices
        .iter()
        .filter_map(|&i| {
            let trip = &ds.trips[i];
            let slot = ds.slot_of(trip.start_time);
            let tensor = Arc::clone(
                tensor_cache
                    .entry(slot)
                    .or_insert_with(|| Arc::new(ds.traffic_tensor(slot).to_vec())),
            );
            Example::new(
                &ds.net,
                trip.route.clone(),
                ds.unit_coord(&trip.dest_coord),
                tensor,
                slot,
            )
        })
        .collect()
}

/// The base DeepST configuration for a dataset.
pub fn deepst_config(ds: &Dataset, k: usize) -> DeepStConfig {
    DeepStConfig::new(
        ds.net.num_segments(),
        ds.net.max_out_degree(),
        ds.grid.height,
        ds.grid.width,
    )
    .with_k(k)
}

/// Train a DeepST model (or DeepST-C with `use_traffic = false`).
pub fn train_deepst(
    ds: &Dataset,
    train: &[Example],
    val: Option<&[Example]>,
    cfg: &SuiteConfig,
    use_traffic: bool,
) -> DeepSt {
    let mut mcfg = deepst_config(ds, cfg.k_proxies);
    mcfg.use_traffic = use_traffic;
    let model = DeepSt::new(mcfg, cfg.seed);
    let tc = TrainConfig {
        epochs: cfg.deepst_epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        grad_clip: 5.0,
        patience: Some(3),
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(model, tc);
    // Static output-space check against the actual network: the trainer only
    // sees examples, so a too-narrow `max_neighbors` head is flagged here.
    if let Some(diag) = trainer.model.lint_output_space(&ds.net) {
        st_obs::warn_once("deepst.truncated-output-space", &diag.to_string());
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xDEE9);
    trainer.fit(train, val, &mut rng);
    trainer.model
}

/// Train every method of Table IV and return them in the paper's column
/// order: DeepST, DeepST-C, CSSRNN, RNN, MMI, WSP.
///
/// `train`/`val` must come from [`Dataset::default_split`]: WSP additionally
/// needs trip durations, which [`Example`]s do not carry, so it re-derives
/// the default split's training trips from the dataset.
pub fn train_all_methods(
    ds: &Dataset,
    train: &[Example],
    val: Option<&[Example]>,
    cfg: &SuiteConfig,
) -> Vec<Box<dyn Predictor>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBA5E);
    let rnn_cfg = RnnConfig {
        epochs: cfg.rnn_epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        ..RnnConfig::new(ds.net.num_segments(), ds.net.max_out_degree())
    };

    let deepst = train_deepst(ds, train, val, cfg, true);
    let deepst_c = train_deepst(ds, train, val, cfg, false);
    let mut cssrnn = RnnBaseline::cssrnn(rnn_cfg.clone(), cfg.seed);
    cssrnn.fit(train, &mut rng);
    let mut rnn = RnnBaseline::vanilla(rnn_cfg, cfg.seed);
    rnn.fit(train, &mut rng);
    let train_routes: Vec<Route> = train.iter().map(|e| e.route.clone()).collect();
    let mmi = Mmi::fit(&ds.net, train_routes.iter());
    // WSP needs durations: recover them from the dataset trips by matching
    // routes is fragile; instead feed all train-split trips directly.
    let split = ds.default_split();
    let wsp = Wsp::fit(
        &ds.net,
        split
            .train
            .iter()
            .map(|&i| (&ds.trips[i].route, ds.trips[i].duration())),
    );

    vec![
        Box::new(DeepStPredictor::new(deepst)),
        Box::new(DeepStPredictor::new(deepst_c)),
        Box::new(cssrnn),
        Box::new(rnn),
        Box::new(mmi),
        Box::new(wsp),
    ]
}

/// Per-method evaluation result (overall + per-distance-bucket).
#[derive(Debug, Clone, serde::Serialize)]
pub struct MethodResult {
    /// Method display name.
    pub name: String,
    /// Overall metrics.
    pub overall: MetricSums,
    /// Metrics per travel-distance bucket.
    pub per_bucket: Vec<MetricSums>,
}

/// Equal-count (quantile) distance buckets over the test trips, in km.
pub fn quantile_buckets(ds: &Dataset, test: &[usize], n_buckets: usize) -> Vec<(f64, f64)> {
    let mut dists: Vec<f64> = test
        .iter()
        .map(|&i| ds.net.route_length(&ds.trips[i].route) / 1000.0)
        .collect();
    dists.sort_by(|a, b| a.total_cmp(b));
    assert!(!dists.is_empty());
    let mut buckets = Vec::with_capacity(n_buckets);
    for b in 0..n_buckets {
        let lo = dists[b * dists.len() / n_buckets];
        let hi = if b == n_buckets - 1 {
            f64::INFINITY
        } else {
            dists[(b + 1) * dists.len() / n_buckets]
        };
        buckets.push((lo, hi));
    }
    buckets[0].0 = 0.0;
    buckets
}

/// Result of an [`evaluate_methods`] run: per-method metrics plus trip
/// accounting for the bucketed (Fig. 7) view.
///
/// With the paper's fixed [`crate::metrics::DISTANCE_BUCKETS`] the lowest
/// bucket starts at 1 km, so shorter trips have no bucket: they still count
/// toward every method's `overall` metrics but are absent from `per_bucket`.
/// `bucket_dropped` makes that loss visible instead of silent.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EvalSummary {
    /// Per-method metrics, in the order the methods were passed.
    pub results: Vec<MethodResult>,
    /// Number of test trips evaluated (after the `max_eval` cap).
    pub evaluated: usize,
    /// Trips evaluated overall but outside every distance bucket (for the
    /// paper's buckets: trips shorter than 1 km).
    pub bucket_dropped: usize,
}

/// Evaluate methods on the test trips: most-likely-route prediction given
/// `(r₁, x, C)` (Table IV protocol), bucketed by travel distance (Fig. 7).
///
/// Trips whose travel distance falls outside every bucket are still scored
/// in `overall` and counted in [`EvalSummary::bucket_dropped`]; see the
/// summary type for why.
pub fn evaluate_methods(
    ds: &Dataset,
    methods: &[Box<dyn Predictor>],
    test: &[usize],
    buckets: &[(f64, f64)],
    max_eval: Option<usize>,
) -> EvalSummary {
    let _sp = st_obs::span("eval/methods");
    let dropped_ctr = st_obs::counter("eval.trips_outside_buckets");
    let take = max_eval.unwrap_or(test.len()).min(test.len());
    let mut results: Vec<MethodResult> = methods
        .iter()
        .map(|m| MethodResult {
            name: m.name().to_string(),
            overall: MetricSums::default(),
            per_bucket: vec![MetricSums::default(); buckets.len()],
        })
        .collect();
    let mut bucket_dropped = 0usize;
    for &i in test.iter().take(take) {
        let trip = &ds.trips[i];
        let slot = ds.slot_of(trip.start_time);
        let tensor = ds.traffic_tensor(slot);
        let q = PredictQuery {
            start: trip.origin_segment(),
            dest_coord: trip.dest_coord,
            dest_norm: ds.unit_coord(&trip.dest_coord),
            dest_segment: trip.dest_segment(),
            traffic: tensor,
            slot_id: slot,
        };
        let km = ds.net.route_length(&trip.route) / 1000.0;
        let bucket = distance_bucket(km, buckets);
        if bucket.is_none() {
            bucket_dropped += 1;
            dropped_ctr.inc();
        }
        for (m, res) in methods.iter().zip(&mut results) {
            let predicted = m.predict(&ds.net, &q);
            res.overall.add(&trip.route, &predicted);
            if let Some(b) = bucket {
                res.per_bucket[b].add(&trip.route, &predicted);
            }
        }
    }
    EvalSummary {
        results,
        evaluated: take,
        bucket_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_sim::CityPreset;

    fn tiny() -> Dataset {
        Dataset::generate(&CityPreset::tiny_test(), 160, 13)
    }

    #[test]
    fn examples_share_tensors_per_slot() {
        let ds = tiny();
        let sp = ds.default_split();
        let ex = build_examples(&ds, &sp.train);
        assert!(!ex.is_empty());
        // two examples in the same slot share the same Arc allocation
        let mut by_slot: std::collections::HashMap<usize, &Arc<Vec<f32>>> =
            std::collections::HashMap::new();
        for e in &ex {
            if let Some(prev) = by_slot.get(&e.slot_id) {
                assert!(Arc::ptr_eq(prev, &e.traffic));
            } else {
                by_slot.insert(e.slot_id, &e.traffic);
            }
        }
    }

    #[test]
    fn quantile_buckets_cover_all_tests() {
        let ds = tiny();
        let sp = ds.default_split();
        let buckets = quantile_buckets(&ds, &sp.test, 4);
        assert_eq!(buckets.len(), 4);
        for &i in &sp.test {
            let km = ds.net.route_length(&ds.trips[i].route) / 1000.0;
            assert!(
                distance_bucket(km, &buckets).is_some(),
                "distance {km} not covered by {buckets:?}"
            );
        }
    }

    #[test]
    fn end_to_end_suite_smoke() {
        // A miniature full pipeline: train briefly, evaluate a handful.
        let ds = tiny();
        let sp = ds.default_split();
        let train = build_examples(&ds, &sp.train);
        let cfg = SuiteConfig {
            deepst_epochs: 2,
            rnn_epochs: 2,
            max_eval: Some(12),
            ..SuiteConfig::default()
        };
        let methods = train_all_methods(&ds, &train, None, &cfg);
        assert_eq!(methods.len(), 6);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["DeepST", "DeepST-C", "CSSRNN", "RNN", "MMI", "WSP"]);
        let buckets = quantile_buckets(&ds, &sp.test, 3);
        let summary = evaluate_methods(&ds, &methods, &sp.test, &buckets, Some(12));
        assert_eq!(summary.evaluated, 12);
        // Quantile buckets cover every test trip, so nothing is dropped.
        assert_eq!(summary.bucket_dropped, 0);
        for r in &summary.results {
            assert_eq!(r.overall.count, 12);
            assert!((0.0..=1.0).contains(&r.overall.recall()));
            assert!((0.0..=1.0).contains(&r.overall.accuracy()));
        }
    }

    #[test]
    fn sub_bucket_trips_are_counted_not_lost() {
        // With the paper's fixed buckets (lowest starts at 1 km), short
        // trips fall outside every bucket: they must still score in
        // `overall` and be reported in `bucket_dropped`.
        let ds = tiny();
        let sp = ds.default_split();
        let train = build_examples(&ds, &sp.train);
        // One cheap method is enough to exercise the accounting.
        let train_routes: Vec<Route> = train.iter().map(|e| e.route.clone()).collect();
        let mmi = st_baselines::Mmi::fit(&ds.net, train_routes.iter());
        let methods: Vec<Box<dyn Predictor>> = vec![Box::new(mmi)];
        let buckets = crate::metrics::DISTANCE_BUCKETS;
        let summary = evaluate_methods(&ds, &methods, &sp.test, &buckets, Some(10));
        let short = sp
            .test
            .iter()
            .take(10)
            .filter(|&&i| {
                distance_bucket(ds.net.route_length(&ds.trips[i].route) / 1000.0, &buckets)
                    .is_none()
            })
            .count();
        assert_eq!(summary.bucket_dropped, short);
        assert_eq!(summary.results[0].overall.count, 10);
        let bucketed: usize = summary.results[0].per_bucket.iter().map(|b| b.count).sum();
        assert_eq!(bucketed + summary.bucket_dropped, summary.evaluated);
    }
}

/// Teacher-forced next-step accuracy of a DeepST model: the fraction of
/// ground-truth transitions whose true next segment is the model's argmax,
/// conditioning each step on the *true* prefix (no rollout compounding).
///
/// This is the per-step diagnostic separating "the model has not learned
/// the transitions" from "rollouts drift" (see DESIGN.md §4b); the expected
/// correct-prefix length of a greedy rollout is roughly `1/(1 − accuracy)`.
pub fn teacher_forced_accuracy(
    ds: &Dataset,
    model: &st_core::DeepSt,
    examples: &[Example],
    max_examples: usize,
) -> f64 {
    let mut ok = 0usize;
    let mut total = 0usize;
    let mut logps: Vec<f64> = Vec::new();
    for e in examples.iter().take(max_examples) {
        let c = model
            .cfg
            .use_traffic
            .then(|| model.encode_traffic(&e.traffic));
        let ctx = model.encode_context(e.dest, c);
        // One tape-free session per example; the state and log-prob buffers
        // are reused across all of its steps.
        let mut sess = model.infer_session(&ctx);
        let mut state = sess.zero_state(1);
        for (i, &slot) in e.slots.iter().enumerate() {
            sess.step_into(&[e.route[i]], &mut state, &mut logps);
            let n_valid = ds.net.next_segments(e.route[i]).len().min(logps.len());
            if n_valid < 2 {
                continue; // forced moves carry no signal
            }
            let Some(argmax) = logps[..n_valid]
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(j, _)| j)
            else {
                continue; // n_valid >= 2 checked above, but stay total
            };
            total += 1;
            if argmax == slot {
                ok += 1;
            }
        }
    }
    ok as f64 / total.max(1) as f64
}

#[cfg(test)]
mod teacher_forced_tests {
    use super::*;
    use st_sim::CityPreset;

    #[test]
    fn improves_with_training() {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 250, 21);
        let split = ds.default_split();
        let train = build_examples(&ds, &split.train);
        let test = build_examples(&ds, &split.test);
        let cfg = SuiteConfig {
            deepst_epochs: 4,
            seed: 21,
            ..SuiteConfig::default()
        };
        let untrained = st_core::DeepSt::new(deepst_config(&ds, cfg.k_proxies), 21);
        let before = teacher_forced_accuracy(&ds, &untrained, &test, 40);
        let trained = train_deepst(&ds, &train, None, &cfg, true);
        let after = teacher_forced_accuracy(&ds, &trained, &test, 40);
        assert!(
            after > before + 0.05,
            "training did not improve next-step accuracy: {before:.3} -> {after:.3}"
        );
        assert!((0.0..=1.0).contains(&after));
    }
}
