//! Table/figure formatting and JSON result output.

use std::fmt::Write as _;
use std::path::Path;

/// Render an ASCII table with a header row.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "+\n";
    out.push_str(&sep);
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "| {h:<w$} ");
    }
    line.push_str("|\n");
    out.push_str(&line);
    out.push_str(&sep);
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "| {cell:<w$} ");
        }
        line.push_str("|\n");
        out.push_str(&line);
    }
    out.push_str(&sep);
    out
}

/// Render a labeled horizontal bar chart (for "figure" reproduction in a
/// terminal): one row per series value.
pub fn format_bars(title: &str, labels: &[String], values: &[f64], max_width: usize) -> String {
    assert_eq!(labels.len(), values.len());
    let vmax = values.iter().cloned().fold(0.0, f64::max).max(1e-9);
    let lw = labels.iter().map(String::len).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (l, &v) in labels.iter().zip(values) {
        let bar = "█".repeat(((v / vmax) * max_width as f64).round() as usize);
        let _ = writeln!(out, "  {l:<lw$} {bar} {v:.3}");
    }
    out
}

/// Write a serde-serializable result to a pretty JSON file, creating parent
/// directories as needed.
pub fn write_json<T: serde::Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)?;
    std::fs::write(path, json)
}

/// [`write_json`] with the checkpoint durability discipline: serialize to a
/// tmp sibling, `fsync`, then atomically rename over the destination, so a
/// crash mid-write can never leave a truncated or interleaved result file.
/// Benchmark bins use this for everything under `results/`.
pub fn write_json_atomic<T: serde::Serialize>(
    path: impl AsRef<Path>,
    value: &T,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)?;
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Render a text heat map from row-major grid data (Fig. 5 substitute).
pub fn format_heatmap(grid: &[f64], width: usize, height: usize) -> String {
    assert_eq!(grid.len(), width * height);
    const SHADES: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    let vmax = grid.iter().cloned().fold(0.0, f64::max).max(1e-12);
    let mut out = String::with_capacity((width + 1) * height);
    // print top row last so y grows upward like a map
    for y in (0..height).rev() {
        for x in 0..width {
            let v = grid[y * width + x] / vmax;
            let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["Method", "acc"],
            &[
                vec!["DeepST".into(), "0.61".into()],
                vec!["MMI".into(), "0.28".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // all lines same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(t.contains("DeepST"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn bars_scale_to_max() {
        let b = format_bars("test", &["x".into(), "y".into()], &[1.0, 2.0], 10);
        assert!(b.contains("██████████ 2.000"));
        assert!(b.contains("█████ 1.000"));
    }

    #[test]
    fn heatmap_dimensions() {
        let h = format_heatmap(&[0.0, 1.0, 0.5, 0.25], 2, 2);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().count(), 2);
        assert!(h.contains('@'));
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("st_eval_test");
        let path = dir.join("x.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn atomic_json_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("st_eval_atomic_test");
        let path = dir.join("r.json");
        write_json_atomic(&path, &vec![1]).unwrap();
        // Overwrite must go through the tmp+rename path, not truncate.
        write_json_atomic(&path, &vec![9, 8]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![9, 8]);
        assert!(
            !dir.join("r.json.tmp").exists(),
            "tmp sibling must be renamed away"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
