//! Determinism rule family (v2): the static side of the bit-identity
//! contract.
//!
//! The serving stack promises taped ≡ infer ≡ fused ≡ int8-dequant routes,
//! bit-identical across thread counts, batch shapes, and scalar/AVX2
//! builds (DESIGN.md §12). That holds only while four invariants do:
//! no FMA contraction anywhere, Cephes-only transcendentals in numeric
//! crates, no hash-order-dependent reductions, and no wall-clock values
//! steering numeric paths. Each rule here polices one invariant over the
//! parsed token stream; see [`crate::rules::Rule`] for the catalog text.

use crate::parser::{stmt_end, stmt_start, ParsedFile};
use crate::rules::{is_bin_path, Finding, Rule};
use crate::symbols::WorkspaceIndex;

/// Run every determinism rule over one parsed file.
pub fn lint_determinism(file: &ParsedFile, index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    fma_forbidden(file, out);
    std_transcendental(file, out);
    hash_iteration_order(file, index, out);
    wallclock_in_numeric(file, out);
    float_sort_key(file, out);
}

fn finding(file: &ParsedFile, rule: Rule, tok: usize, message: String) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line: file.tokens[tok].line + 1,
        message,
    }
}

// ---------------------------------------------------------------- fma

/// `mul_add` as a word, or any identifier containing `fmadd` (the FMA
/// intrinsic family `_mm256_fmadd_ps` etc). Name-only mentions like the
/// `avx2_fma` feature probe don't match — there is no contraction in a
/// feature check.
fn fma_forbidden(file: &ParsedFile, out: &mut Vec<Finding>) {
    for (i, t) in file.tokens.iter().enumerate() {
        if file.tok_in_test(i) {
            continue;
        }
        if t.text == "mul_add" || t.text.contains("fmadd") {
            out.push(finding(
                file,
                Rule::FmaForbidden,
                i,
                format!(
                    "`{}` contracts a multiply-add into one rounding; the bit-identity \
                     contract (scalar ≡ AVX2, taped ≡ fused) requires separate mul and add",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------- std transcendentals

/// Transcendental method names whose std/libm implementations differ
/// across hosts. `sqrt` and `powi` are excluded: both are IEEE-exact.
const TRANSCENDENTALS: [&str; 19] = [
    "exp", "exp2", "exp_m1", "ln", "ln_1p", "log", "log2", "log10", "powf", "sin", "cos", "tan",
    "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh",
];

/// Crates on the numeric path, where transcendentals must come from
/// `st_tensor::mathfn` (Cephes polynomials, bit-identical everywhere).
const NUMERIC_CRATES: [&str; 5] = ["st-tensor", "st-nn", "st-core", "st-baselines", "st-serve"];

fn std_transcendental(file: &ParsedFile, out: &mut Vec<Finding>) {
    if !NUMERIC_CRATES.contains(&file.crate_name()) || file.path.ends_with("/mathfn.rs") {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if file.tok_in_test(i) || !TRANSCENDENTALS.contains(&t.text.as_str()) {
            continue;
        }
        // method call `.exp(` or qualified `f32::exp(` / `f64::exp(`
        let method = i > 0
            && file.tokens[i - 1].text == "."
            && file.tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(");
        let qualified =
            i >= 3 && (file.seq(i - 3, &["f32", ":", ":"]) || file.seq(i - 3, &["f64", ":", ":"]));
        let qualified = qualified && file.tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(");
        if method || qualified {
            out.push(finding(
                file,
                Rule::StdTranscendental,
                i,
                format!(
                    "std `{}` on the numeric path; libm results differ across hosts — \
                     use `st_tensor::mathfn` (Cephes) or waive with a reason",
                    t.text
                ),
            ));
        }
    }
}

// ------------------------------------------- hash iteration order

/// Iterator adapters that enumerate a hash collection in hash order.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
];

/// Integer sum types whose accumulation is order-independent.
const INT_TYPES: [&str; 12] = [
    "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8", "u128", "i128",
];

fn is_float_literal(text: &str) -> bool {
    let t = text.trim_end_matches("f32").trim_end_matches("f64");
    text.ends_with("f32") && text.chars().next().is_some_and(|c| c.is_ascii_digit())
        || text.ends_with("f64") && text.chars().next().is_some_and(|c| c.is_ascii_digit())
        || (t.contains('.') && t.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

/// Hash-typed names visible in one function body: parameters whose base
/// type is `HashMap`/`HashSet`, and `let` bindings whose declaring
/// statement mentions one.
fn hash_names_in_fn(file: &ParsedFile, open: usize, close: usize, fi: usize) -> Vec<String> {
    let mut names: Vec<String> = file.items.fns[fi]
        .params
        .iter()
        .filter(|p| {
            p.base_type
                .as_deref()
                .is_some_and(|t| t == "HashMap" || t == "HashSet")
        })
        .map(|p| p.name.clone())
        .collect();
    let mut i = open + 1;
    while i < close {
        if file.tokens[i].text == "let" {
            let end = stmt_end(&file.tokens, &file.matches, i);
            let mentions_hash = file.tokens[i..end]
                .iter()
                .any(|t| t.text == "HashMap" || t.text == "HashSet");
            if mentions_hash {
                let mut j = i + 1;
                if file.tokens.get(j).map(|t| t.text.as_str()) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = file.tokens.get(j).filter(|t| {
                    t.text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                }) {
                    names.push(name.text.clone());
                }
            }
            i = end;
        }
        i += 1;
    }
    names
}

/// Does the expression in `[from, to)` denote a hash collection? Either a
/// known hash-typed name, or a `self.field` / `param.field` whose field
/// type is `HashMap`/`HashSet` per the symbol index. When followed by a
/// method, only the iteration adapters count (`.len()` etc. are
/// order-independent).
fn hash_expr_root(
    file: &ParsedFile,
    index: &WorkspaceIndex,
    hash_names: &[String],
    fi: usize,
    from: usize,
    to: usize,
) -> bool {
    let toks = &file.tokens;
    let mut i = from;
    // strip leading borrows
    while i < to && (toks[i].text == "&" || toks[i].text == "mut") {
        i += 1;
    }
    let Some(head) = toks.get(i).filter(|t| t.word()) else {
        return false;
    };
    let mut is_hash = hash_names.contains(&head.text);
    let mut cursor = i + 1;
    // resolve a field access: `self.f` / `param.f`
    if !is_hash && cursor + 1 < to && toks[cursor].text == "." && toks[cursor + 1].word() {
        let field = &toks[cursor + 1].text;
        let f = &file.items.fns[fi];
        let owner = if head.text == "self" {
            f.impl_type.clone()
        } else {
            f.params
                .iter()
                .find(|p| p.name == head.text)
                .and_then(|p| p.base_type.clone())
        };
        if let Some(owner) = owner {
            if index.field(&owner, field).is_some_and(|fl| fl.is_hash) {
                is_hash = true;
                cursor += 2;
            }
        }
    }
    if !is_hash {
        return false;
    }
    // bare collection (`for x in &map`) iterates in hash order
    if cursor >= to {
        return true;
    }
    // otherwise require an iteration adapter, not `.len()` / `.get(...)`
    cursor < to - 1
        && toks[cursor].text == "."
        && HASH_ITER_METHODS.contains(&toks[cursor + 1].text.as_str())
}

/// Is binding `name` sorted anywhere in `[from, to)`? (`name.sort*(...)`)
fn sorted_later(file: &ParsedFile, name: &str, from: usize, to: usize) -> bool {
    let toks = &file.tokens;
    (from..to.min(toks.len()).saturating_sub(2)).any(|i| {
        toks[i].text == name && toks[i + 1].text == "." && toks[i + 2].text.starts_with("sort")
    })
}

fn hash_iteration_order(file: &ParsedFile, index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for fi in 0..file.items.fns.len() {
        let Some((open, close)) = file.items.fns[fi].body else {
            continue;
        };
        if file.tok_in_test(open) {
            continue;
        }
        let hash_names = hash_names_in_fn(file, open, close, fi);
        let mut i = open + 1;
        while i < close {
            // `for pat in <iterable> {`
            if toks[i].text == "for" {
                // find `in` then the body `{`, skipping groups
                let mut j = i + 1;
                let mut in_at = None;
                while j < close {
                    match toks[j].text.as_str() {
                        "(" | "[" | "{" => j = file.matches[j],
                        "in" => {
                            in_at = Some(j);
                            break;
                        }
                        ";" => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(in_at) = in_at {
                    let mut k = in_at + 1;
                    while k < close {
                        match toks[k].text.as_str() {
                            "(" | "[" => k = file.matches[k],
                            "{" => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    if k < close
                        && toks[k].text == "{"
                        && hash_expr_root(file, index, &hash_names, fi, in_at + 1, k)
                    {
                        let body_close = file.matches[k];
                        if let Some(msg) =
                            order_sensitive_loop_body(file, open, k, body_close, close)
                        {
                            out.push(finding(
                                file,
                                Rule::HashIterationOrder,
                                i,
                                format!(
                                    "hash-map iteration {msg}; hash order is randomized per \
                                     process — use BTreeMap or sort the keys first"
                                ),
                            ));
                        }
                        i = body_close;
                    }
                }
            }
            // iterator chain: `map.iter()....sum::<f32>()` etc.
            else if toks[i].word()
                && i + 2 < close
                && toks[i + 1].text == "."
                && HASH_ITER_METHODS.contains(&toks[i + 2].text.as_str())
                && hash_expr_root(file, index, &hash_names, fi, i, i + 3)
            {
                let end = stmt_end(toks, &file.matches, i);
                if let Some(msg) = order_sensitive_chain(file, i, end, close) {
                    out.push(finding(
                        file,
                        Rule::HashIterationOrder,
                        i,
                        format!(
                            "hash-map iteration {msg}; hash order is randomized per \
                             process — use BTreeMap or sort the keys first"
                        ),
                    ));
                }
                i = end;
            }
            i += 1;
        }
    }
}

/// Is `name` declared as a float in `[from, to)`? (`let [mut] name`
/// whose statement mentions a float literal or `f32` / `f64`.)
fn declared_float(file: &ParsedFile, name: &str, from: usize, to: usize) -> bool {
    let toks = &file.tokens;
    let mut i = from;
    while i < to {
        if toks[i].text == "let" {
            let j = i + 1 + usize::from(toks.get(i + 1).is_some_and(|t| t.text == "mut"));
            let end = stmt_end(toks, &file.matches, i);
            if toks.get(j).is_some_and(|t| t.text == name)
                && toks[i..end]
                    .iter()
                    .any(|t| t.text == "f32" || t.text == "f64" || is_float_literal(&t.text))
            {
                return true;
            }
            i = end;
        }
        i += 1;
    }
    false
}

/// Does a `for`-loop body over a hash collection feed float accumulation
/// or collection ordering? Returns the reason, or `None` if benign.
fn order_sensitive_loop_body(
    file: &ParsedFile,
    fn_open: usize,
    body_open: usize,
    body_close: usize,
    fn_close: usize,
) -> Option<String> {
    let toks = &file.tokens;
    let mut i = body_open + 1;
    while i < body_close {
        // `target.push(...)` — ordering-sensitive unless target is sorted
        // after the loop
        if toks[i].word()
            && file.seq(i + 1, &["."])
            && toks
                .get(i + 2)
                .is_some_and(|t| t.text == "push" || t.text == "push_str" || t.text == "extend")
        {
            let target = toks[i].text.clone();
            if !sorted_later(file, &target, body_close, fn_close) {
                return Some(format!("pushes into `{target}` (never sorted afterwards)"));
            }
        }
        // float `+=` — the accumulation statement mentions a float, or the
        // accumulator was declared as one; integer counters are
        // order-independent
        if toks[i].text == "+" && toks.get(i + 1).is_some_and(|t| t.text == "=") {
            let s = stmt_start(toks, &file.matches, i);
            let e = stmt_end(toks, &file.matches, i);
            let floaty = toks[s..e]
                .iter()
                .any(|t| t.text == "f32" || t.text == "f64" || is_float_literal(&t.text))
                || toks[s..i]
                    .iter()
                    .rev()
                    .find(|t| t.word())
                    .is_some_and(|acc| declared_float(file, &acc.text, fn_open, body_open));
            if floaty {
                return Some("accumulates floats with `+=` (rounding is order-dependent)".into());
            }
        }
        i += 1;
    }
    None
}

/// Does an iterator chain over a hash collection end in an order-sensitive
/// consumer? Returns the reason, or `None` if benign.
fn order_sensitive_chain(
    file: &ParsedFile,
    from: usize,
    stmt_end_at: usize,
    fn_close: usize,
) -> Option<String> {
    let toks = &file.tokens;
    let mut i = from;
    while i < stmt_end_at {
        match toks[i].text.as_str() {
            "sum" | "product" => {
                // `.sum::<f32>()` — integer sums are order-independent;
                // flag float turbofish only (unknown types stay quiet)
                let g = (i + 1..(i + 8).min(stmt_end_at))
                    .find(|&j| toks[j].word())
                    .map(|j| toks[j].text.as_str());
                if matches!(g, Some("f32" | "f64")) {
                    return Some(format!("feeds a float `.{}()`", toks[i].text));
                }
                if g.is_some_and(|t| INT_TYPES.contains(&t)) {
                    i += 1;
                    continue;
                }
            }
            // order-sensitive when the accumulator init is a float
            "fold" | "scan" if toks.get(i + 1).is_some_and(|t| t.text == "(") => {
                let close = file.matches[i + 1];
                if toks[i + 1..close].iter().any(|t| is_float_literal(&t.text)) {
                    return Some(format!(
                        "feeds `.{}(` with a float accumulator",
                        toks[i].text
                    ));
                }
            }
            "collect" => {
                // `.collect::<Vec<_>>()` / into a String is ordered output;
                // collecting back into a map/set is not
                let ordered = (i + 1..(i + 10).min(stmt_end_at))
                    .any(|j| matches!(toks[j].text.as_str(), "Vec" | "VecDeque" | "String"));
                if ordered {
                    // suppressed when the collected binding is sorted later
                    let s = stmt_start(toks, &file.matches, i);
                    let target = (toks[s].text == "let")
                        .then(|| {
                            let j = s + 1;
                            let j = j + usize::from(toks.get(j).is_some_and(|t| t.text == "mut"));
                            toks.get(j).filter(|t| t.word()).map(|t| t.text.clone())
                        })
                        .flatten();
                    let sorted = target
                        .as_deref()
                        .is_some_and(|t| sorted_later(file, t, stmt_end_at, fn_close));
                    if !sorted {
                        return Some("collects into an ordered container (never sorted)".into());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

// ---------------------------------------------- wall-clock taint

/// Files on the inference / decoding / training path, where wall-clock
/// reads must never steer numeric results.
fn is_timed_scope(path: &str) -> bool {
    let name = path.rsplit('/').next().unwrap_or(path);
    matches!(name, "train.rs" | "predict.rs" | "beam.rs")
        || (name.starts_with("infer") || name.starts_with("decode")) && name.ends_with(".rs")
}

fn wallclock_in_numeric(file: &ParsedFile, out: &mut Vec<Finding>) {
    if !is_timed_scope(&file.path) || is_bin_path(&file.path) {
        return;
    }
    let toks = &file.tokens;
    for fi in 0..file.items.fns.len() {
        let Some((open, close)) = file.items.fns[fi].body else {
            continue;
        };
        if file.tok_in_test(open) {
            continue;
        }
        // pass 1: taint `let` bindings whose RHS reads the clock
        let mut tainted: Vec<String> = Vec::new();
        let is_source = |file: &ParsedFile, i: usize| {
            file.seq(i, &["Instant", ":", ":", "now"])
                || file.seq(i, &["SystemTime", ":", ":", "now"])
                || file.seq(i, &["thread", ":", ":", "current"])
        };
        let mut i = open + 1;
        while i < close {
            if toks[i].text == "let" {
                // An `if let` / `while let` has no terminating `;`, so
                // `stmt_end` would skip its block and run to the end of the
                // enclosing one — swallowing unrelated later statements into
                // the RHS scan (a clock read *after* the conditional would
                // taint the pattern binder). Clamp the RHS at the `{` that
                // opens the body instead.
                let end = if matches!(toks[i - 1].text.as_str(), "if" | "while") {
                    let mut j = i;
                    loop {
                        if j >= close {
                            break close;
                        }
                        match toks[j].text.as_str() {
                            "(" | "[" if file.matches[j] > j => j = file.matches[j],
                            "{" | ";" => break j,
                            _ => {}
                        }
                        j += 1;
                    }
                } else {
                    stmt_end(toks, &file.matches, i)
                };
                let rhs_tainted = (i..end).any(|j| {
                    is_source(file, j) || (toks[j].word() && tainted.contains(&toks[j].text))
                });
                if rhs_tainted {
                    let j = i + 1 + usize::from(toks.get(i + 1).is_some_and(|t| t.text == "mut"));
                    if let Some(name) = toks.get(j).filter(|t| t.word()) {
                        tainted.push(name.text.clone());
                    }
                }
                i = end;
            }
            i += 1;
        }
        // pass 2: flag tainted values in branch conditions or arithmetic
        let mut i = open + 1;
        while i < close {
            let is_tainted_here =
                is_source(file, i) || (toks[i].word() && tainted.contains(&toks[i].text));
            if is_tainted_here {
                // condition position: between `if`/`while` and its `{`
                let s = stmt_start(toks, &file.matches, i);
                let in_cond = (s..i).any(|j| toks[j].text == "if" || toks[j].text == "while");
                // arithmetic position: the statement combines the tainted
                // value with + - * / % (pure clock reads have no operator,
                // so `let t0 = Instant::now();` stays quiet)
                let e = stmt_end(toks, &file.matches, i);
                let arith = (s..e).any(|j| {
                    matches!(toks[j].text.as_str(), "+" | "-" | "*" | "/" | "%")
                        // `->` in an embedded closure signature is not math
                        && !(toks[j].text == "-"
                            && toks.get(j + 1).is_some_and(|t| t.text == ">"))
                });
                if in_cond || arith {
                    out.push(finding(
                        file,
                        Rule::WallclockInNumeric,
                        i,
                        format!(
                            "wall-clock value `{}` {} on the infer/decode/train path — \
                             timing must not steer numeric results (use st_obs for metrics)",
                            toks[i].text,
                            if in_cond {
                                "gates a branch"
                            } else {
                                "feeds a numeric expression"
                            }
                        ),
                    ));
                    i = e;
                }
            }
            i += 1;
        }
    }
}

// ------------------------------------------------ float sort keys

/// Comparator-taking methods where a `partial_cmp` sort key is unstable
/// under NaN.
const CMP_SINKS: [&str; 8] = [
    "sort_by",
    "sort_unstable_by",
    "sort_by_cached_key",
    "min_by",
    "max_by",
    "binary_search_by",
    "cmp_by",
    "partition_point",
];

fn float_sort_key(file: &ParsedFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "partial_cmp" || file.tok_in_test(i) {
            continue;
        }
        // skip the `fn partial_cmp` declaration itself
        if i > 0 && toks[i - 1].text == "fn" {
            continue;
        }
        // method use only: `.partial_cmp(`
        if i == 0 || toks[i - 1].text != "." {
            continue;
        }
        let in_cmp_impl = file
            .innermost_fn(i)
            .is_some_and(|fi| file.items.fns[fi].name == "cmp");
        let s = stmt_start(toks, &file.matches, i);
        let in_sort_sink = (s..i).any(|j| CMP_SINKS.contains(&toks[j].text.as_str()));
        if in_cmp_impl || in_sort_sink {
            out.push(finding(
                file,
                Rule::FloatSortKey,
                i,
                format!(
                    "`partial_cmp` as a sort key {}; NaN silently reorders — use `total_cmp`",
                    if in_cmp_impl {
                        "inside an `Ord::cmp` impl"
                    } else {
                        "in a comparator closure"
                    }
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        let file = ParsedFile::parse(path, src);
        let index = WorkspaceIndex::build(std::slice::from_ref(&file));
        let mut out = Vec::new();
        lint_determinism(&file, &index, &mut out);
        out
    }

    fn rules_of(f: &[Finding]) -> Vec<Rule> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn flags_mul_add_and_fmadd_intrinsics() {
        let f = lint(
            "crates/st-tensor/src/gemm.rs",
            "fn k(a: f32, b: f32, c: f32) -> f32 { a.mul_add(b, c) }\n",
        );
        assert_eq!(rules_of(&f), vec![Rule::FmaForbidden]);
        let f = lint(
            "crates/st-tensor/src/gemm.rs",
            "fn k() { let acc = _mm256_fmadd_ps(a, b, acc); }\n",
        );
        assert!(f.iter().any(|x| x.rule == Rule::FmaForbidden), "{f:?}");
    }

    #[test]
    fn fma_feature_probe_name_is_fine() {
        // `avx2_fma` as a fn name is a capability probe, not a contraction
        let f = lint(
            "crates/st-tensor/src/dispatch.rs",
            "fn avx2_fma() -> bool { false }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_std_transcendental_in_numeric_crates_only() {
        let src = "fn f(x: f32) -> f32 { x.exp() }\n";
        assert_eq!(
            rules_of(&lint("crates/st-core/src/model.rs", src)),
            vec![Rule::StdTranscendental]
        );
        // out-of-scope crate
        assert!(lint("crates/st-roadnet/src/geo.rs", src).is_empty());
        // mathfn itself is the sanctioned home
        assert!(lint("crates/st-tensor/src/mathfn.rs", src).is_empty());
    }

    #[test]
    fn qualified_and_method_transcendentals_match_but_mathfn_calls_do_not() {
        let f = lint(
            "crates/st-nn/src/act.rs",
            "fn f(x: f32) -> f32 { f32::ln(x) + x.powf(2.0) }\n",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        // free calls through mathfn are the fix, not a finding
        let f = lint(
            "crates/st-nn/src/act.rs",
            "fn f(x: f32) -> f32 { mathfn::tanh(x) + mathfn::exp(x) }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_hash_iteration_feeding_floats_or_ordering() {
        let src = "
fn f(m: &HashMap<u32, f32>) -> f32 {
    let mut acc = 0.0f32;
    for (_k, v) in m.iter() {
        acc += *v;
    }
    acc
}
";
        let f = lint("crates/st-core/src/stats.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::HashIterationOrder]);

        let src = "
fn g(m: &HashMap<u32, f32>) -> Vec<u32> {
    let mut v = Vec::new();
    for k in m.keys() {
        v.push(*k);
    }
    v
}
";
        let f = lint("crates/st-core/src/stats.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::HashIterationOrder]);
    }

    #[test]
    fn sorted_after_loop_suppresses_hash_iteration() {
        let src = "
fn g(m: &HashMap<u32, f32>) -> Vec<u32> {
    let mut v = Vec::new();
    for k in m.keys() {
        v.push(*k);
    }
    v.sort_unstable();
    v
}
";
        assert!(lint("crates/st-core/src/stats.rs", src).is_empty());
    }

    #[test]
    fn integer_counting_over_hash_is_fine() {
        let src = "
fn g(m: &HashMap<u32, f32>) -> usize {
    let mut n = 0usize;
    for _k in m.keys() {
        n += 1;
    }
    n + m.len()
}
";
        assert!(lint("crates/st-core/src/stats.rs", src).is_empty());
    }

    #[test]
    fn float_sum_chain_over_hash_is_flagged_int_sum_is_not() {
        let src = "fn f(m: &HashMap<u32, f32>) -> f32 { m.values().sum::<f32>() }\n";
        assert_eq!(
            rules_of(&lint("crates/st-core/src/stats.rs", src)),
            vec![Rule::HashIterationOrder]
        );
        let src = "fn f(m: &HashMap<u32, usize>) -> usize { m.values().sum::<usize>() }\n";
        assert!(lint("crates/st-core/src/stats.rs", src).is_empty());
    }

    #[test]
    fn hash_field_iteration_resolves_through_the_index() {
        let src = "
struct Cache { slots: HashMap<u32, f32> }
impl Cache {
    fn total(&self) -> f32 {
        let mut acc = 0.0f32;
        for v in self.slots.values() {
            acc += v;
        }
        acc
    }
}
";
        let f = lint("crates/st-core/src/cache.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::HashIterationOrder]);
    }

    #[test]
    fn flags_wallclock_gating_and_arithmetic_in_scoped_files() {
        let src = "
fn decode_step(deadline: Instant) -> bool {
    let now = Instant::now();
    if now > deadline {
        return false;
    }
    true
}
";
        let f = lint("crates/st-core/src/decode.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::WallclockInNumeric]);

        let src = "
fn train_epoch() -> f64 {
    let t0 = Instant::now();
    let dt = t0.elapsed();
    let score = base * dt.as_secs_f64();
    score
}
";
        let f = lint("crates/st-core/src/train.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::WallclockInNumeric]);
    }

    #[test]
    fn wallclock_outside_scope_or_unused_is_fine() {
        let src = "fn serve() { let t0 = Instant::now(); observe(t0); }\n";
        // not a scoped file
        assert!(lint("crates/st-serve/src/server.rs", src).is_empty());
        // scoped file, but the value only flows to observability
        assert!(lint("crates/st-core/src/predict.rs", src).is_empty());
    }

    /// Regression: an `if let` has no terminating `;`, so the RHS taint
    /// scan used to run past the block and a clock read *later in the
    /// function* tainted the pattern binder (`Some`), flagging the
    /// unrelated conditional. The RHS now ends at the body's `{`.
    #[test]
    fn if_let_binder_is_not_tainted_by_later_clock_reads() {
        let src = "
fn train_loop() {
    if let Some(path) = cfg.resume_from.clone() {
        restore(path);
    }
    let mut n = 0usize;
    while n < cfg.epochs {
        let t0 = Instant::now();
        let seconds = t0.elapsed().as_secs_f64();
        observe(seconds);
        n += 1;
    }
}
";
        let f = lint("crates/st-core/src/train.rs", src);
        assert!(f.is_empty(), "{f:?}");
        // Positive control: a clock read *inside* the `if let` head still
        // taints the binder and gates the branch.
        let src = "
fn train_loop() {
    while let Some(left) = deadline.checked_sub(Instant::now()) {
        step(left);
    }
}
";
        let f = lint("crates/st-core/src/train.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::WallclockInNumeric], "{f:?}");
    }

    #[test]
    fn flags_partial_cmp_in_ord_impl_and_sort_closure() {
        let src = "
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}
";
        let f = lint("crates/st-roadnet/src/shortest.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::FloatSortKey]);

        let src = "fn f(v: &mut Vec<f32>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let f = lint("crates/st-eval/src/rank.rs", src);
        assert!(f.iter().any(|x| x.rule == Rule::FloatSortKey), "{f:?}");
    }

    #[test]
    fn total_cmp_and_partial_cmp_decl_are_fine() {
        let src = "
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.cost.total_cmp(&self.cost)
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
";
        assert!(lint("crates/st-roadnet/src/shortest.rs", src).is_empty());
    }
}
