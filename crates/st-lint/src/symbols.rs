//! Cross-file symbol index over [`crate::parser::ParsedFile`]s.
//!
//! The workspace rules need three kinds of lookups that no single file can
//! answer:
//!
//! - *field resolution*: what is the base type of `Shared.queue`, and is it
//!   a lock / a hash collection? Receiver chains like `self.shared.queue`
//!   resolve one field at a time through this table.
//! - *function resolution*: which functions does the bare name `p99_ms`
//!   refer to? (Bare-name resolution is deliberately approximate — good
//!   enough for a linter, no trait solving.)
//! - *static resolution*: which crates define a lock-typed `static A`, so
//!   `a::A` at a call site and `A` inside crate `a` unify to one lock node.
//!
//! Everything is keyed through `BTreeMap` so index iteration order — and
//! therefore report order — is deterministic, the same property the linter
//! polices elsewhere.

use crate::parser::{Field, ParsedFile};
use std::collections::BTreeMap;

/// Location of one function item: (file index, fn index within that file).
pub type FnRef = (usize, usize);

/// The workspace-wide symbol index.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// `(type name, field name)` → field info.
    fields: BTreeMap<(String, String), Field>,
    /// Bare function name → every item with that name.
    fns: BTreeMap<String, Vec<FnRef>>,
    /// `(method name, impl type)` → items, for resolving `recv.method()`
    /// when the receiver's base type is known.
    methods: BTreeMap<(String, String), Vec<FnRef>>,
    /// Lock-typed `static` name → in-code crate idents defining it
    /// (`st-core` appears as `st_core`).
    lock_statics: BTreeMap<String, Vec<String>>,
}

/// A crate name as it appears in source paths (`st-core`) converted to its
/// in-code identifier (`st_core`).
pub fn crate_ident(crate_name: &str) -> String {
    crate_name.replace('-', "_")
}

impl WorkspaceIndex {
    /// Build the index over every parsed file.
    pub fn build(files: &[ParsedFile]) -> WorkspaceIndex {
        let mut idx = WorkspaceIndex::default();
        for (fi, file) in files.iter().enumerate() {
            let krate = crate_ident(file.crate_name());
            for s in &file.items.structs {
                for f in &s.fields {
                    idx.fields
                        .entry((s.name.clone(), f.name.clone()))
                        .or_insert_with(|| f.clone());
                }
            }
            for (ni, f) in file.items.fns.iter().enumerate() {
                idx.fns.entry(f.name.clone()).or_default().push((fi, ni));
                if let Some(ty) = &f.impl_type {
                    idx.methods
                        .entry((f.name.clone(), ty.clone()))
                        .or_default()
                        .push((fi, ni));
                }
            }
            for st in &file.items.statics {
                let crates = idx.lock_statics.entry(st.name.clone()).or_default();
                if !crates.contains(&krate) {
                    crates.push(krate.clone());
                }
            }
        }
        idx
    }

    /// Field info for `ty.field`, if the struct is known.
    pub fn field(&self, ty: &str, field: &str) -> Option<&Field> {
        self.fields.get(&(ty.to_string(), field.to_string()))
    }

    /// Every function item named `name` (any impl or free).
    pub fn fns_named(&self, name: &str) -> &[FnRef] {
        self.fns.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Function items named `name` in `impl ty` blocks.
    pub fn methods_of(&self, name: &str, ty: &str) -> &[FnRef] {
        self.methods
            .get(&(name.to_string(), ty.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Is `name` a lock-typed static, and in which crates (in-code idents)?
    pub fn lock_static_crates(&self, name: &str) -> &[String] {
        self.lock_statics
            .get(name)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> Vec<ParsedFile> {
        vec![
            ParsedFile::parse(
                "crates/st-serve/src/server.rs",
                "
struct Shared { queue: Mutex<VecDeque<Job>>, latencies: Mutex<VecDeque<f64>> }
struct Server { shared: Arc<Shared> }
impl Server { fn admit(&self) {} }
fn free_helper() {}
",
            ),
            ParsedFile::parse(
                "crates/st-core/src/reg.rs",
                "pub static REG: Mutex<u32> = Mutex::new(0);\n",
            ),
        ]
    }

    #[test]
    fn resolves_fields_and_lock_flags() {
        let files = files();
        let idx = WorkspaceIndex::build(&files);
        assert!(idx.field("Shared", "queue").unwrap().is_lock);
        assert_eq!(
            idx.field("Server", "shared").unwrap().base_type.as_deref(),
            Some("Shared")
        );
        assert!(idx.field("Shared", "missing").is_none());
    }

    #[test]
    fn resolves_fns_and_methods() {
        let files = files();
        let idx = WorkspaceIndex::build(&files);
        assert_eq!(idx.fns_named("admit").len(), 1);
        assert_eq!(idx.methods_of("admit", "Server").len(), 1);
        assert!(idx.methods_of("admit", "Shared").is_empty());
        assert_eq!(idx.fns_named("free_helper").len(), 1);
    }

    #[test]
    fn resolves_lock_statics_by_crate_ident() {
        let files = files();
        let idx = WorkspaceIndex::build(&files);
        assert_eq!(idx.lock_static_crates("REG"), ["st_core".to_string()]);
        assert!(idx.lock_static_crates("NOPE").is_empty());
    }
}
