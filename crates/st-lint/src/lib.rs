//! st-lint: the workspace's source-level static-analysis gate.
//!
//! Complements the autodiff graph analyzer in `st_tensor::analyze` (which
//! checks *model graphs* before training) by checking the *source tree*
//! before merge. Four rule classes — see [`rules::Rule`]:
//!
//! - `panic-in-lib`: no `.unwrap()` / `.expect(` / `panic!` in non-test
//!   library code; binaries and `#[cfg(test)]` regions are exempt.
//! - `missing-safety`: every `unsafe` token needs a `// SAFETY:` comment (or
//!   `# Safety` doc section) within the preceding lines.
//! - `float-eq`: no `==` / `!=` against float-typed operands in library code.
//! - `missing-docs`: public items of `st-tensor` and `st-nn` carry doc
//!   comments.
//!
//! Findings can be waived two ways:
//! - inline, with `// st-lint: allow(rule-name)` on the finding line or the
//!   line directly above;
//! - via the allowlist file `st-lint.allow` at the workspace root, one entry
//!   per line: `rule | path-suffix | line-substring-or-* | reason`.
//!
//! Stale allowlist entries (ones that matched nothing) are reported as
//! warnings so the file shrinks as the code is cleaned up.

pub mod lexer;
pub mod rules;

pub use lexer::{scan, SourceLine};
pub use rules::{lint_file, Finding, Rule};

use std::path::{Path, PathBuf};

/// One parsed `st-lint.allow` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule this entry waives.
    pub rule: Rule,
    /// Path suffix the finding's file must end with.
    pub path_suffix: String,
    /// Substring the finding's source line must contain, or `*` for any.
    pub needle: String,
    /// Human justification (required, but not machine-checked).
    pub reason: String,
    /// 1-based line in the allowlist file, for stale-entry reporting.
    pub defined_at: usize,
}

/// The parsed allowlist, tracking which entries actually fired.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parse the `rule | path-suffix | substring-or-* | reason` format.
    /// Blank lines and `#` comments are skipped; malformed lines are
    /// returned as errors so typos fail loudly instead of silently waiving
    /// nothing.
    pub fn parse(src: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
            if parts.len() != 4 {
                return Err(format!(
                    "st-lint.allow:{}: expected `rule | path-suffix | substring-or-* | reason`",
                    idx + 1
                ));
            }
            let Some(rule) = Rule::from_name(parts[0]) else {
                return Err(format!(
                    "st-lint.allow:{}: unknown rule '{}'",
                    idx + 1,
                    parts[0]
                ));
            };
            if parts[3].is_empty() {
                return Err(format!("st-lint.allow:{}: a reason is required", idx + 1));
            }
            entries.push(AllowEntry {
                rule,
                path_suffix: parts[1].to_string(),
                needle: parts[2].to_string(),
                reason: parts[3].to_string(),
                defined_at: idx + 1,
            });
        }
        let used = vec![false; entries.len()];
        Ok(Allowlist { entries, used })
    }

    /// Does any entry waive this finding? `line_text` is the raw source line
    /// the finding points at. Marks the matching entry as used.
    pub fn waives(&mut self, finding: &Finding, line_text: &str) -> bool {
        let mut hit = false;
        for (e, used) in self.entries.iter().zip(self.used.iter_mut()) {
            if e.rule == finding.rule
                && finding.path.ends_with(&e.path_suffix)
                && (e.needle == "*" || line_text.contains(&e.needle))
            {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched a finding — candidates for deletion.
    pub fn stale(&self) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .zip(self.used.iter())
            .filter(|(_, used)| !**used)
            .map(|(e, _)| e)
            .collect()
    }
}

/// Does the comment text carry an inline waiver for `rule`?
fn inline_waiver(comment: &str, rule: Rule) -> bool {
    let mut from = 0usize;
    while let Some(rel) = comment[from..].find("st-lint: allow(") {
        let at = from + rel + "st-lint: allow(".len();
        let inner = match comment[at..].find(')') {
            Some(end) => &comment[at..at + end],
            None => &comment[at..],
        };
        if inner.split(',').any(|r| r.trim() == rule.name()) {
            return true;
        }
        from = at;
    }
    false
}

/// Lint one file: scan, run all rules, then drop findings waived inline or by
/// the allowlist. `path` must be workspace-relative with `/` separators.
pub fn lint_source(path: &str, src: &str, allowlist: &mut Allowlist) -> Vec<Finding> {
    let lines = scan(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    lint_file(path, &lines)
        .into_iter()
        .filter(|f| {
            let idx = f.line - 1;
            let here = lines.get(idx).map(|l| l.comment.as_str()).unwrap_or("");
            let above = idx
                .checked_sub(1)
                .and_then(|j| lines.get(j))
                .map(|l| l.comment.as_str())
                .unwrap_or("");
            if inline_waiver(here, f.rule) || inline_waiver(above, f.rule) {
                return false;
            }
            let raw = raw_lines.get(idx).copied().unwrap_or("");
            !allowlist.waives(f, raw)
        })
        .collect()
}

/// Collect every `.rs` file under `crates/*/src` and `src/` of the workspace
/// root, sorted, as (workspace-relative path, absolute path) pairs. The
/// vendored crates under `vendor/` are third-party and out of scope.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut abs = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut abs)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut abs)?;
    }
    abs.sort();
    Ok(abs
        .into_iter()
        .filter_map(|p| {
            let rel = p
                .strip_prefix(root)
                .ok()?
                .to_string_lossy()
                .replace('\\', "/");
            Some((rel, p))
        })
        .collect())
}

/// Lint the whole workspace rooted at `root`. Returns the surviving findings
/// plus the allowlist (for stale-entry reporting). Reads `st-lint.allow` at
/// the root if present.
pub fn lint_workspace(root: &Path) -> Result<(Vec<Finding>, Allowlist), String> {
    let allow_path = root.join("st-lint.allow");
    let mut allowlist = if allow_path.is_file() {
        let src = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        Allowlist::parse(&src)?
    } else {
        Allowlist::default()
    };
    let files = collect_rs_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut findings = Vec::new();
    for (rel, abs) in &files {
        let src =
            std::fs::read_to_string(abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        findings.extend(lint_source(rel, &src, &mut allowlist));
    }
    Ok((findings, allowlist))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_waiver_suppresses_exact_rule_only() {
        let mut allow = Allowlist::default();
        let src = "fn f() { x.unwrap(); } // st-lint: allow(panic-in-lib)\n";
        assert!(lint_source("crates/a/src/l.rs", src, &mut allow).is_empty());
        // waiver for a different rule does not suppress
        let src = "fn f() { x.unwrap(); } // st-lint: allow(float-eq)\n";
        assert_eq!(lint_source("crates/a/src/l.rs", src, &mut allow).len(), 1);
    }

    #[test]
    fn inline_waiver_on_line_above_applies() {
        let mut allow = Allowlist::default();
        let src =
            "// st-lint: allow(panic-in-lib) invariant: map is non-empty\nfn f() { x.unwrap(); }\n";
        assert!(lint_source("crates/a/src/l.rs", src, &mut allow).is_empty());
    }

    #[test]
    fn allowlist_waives_and_tracks_usage() {
        let mut allow = Allowlist::parse(
            "# comment\n\
             panic-in-lib | crates/a/src/l.rs | x.unwrap | vetted: x is checked above\n\
             float-eq | never.rs | * | stale entry\n",
        )
        .unwrap();
        let src = "fn f() { x.unwrap(); }\n";
        assert!(lint_source("crates/a/src/l.rs", src, &mut allow).is_empty());
        let stale = allow.stale();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path_suffix, "never.rs");
    }

    #[test]
    fn allowlist_substring_must_match_line() {
        let mut allow =
            Allowlist::parse("panic-in-lib | l.rs | y.unwrap | only waives y\n").unwrap();
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_source("crates/a/src/l.rs", src, &mut allow).len(), 1);
    }

    #[test]
    fn malformed_allowlist_is_an_error() {
        assert!(Allowlist::parse("panic-in-lib | too | few\n").is_err());
        assert!(Allowlist::parse("no-such-rule | a | * | r\n").is_err());
        assert!(Allowlist::parse("panic-in-lib | a | * |\n").is_err());
    }
}
