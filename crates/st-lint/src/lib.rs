//! st-lint: the workspace's source-level static-analysis gate.
//!
//! Complements the autodiff graph analyzer in `st_tensor::analyze` (which
//! checks *model graphs* before training) by checking the *source tree*
//! before merge. Two generations of rules — see [`rules::Rule`] for the
//! full catalog:
//!
//! - the v1 line-oriented rules (`panic-in-lib`, `missing-safety`,
//!   `float-eq`, `missing-docs`, `tape-in-infer`,
//!   `unpacked-gemm-in-infer`), which pattern-match one comment-stripped
//!   line at a time;
//! - the v2 analyzer rules (DESIGN.md §14), which run over a hand-rolled
//!   item parser ([`parser`]) and a cross-file symbol index ([`symbols`]):
//!   the determinism family ([`determinism`]: `fma-forbidden`,
//!   `std-transcendental`, `hash-iteration-order`, `wallclock-in-numeric`,
//!   `float-sort-key`) and the concurrency family ([`concurrency`]:
//!   `lock-order-cycle`, `lock-unwrap`, `relaxed-atomic-gate`,
//!   `unbounded-channel`).
//!
//! Findings can be waived two ways:
//! - inline, with `// st-lint: allow(rule-name)` on the finding line or the
//!   line directly above;
//! - via the allowlist file `st-lint.allow` at the workspace root, one entry
//!   per line: `rule | path-suffix | line-substring-or-* | reason`.
//!
//! Allowlist entries are validated against the workspace: a `path-suffix`
//! matching more than one file is an ambiguous waiver and rejected, and
//! stale entries (ones that matched nothing) make the lint run fail unless
//! `--allow-stale` is passed, so the file shrinks as the code is cleaned
//! up.

pub mod concurrency;
pub mod determinism;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;

pub use lexer::{scan, SourceLine};
pub use rules::{lint_file, Finding, Rule};

use std::path::{Path, PathBuf};

/// One parsed `st-lint.allow` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule this entry waives.
    pub rule: Rule,
    /// Path suffix the finding's file must end with.
    pub path_suffix: String,
    /// Substring the finding's source line must contain, or `*` for any.
    pub needle: String,
    /// Human justification (required, but not machine-checked).
    pub reason: String,
    /// 1-based line in the allowlist file, for stale-entry reporting.
    pub defined_at: usize,
}

/// The parsed allowlist, tracking which entries actually fired.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parse the `rule | path-suffix | substring-or-* | reason` format.
    /// Blank lines and `#` comments are skipped; malformed lines are
    /// returned as errors so typos fail loudly instead of silently waiving
    /// nothing.
    pub fn parse(src: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
            if parts.len() != 4 {
                return Err(format!(
                    "st-lint.allow:{}: expected `rule | path-suffix | substring-or-* | reason`",
                    idx + 1
                ));
            }
            let Some(rule) = Rule::from_name(parts[0]) else {
                return Err(format!(
                    "st-lint.allow:{}: unknown rule '{}'",
                    idx + 1,
                    parts[0]
                ));
            };
            if parts[3].is_empty() {
                return Err(format!("st-lint.allow:{}: a reason is required", idx + 1));
            }
            entries.push(AllowEntry {
                rule,
                path_suffix: parts[1].to_string(),
                needle: parts[2].to_string(),
                reason: parts[3].to_string(),
                defined_at: idx + 1,
            });
        }
        let used = vec![false; entries.len()];
        Ok(Allowlist { entries, used })
    }

    /// Does any entry waive this finding? `line_text` is the raw source line
    /// the finding points at (surrounding whitespace is ignored). Marks the
    /// matching entry as used.
    pub fn waives(&mut self, finding: &Finding, line_text: &str) -> bool {
        let line_text = line_text.trim();
        let mut hit = false;
        for (e, used) in self.entries.iter().zip(self.used.iter_mut()) {
            if e.rule == finding.rule
                && finding.path.ends_with(&e.path_suffix)
                && (e.needle == "*" || line_text.contains(&e.needle))
            {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    /// Reject entries whose `path-suffix` matches more than one workspace
    /// file: such a waiver is ambiguous — it silently covers files its
    /// author never vetted. `paths` are the workspace-relative files about
    /// to be linted.
    pub fn validate_unambiguous(&self, paths: &[&str]) -> Result<(), String> {
        for e in &self.entries {
            let hits: Vec<&&str> = paths
                .iter()
                .filter(|p| p.ends_with(&e.path_suffix))
                .collect();
            if hits.len() > 1 {
                return Err(format!(
                    "st-lint.allow:{}: path suffix '{}' is ambiguous — it matches {} files \
                     ({}); qualify it to exactly one",
                    e.defined_at,
                    e.path_suffix,
                    hits.len(),
                    hits.iter()
                        .take(3)
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                ));
            }
        }
        Ok(())
    }

    /// All parsed entries, in file order.
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    /// Entries that never matched a finding — candidates for deletion.
    pub fn stale(&self) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .zip(self.used.iter())
            .filter(|(_, used)| !**used)
            .map(|(e, _)| e)
            .collect()
    }
}

/// Does the comment text carry an inline waiver for `rule`?
fn inline_waiver(comment: &str, rule: Rule) -> bool {
    let mut from = 0usize;
    while let Some(rel) = comment[from..].find("st-lint: allow(") {
        let at = from + rel + "st-lint: allow(".len();
        let inner = match comment[at..].find(')') {
            Some(end) => &comment[at..at + end],
            None => &comment[at..],
        };
        if inner.split(',').any(|r| r.trim() == rule.name()) {
            return true;
        }
        from = at;
    }
    false
}

/// Lint a set of sources as one workspace: parse every file, build the
/// cross-file symbol index, run the line-oriented v1 rules plus the v2
/// determinism and concurrency families, then drop findings waived inline
/// or by the allowlist. Paths must be workspace-relative with `/`
/// separators. Fails on an ambiguous allowlist `path-suffix`.
pub fn lint_sources(
    sources: &[(String, String)],
    allowlist: &mut Allowlist,
) -> Result<Vec<Finding>, String> {
    let paths: Vec<&str> = sources.iter().map(|(p, _)| p.as_str()).collect();
    allowlist.validate_unambiguous(&paths)?;

    let files: Vec<parser::ParsedFile> = sources
        .iter()
        .map(|(p, s)| parser::ParsedFile::parse(p, s))
        .collect();
    let index = symbols::WorkspaceIndex::build(&files);

    let mut findings = Vec::new();
    for file in &files {
        findings.extend(lint_file(&file.path, &file.lines));
        determinism::lint_determinism(file, &index, &mut findings);
    }
    concurrency::lint_concurrency(&files, &index, &mut findings);
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.name()).cmp(&(b.path.as_str(), b.line, b.rule.name()))
    });

    let by_path: std::collections::BTreeMap<&str, &parser::ParsedFile> =
        files.iter().map(|f| (f.path.as_str(), f)).collect();
    Ok(findings
        .into_iter()
        .filter(|f| {
            let Some(file) = by_path.get(f.path.as_str()) else {
                return true;
            };
            let idx = f.line - 1;
            let comment_at = |j: usize| file.lines.get(j).map(|l| l.comment.as_str()).unwrap_or("");
            if inline_waiver(comment_at(idx), f.rule)
                || idx
                    .checked_sub(1)
                    .is_some_and(|j| inline_waiver(comment_at(j), f.rule))
            {
                return false;
            }
            let raw = file.raw_lines.get(idx).map(String::as_str).unwrap_or("");
            !allowlist.waives(f, raw)
        })
        .collect())
}

/// Lint one file in isolation (no cross-file lock graph beyond the file
/// itself). Convenience wrapper over [`lint_sources`] used by planted-defect
/// tests; `path` must be workspace-relative with `/` separators.
pub fn lint_source(path: &str, src: &str, allowlist: &mut Allowlist) -> Vec<Finding> {
    lint_sources(&[(path.to_string(), src.to_string())], allowlist).unwrap_or_default()
}

/// Collect every `.rs` file under `crates/*/src` and `src/` of the workspace
/// root, sorted, as (workspace-relative path, absolute path) pairs. The
/// vendored crates under `vendor/` are third-party and out of scope.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut abs = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut abs)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut abs)?;
    }
    abs.sort();
    Ok(abs
        .into_iter()
        .filter_map(|p| {
            let rel = p
                .strip_prefix(root)
                .ok()?
                .to_string_lossy()
                .replace('\\', "/");
            Some((rel, p))
        })
        .collect())
}

/// Lint the whole workspace rooted at `root`. Returns the surviving findings
/// plus the allowlist (for stale-entry reporting). Reads `st-lint.allow` at
/// the root if present.
pub fn lint_workspace(root: &Path) -> Result<(Vec<Finding>, Allowlist), String> {
    let allow_path = root.join("st-lint.allow");
    let mut allowlist = if allow_path.is_file() {
        let src = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        Allowlist::parse(&src)?
    } else {
        Allowlist::default()
    };
    let files = collect_rs_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut sources = Vec::with_capacity(files.len());
    for (rel, abs) in files {
        let src =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        sources.push((rel, src));
    }
    let findings = lint_sources(&sources, &mut allowlist)?;
    Ok((findings, allowlist))
}

/// Build the machine-readable report for `--json` / CI artifacts. The
/// shape is pinned by `scripts/st-lint-findings.schema.json` and the
/// `json_output` test.
pub fn json_report(findings: &[Finding], allowlist: &Allowlist) -> serde_json::Value {
    use serde_json::{json, Map, Value};
    let mut flist = Vec::with_capacity(findings.len());
    for f in findings {
        let mut o = Map::new();
        o.insert("rule".into(), Value::Str(f.rule.name().into()));
        o.insert("path".into(), Value::Str(f.path.clone()));
        o.insert("line".into(), Value::Num(f.line as f64));
        o.insert("message".into(), Value::Str(f.message.clone()));
        flist.push(Value::Obj(o));
    }
    let stale = allowlist.stale();
    let mut slist = Vec::with_capacity(stale.len());
    for e in &stale {
        let mut o = Map::new();
        o.insert("allow_line".into(), Value::Num(e.defined_at as f64));
        o.insert("rule".into(), Value::Str(e.rule.name().into()));
        o.insert("path_suffix".into(), Value::Str(e.path_suffix.clone()));
        o.insert("needle".into(), Value::Str(e.needle.clone()));
        slist.push(Value::Obj(o));
    }
    let mut root = Map::new();
    root.insert("schema".into(), Value::Str("st-lint-findings".into()));
    root.insert("version".into(), Value::Num(2.0));
    root.insert("findings".into(), Value::Arr(flist));
    root.insert("stale_allow_entries".into(), Value::Arr(slist));
    root.insert(
        "counts".into(),
        json!({
            "findings": findings.len() as f64,
            "stale_allow_entries": stale.len() as f64
        }),
    );
    Value::Obj(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_waiver_suppresses_exact_rule_only() {
        let mut allow = Allowlist::default();
        let src = "fn f() { x.unwrap(); } // st-lint: allow(panic-in-lib)\n";
        assert!(lint_source("crates/a/src/l.rs", src, &mut allow).is_empty());
        // waiver for a different rule does not suppress
        let src = "fn f() { x.unwrap(); } // st-lint: allow(float-eq)\n";
        assert_eq!(lint_source("crates/a/src/l.rs", src, &mut allow).len(), 1);
    }

    #[test]
    fn inline_waiver_on_line_above_applies() {
        let mut allow = Allowlist::default();
        let src =
            "// st-lint: allow(panic-in-lib) invariant: map is non-empty\nfn f() { x.unwrap(); }\n";
        assert!(lint_source("crates/a/src/l.rs", src, &mut allow).is_empty());
    }

    #[test]
    fn allowlist_waives_and_tracks_usage() {
        let mut allow = Allowlist::parse(
            "# comment\n\
             panic-in-lib | crates/a/src/l.rs | x.unwrap | vetted: x is checked above\n\
             float-eq | never.rs | * | stale entry\n",
        )
        .unwrap();
        let src = "fn f() { x.unwrap(); }\n";
        assert!(lint_source("crates/a/src/l.rs", src, &mut allow).is_empty());
        let stale = allow.stale();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path_suffix, "never.rs");
    }

    #[test]
    fn allowlist_substring_must_match_line() {
        let mut allow =
            Allowlist::parse("panic-in-lib | l.rs | y.unwrap | only waives y\n").unwrap();
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_source("crates/a/src/l.rs", src, &mut allow).len(), 1);
    }

    #[test]
    fn malformed_allowlist_is_an_error() {
        assert!(Allowlist::parse("panic-in-lib | too | few\n").is_err());
        assert!(Allowlist::parse("no-such-rule | a | * | r\n").is_err());
        assert!(Allowlist::parse("panic-in-lib | a | * |\n").is_err());
    }
}
