//! The lint rule catalog (see DESIGN.md §9 for the rationale and the
//! allowlist format).
//!
//! Every rule is a pure function over the scanned lines of one file plus its
//! repo-relative path; findings come back as [`Finding`]s. Waivers are
//! applied afterwards by [`crate::apply_waivers`].

use crate::lexer::{test_regions, SourceLine};

/// The rule classes st-lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` in non-test library code.
    PanicInLib,
    /// An `unsafe` keyword without a `SAFETY:` (or `# Safety`) comment in the
    /// preceding lines.
    MissingSafety,
    /// `==` / `!=` where an operand is lexically a float.
    FloatEq,
    /// A public item of `st-tensor` / `st-nn` without a doc comment.
    MissingDocs,
    /// `Tape::new(` / `Binder::new(` on the inference path (an `infer*` /
    /// `*_infer` function, or a `src/infer*.rs` file). The inference
    /// runtime's contract is that decoding never allocates autodiff tapes;
    /// this catches taped ops creeping back in.
    TapeInInfer,
    /// `infer::matmul(` on the inference path (same scope as
    /// [`Rule::TapeInInfer`]). That entry point re-packs its weight operand
    /// on every call; per-step inference code must use a pre-packed
    /// `PackedWeights` (`infer::matmul_packed`) or the quantized kernel
    /// instead. Deliberate unpacked baselines are waived.
    UnpackedGemmInInfer,
    /// `mul_add` / `_mm*_fmadd_*` anywhere in library code. The bit-identity
    /// contract (taped ≡ infer ≡ fused, scalar ≡ AVX2) holds only because no
    /// kernel ever contracts a multiply-add into one rounding.
    FmaForbidden,
    /// A std/libm transcendental method call (`.exp()`, `.tanh()`,
    /// `.powf()`, …) in a numeric crate outside `st-tensor::mathfn`. Cephes
    /// polynomials in `mathfn` are the only transcendentals that are
    /// bit-identical across hosts and libm versions.
    StdTranscendental,
    /// Iteration over a `HashMap` / `HashSet` whose loop body feeds float
    /// accumulation or collection ordering. Hash iteration order is
    /// randomized per process; use `BTreeMap` or sort the keys first.
    HashIterationOrder,
    /// An `Instant::now` / `SystemTime::now` / thread-id value flowing into
    /// a branch condition or numeric expression inside an infer / decode /
    /// train module — wall-clock must never steer a numeric result.
    WallclockInNumeric,
    /// A `partial_cmp`-based comparator in a sort key or `Ord` impl.
    /// `partial_cmp(..).unwrap_or(Equal)` silently reorders on NaN; float
    /// sort keys must use `total_cmp`.
    FloatSortKey,
    /// A lock-order cycle across the workspace lock-acquisition graph — two
    /// code paths acquire the same locks in opposite orders (potential
    /// deadlock). Reported once per cycle, with a witness edge per leg.
    LockOrderCycle,
    /// `.lock().unwrap()` (or `.read()` / `.write()` + `unwrap` / `expect`).
    /// A worker panic while holding the lock would then poison every other
    /// thread; use the poison-recovery idiom
    /// `.unwrap_or_else(|e| e.into_inner())`.
    LockUnwrap,
    /// An `Ordering::Relaxed` atomic load used as a branch condition.
    /// Relaxed loads order nothing: data published by the writer may not be
    /// visible when the gate opens; use `Acquire` (paired with `Release`).
    RelaxedAtomicGate,
    /// Unbounded `std::sync::mpsc::channel()` in library code. The serving
    /// stack's contract is bounded queues + explicit shedding; unbounded
    /// channels hide overload until memory dies.
    UnboundedChannel,
    /// A `Param::new(` whose shape arguments mention a vocabulary-scale
    /// quantity (`num_segments`, `vocab`, …) or an integer literal ≥ 4096.
    /// Tables that grow with the road network must go through the blocked
    /// layout (`BlockedParam` / `Embedding::with_block_rows`), which shards
    /// rows and materializes gradients lazily; a dense `Param` at that
    /// scale allocates full-table gradient and optimizer state on the
    /// first touched row. `st-tensor/src/block.rs` is the sanctioned
    /// construction site and is exempt.
    DenseParamOverThreshold,
}

impl Rule {
    /// The kebab-case name used in waivers and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PanicInLib => "panic-in-lib",
            Rule::MissingSafety => "missing-safety",
            Rule::FloatEq => "float-eq",
            Rule::MissingDocs => "missing-docs",
            Rule::TapeInInfer => "tape-in-infer",
            Rule::UnpackedGemmInInfer => "unpacked-gemm-in-infer",
            Rule::FmaForbidden => "fma-forbidden",
            Rule::StdTranscendental => "std-transcendental",
            Rule::HashIterationOrder => "hash-iteration-order",
            Rule::WallclockInNumeric => "wallclock-in-numeric",
            Rule::FloatSortKey => "float-sort-key",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::LockUnwrap => "lock-unwrap",
            Rule::RelaxedAtomicGate => "relaxed-atomic-gate",
            Rule::UnboundedChannel => "unbounded-channel",
            Rule::DenseParamOverThreshold => "dense-param-over-threshold",
        }
    }

    /// Parse a rule name as written in waivers.
    pub fn from_name(s: &str) -> Option<Rule> {
        match s {
            "panic-in-lib" => Some(Rule::PanicInLib),
            "missing-safety" => Some(Rule::MissingSafety),
            "float-eq" => Some(Rule::FloatEq),
            "missing-docs" => Some(Rule::MissingDocs),
            "tape-in-infer" => Some(Rule::TapeInInfer),
            "unpacked-gemm-in-infer" => Some(Rule::UnpackedGemmInInfer),
            "fma-forbidden" => Some(Rule::FmaForbidden),
            "std-transcendental" => Some(Rule::StdTranscendental),
            "hash-iteration-order" => Some(Rule::HashIterationOrder),
            "wallclock-in-numeric" => Some(Rule::WallclockInNumeric),
            "float-sort-key" => Some(Rule::FloatSortKey),
            "lock-order-cycle" => Some(Rule::LockOrderCycle),
            "lock-unwrap" => Some(Rule::LockUnwrap),
            "relaxed-atomic-gate" => Some(Rule::RelaxedAtomicGate),
            "unbounded-channel" => Some(Rule::UnboundedChannel),
            "dense-param-over-threshold" => Some(Rule::DenseParamOverThreshold),
            _ => None,
        }
    }

    /// All rules, in report order.
    pub fn all() -> [Rule; 16] {
        [
            Rule::PanicInLib,
            Rule::MissingSafety,
            Rule::FloatEq,
            Rule::MissingDocs,
            Rule::TapeInInfer,
            Rule::UnpackedGemmInInfer,
            Rule::FmaForbidden,
            Rule::StdTranscendental,
            Rule::HashIterationOrder,
            Rule::WallclockInNumeric,
            Rule::FloatSortKey,
            Rule::LockOrderCycle,
            Rule::LockUnwrap,
            Rule::RelaxedAtomicGate,
            Rule::UnboundedChannel,
            Rule::DenseParamOverThreshold,
        ]
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Repo-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Is this path exempt from [`Rule::PanicInLib`]? Binaries and entry points
/// keep their contextual `expect`-style error reporting (PR 2 behavior);
/// test and bench sources are out of scope for every rule.
pub(crate) fn is_bin_path(path: &str) -> bool {
    path.contains("/bin/") || path.ends_with("/main.rs") || path == "main.rs"
}

/// Does `code` contain `needle` starting at a non-identifier boundary?
/// (Guards `unsafe` against matching inside `unsafe_foo`.)
fn contains_word(code: &str, needle: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + needle.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

/// Run every applicable rule over one scanned file.
pub fn lint_file(path: &str, lines: &[SourceLine]) -> Vec<Finding> {
    let in_test = test_regions(lines);
    let mut out = Vec::new();
    panic_in_lib(path, lines, &in_test, &mut out);
    missing_safety(path, lines, &in_test, &mut out);
    float_eq(path, lines, &in_test, &mut out);
    missing_docs(path, lines, &in_test, &mut out);
    tape_in_infer(path, lines, &in_test, &mut out);
    unpacked_gemm_in_infer(path, lines, &in_test, &mut out);
    dense_param_over_threshold(path, lines, &in_test, &mut out);
    out
}

fn panic_in_lib(path: &str, lines: &[SourceLine], in_test: &[bool], out: &mut Vec<Finding>) {
    if is_bin_path(path) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        for pat in [".unwrap()", ".expect(", "panic!"] {
            let hit = if pat == "panic!" {
                contains_word(&line.code, "panic!").is_some()
            } else {
                line.code.contains(pat)
            };
            if hit {
                out.push(Finding {
                    rule: Rule::PanicInLib,
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!("`{pat}` in library code (convert to a typed error or waive)"),
                });
            }
        }
    }
}

/// How many lines above an `unsafe` token the `SAFETY:` comment may sit.
/// Covers a multi-line SAFETY paragraph plus attributes between the comment
/// and the token.
const SAFETY_WINDOW: usize = 15;

fn missing_safety(path: &str, lines: &[SourceLine], in_test: &[bool], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || contains_word(&line.code, "unsafe").is_none() {
            continue;
        }
        let lo = idx.saturating_sub(SAFETY_WINDOW);
        let documented = lines[lo..=idx]
            .iter()
            .any(|l| l.comment.contains("SAFETY:") || l.comment.contains("# Safety"));
        if !documented {
            out.push(Finding {
                rule: Rule::MissingSafety,
                path: path.to_string(),
                line: idx + 1,
                message: "`unsafe` without a `// SAFETY:` comment in the preceding lines".into(),
            });
        }
    }
}

/// Lexical float detection: a token is float-like if it is a float literal
/// (`1.0`, `0.5e-3`, `1f32`) or a float constant path (`f32::EPSILON`).
fn is_float_token(tok: &str) -> bool {
    let tok = tok.trim_start_matches(['-', '(', '*', '&']);
    if tok.starts_with("f32::") || tok.starts_with("f64::") {
        return true;
    }
    let Some(first) = tok.chars().next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    // a float literal has no brackets/braces — `v[i + 1].text` must not
    // resolve to the pseudo-token `1].text`
    if tok.contains([']', '[', '}', '{', ')', '(']) {
        return false;
    }
    // digits [. digits] [e[-]digits] [f32|f64] — require a '.', exponent, or
    // float suffix so integers don't match.
    let t = tok;
    let has_dot = t.contains('.') && !t.contains("..");
    let has_suffix = t.ends_with("f32") || t.ends_with("f64");
    let has_exp = t.contains(['e', 'E'])
        && t.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' || c == '+');
    has_dot || has_suffix || (has_exp && t.len() > 1)
}

fn float_eq(path: &str, lines: &[SourceLine], in_test: &[bool], out: &mut Vec<Finding>) {
    if is_bin_path(path) {
        // bins compare parsed CLI floats for convenience; library code is
        // where exact float equality hides bugs
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let code = &line.code;
        for op in ["==", "!="] {
            let mut from = 0usize;
            while let Some(rel) = code[from..].find(op) {
                let at = from + rel;
                from = at + op.len();
                // skip `<=`, `>=`, `=>`… only exact `==`/`!=` (not `===`)
                if code[..at].ends_with(['=', '<', '>', '!']) || code[from..].starts_with('=') {
                    continue;
                }
                let lhs = code[..at]
                    .trim_end()
                    .rsplit(|c: char| {
                        c.is_whitespace() || matches!(c, '(' | ',' | '{' | '[' | '&' | '|')
                    })
                    .next()
                    .unwrap_or("");
                let rhs = code[from..]
                    .trim_start()
                    .split(|c: char| {
                        c.is_whitespace() || matches!(c, ')' | ',' | '}' | ']' | ';' | '&' | '|')
                    })
                    .next()
                    .unwrap_or("");
                if is_float_token(lhs) || is_float_token(rhs) {
                    out.push(Finding {
                        rule: Rule::FloatEq,
                        path: path.to_string(),
                        line: idx + 1,
                        message: format!(
                            "float equality `{} {} {}` (use an epsilon or total_cmp)",
                            lhs, op, rhs
                        ),
                    });
                }
            }
        }
    }
}

/// Item keywords whose `pub` form must carry a doc comment.
const DOC_ITEMS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union",
];

/// Crates whose public API is held to `missing_docs`.
fn wants_docs(path: &str) -> bool {
    path.starts_with("crates/st-tensor/src/") || path.starts_with("crates/st-nn/src/")
}

fn missing_docs(path: &str, lines: &[SourceLine], in_test: &[bool], out: &mut Vec<Finding>) {
    if !wants_docs(path) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let code = line.code.trim_start();
        let Some(rest) = code.strip_prefix("pub ") else {
            continue;
        };
        // `pub(crate)` etc. are not public API
        let item = rest.split_whitespace().next().unwrap_or("");
        let item = item.strip_prefix("unsafe").unwrap_or(item);
        let rest2 = rest.strip_prefix("unsafe ").unwrap_or(rest);
        let kw = rest2.split_whitespace().next().unwrap_or(item);
        if !DOC_ITEMS.contains(&kw) {
            continue;
        }
        // Walk upwards over attributes to the nearest comment or other code.
        let mut j = idx;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let above = &lines[j];
            let c = above.code.trim();
            if c.starts_with("#[") || c.ends_with(']') && c.starts_with('#') {
                continue; // attribute between doc and item
            }
            if c.is_empty() {
                let cm = above.comment.trim_start();
                if cm.starts_with("///") || cm.starts_with("/**") || cm.starts_with("//!") {
                    documented = true;
                } else if !cm.is_empty() {
                    // plain comment: keep looking upward? No — a plain
                    // comment directly above is not a doc comment.
                    documented = false;
                }
                break;
            }
            break; // other code directly above: undocumented
        }
        if !documented {
            out.push(Finding {
                rule: Rule::MissingDocs,
                path: path.to_string(),
                line: idx + 1,
                message: format!("public `{kw}` without a doc comment"),
            });
        }
    }
}

/// Is `name` an inference-path function name? (`infer`, `infer_*`,
/// `*_infer` — the naming convention of the tape-free runtime.)
fn is_infer_fn_name(name: &str) -> bool {
    name == "infer" || name.starts_with("infer_") || name.ends_with("_infer")
}

/// Is this file part of the inference runtime (e.g. `src/infer.rs`,
/// `src/infer_kernels.rs`)? Everything in it is held to the no-tape rule.
fn is_infer_file(path: &str) -> bool {
    path.rsplit('/')
        .next()
        .is_some_and(|f| f.starts_with("infer") && f.ends_with(".rs"))
        && path.contains("/src/")
}

/// The function name declared on `code`, if it declares one.
fn declared_fn_name(code: &str) -> Option<&str> {
    let at = contains_word(code, "fn")?;
    let rest = code[at + 2..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

fn tape_in_infer(path: &str, lines: &[SourceLine], in_test: &[bool], out: &mut Vec<Finding>) {
    let whole_file = is_infer_file(path);
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let Some(pat) = ["Tape::new(", "Binder::new("]
            .into_iter()
            .find(|p| line.code.contains(p))
        else {
            continue;
        };
        // Attribute the allocation to the nearest enclosing-or-preceding
        // `fn` declaration (a lexical approximation of "reachable from").
        let on_infer_path = whole_file
            || lines[..=idx]
                .iter()
                .rev()
                .find_map(|l| declared_fn_name(&l.code))
                .is_some_and(is_infer_fn_name);
        if on_infer_path {
            out.push(Finding {
                rule: Rule::TapeInInfer,
                path: path.to_string(),
                line: idx + 1,
                message: format!(
                    "`{pat}` on the inference path (tape-free contract; \
                     use ScratchArena kernels or waive)",
                    pat = pat.trim_end_matches('(')
                ),
            });
        }
    }
}

fn unpacked_gemm_in_infer(
    path: &str,
    lines: &[SourceLine],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    let whole_file = is_infer_file(path);
    for (idx, line) in lines.iter().enumerate() {
        // `infer::matmul(` matches only the unpacked entry point — the `(`
        // excludes `infer::matmul_packed` / `infer::matmul_quantized`.
        if in_test[idx] || !line.code.contains("infer::matmul(") {
            continue;
        }
        let on_infer_path = whole_file
            || lines[..=idx]
                .iter()
                .rev()
                .find_map(|l| declared_fn_name(&l.code))
                .is_some_and(is_infer_fn_name);
        if on_infer_path {
            out.push(Finding {
                rule: Rule::UnpackedGemmInInfer,
                path: path.to_string(),
                line: idx + 1,
                message: "`infer::matmul` re-packs its weight on every call; per-step \
                          inference must use a pre-packed `infer::matmul_packed` (or waive \
                          a deliberate unpacked baseline)"
                    .into(),
            });
        }
    }
}

/// Dense-table threshold: a literal this large in a `Param::new` shape is a
/// vocabulary-scale allocation. 4096 is the default embedding block size —
/// anything bigger than one block should be blocked.
const DENSE_PARAM_THRESHOLD: u64 = 4096;

/// How many lines after `Param::new(` the shape arguments may span.
const DENSE_PARAM_WINDOW: usize = 5;

/// Identifiers that lexically mark a network-sized dimension.
const SCALE_IDENTS: [&str; 6] = [
    "num_segments",
    "n_segments",
    "vocab",
    "vocab_size",
    "num_nodes",
    "table_rows",
];

/// Does this code contain an integer literal ≥ [`DENSE_PARAM_THRESHOLD`]?
/// Underscore separators are stripped; float literals don't count.
fn big_int_literal(code: &str) -> Option<u64> {
    let mut chars = code.char_indices().peekable();
    while let Some((at, c)) = chars.next() {
        if !c.is_ascii_digit() {
            continue;
        }
        // Skip digits inside identifiers (`f32`, `b2`) and float literals.
        if at > 0
            && code[..at]
                .chars()
                .next_back()
                .is_some_and(|p| p.is_alphanumeric() || p == '_' || p == '.')
        {
            continue;
        }
        let mut lit = String::from(c);
        while let Some(&(_, n)) = chars.peek() {
            if n.is_ascii_digit() || n == '_' {
                lit.extend(chars.next().map(|(_, ch)| ch).filter(|&ch| ch != '_'));
            } else {
                break;
            }
        }
        if chars.peek().is_some_and(|&(_, n)| n == '.') {
            continue; // float literal
        }
        if let Ok(v) = lit.parse::<u64>() {
            if v >= DENSE_PARAM_THRESHOLD {
                return Some(v);
            }
        }
    }
    None
}

fn dense_param_over_threshold(
    path: &str,
    lines: &[SourceLine],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    // The blocked layout itself is the sanctioned construction site.
    if path.ends_with("st-tensor/src/block.rs") {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || !line.code.contains("Param::new(") {
            continue;
        }
        let hi = (idx + DENSE_PARAM_WINDOW).min(lines.len() - 1);
        let reason = lines[idx..=hi].iter().find_map(|l| {
            SCALE_IDENTS
                .iter()
                .find(|id| contains_word(&l.code, id).is_some())
                .map(|id| format!("network-sized dimension `{id}`"))
                .or_else(|| big_int_literal(&l.code).map(|v| format!("literal {v} rows")))
        });
        if let Some(reason) = reason {
            out.push(Finding {
                rule: Rule::DenseParamOverThreshold,
                path: path.to_string(),
                line: idx + 1,
                message: format!(
                    "dense `Param::new` sized by {reason}: tables that grow with the \
                     network must use the blocked layout (`BlockedParam` / \
                     `Embedding::with_block_rows`) for lazy per-shard gradients"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_file(path, &scan(src))
    }

    fn rules_of(f: &[Finding]) -> Vec<Rule> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn flags_unwrap_in_lib_but_not_tests_or_bins() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let f = lint("crates/st-core/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::PanicInLib]);
        assert_eq!(f[0].line, 1);
        assert!(lint("crates/st-bench/src/bin/t.rs", src).is_empty());
        assert!(lint("src/main.rs", src).is_empty());
    }

    #[test]
    fn flags_expect_and_panic_not_lookalikes() {
        let f = lint(
            "crates/a/src/l.rs",
            "fn f() { a.expect(\"m\"); panic!(\"x\"); }\n",
        );
        assert_eq!(f.len(), 2);
        let f = lint(
            "crates/a/src/l.rs",
            "fn f() { a.expect_err(1); a.unwrap_or(2); catch_panic!(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    /// Planted defects for `dense-param-over-threshold`: a table sized by a
    /// vocab-scale identifier (shape on a later line) and one sized by a
    /// big literal each fire exactly once; a small dense param between them
    /// stays clean.
    #[test]
    fn flags_dense_params_sized_by_scale_ident_or_big_literal() {
        let src = "fn f(vocab: usize) {\n\
                   \x20let t = Param::new(\n\
                   \x20 \"m.table\",\n\
                   \x20 init::randn(&[vocab, 64], 0.1, rng),\n\
                   \x20);\n\
                   }\n\
                   fn g() {\n\
                   \x20let w = Param::new(\"m.w\", init::xavier(64, 32, rng));\n\
                   }\n\
                   \n\
                   \n\
                   \n\
                   \n\
                   fn h() {\n\
                   \x20let big = Param::new(\"m.big\", Array::zeros(&[8_192, 4]));\n\
                   }\n";
        let f = lint("crates/st-core/src/model.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![Rule::DenseParamOverThreshold, Rule::DenseParamOverThreshold],
            "{f:?}"
        );
        assert_eq!((f[0].line, f[1].line), (2, 15));
        // The blocked layout's own constructor is the sanctioned site.
        assert!(lint("crates/st-tensor/src/block.rs", src).is_empty());
        // Test regions are out of scope, as everywhere.
        let test_src = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint("crates/st-core/src/model.rs", &test_src).is_empty());
    }

    /// Boundary and lookalike behavior of the literal detector: 4096 is the
    /// threshold (inclusive), floats and digit-bearing identifiers are not
    /// literals.
    #[test]
    fn dense_param_literal_boundaries() {
        let fire = "fn f() { let t = Param::new(\"t\", Array::zeros(&[4096, 8])); }\n";
        assert_eq!(lint("crates/a/src/l.rs", fire).len(), 1);
        let clean = "fn f() { let t = Param::new(\"t\", Array::zeros(&[4095, 8])); }\n";
        assert!(lint("crates/a/src/l.rs", clean).is_empty());
        let lookalikes =
            "fn f() { let t = Param::new(\"t\", Array::full(&[8, 8], 65536.0) * x9999); }\n";
        assert!(lint("crates/a/src/l.rs", lookalikes).is_empty());
    }

    #[test]
    fn unwrap_in_comment_or_string_is_ignored() {
        let f = lint(
            "crates/a/src/l.rs",
            "// call .unwrap() if you dare\nlet s = \"panic!\";\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_undocumented_unsafe() {
        let f = lint("crates/a/src/l.rs", "fn f() { unsafe { g(); } }\n");
        assert_eq!(rules_of(&f), vec![Rule::MissingSafety]);
    }

    #[test]
    fn safety_comment_satisfies_unsafe() {
        let src = "// SAFETY: g has no preconditions here.\nfn f() { unsafe { g(); } }\n";
        assert!(lint("crates/a/src/l.rs", src).is_empty());
        let src = "/// # Safety\n/// caller checks cap.\npub unsafe fn f() { g(); }\n";
        let f = lint("crates/a/src/l.rs", src);
        assert!(!f.iter().any(|x| x.rule == Rule::MissingSafety), "{f:?}");
    }

    #[test]
    fn flags_float_equality_only() {
        let f = lint("crates/a/src/l.rs", "if x == 0.0 { }\n");
        assert_eq!(rules_of(&f), vec![Rule::FloatEq]);
        let f = lint("crates/a/src/l.rs", "if x != 1e-5 { }\n");
        assert_eq!(rules_of(&f), vec![Rule::FloatEq]);
        let f = lint("crates/a/src/l.rs", "if n == 0 { } if s == \"x\" { }\n");
        assert!(f.is_empty(), "{f:?}");
        let f = lint("crates/a/src/l.rs", "if x <= 0.5 { } let y = 1.0; a => b\n");
        assert!(f.is_empty(), "{f:?}");
        let f = lint("crates/a/src/l.rs", "if f32::EPSILON == eps { }\n");
        assert_eq!(rules_of(&f), vec![Rule::FloatEq]);
    }

    #[test]
    fn flags_missing_docs_only_in_st_tensor_and_st_nn() {
        let src = "pub fn undocumented() {}\n";
        assert_eq!(
            rules_of(&lint("crates/st-tensor/src/x.rs", src)),
            vec![Rule::MissingDocs]
        );
        assert_eq!(
            rules_of(&lint("crates/st-nn/src/x.rs", src)),
            vec![Rule::MissingDocs]
        );
        assert!(lint("crates/st-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_comment_and_attributes_satisfy_missing_docs() {
        let src = "/// Documented.\n#[inline]\npub fn f() {}\n";
        assert!(lint("crates/st-tensor/src/x.rs", src).is_empty());
        let src = "/// Documented.\npub struct S;\n";
        assert!(lint("crates/st-tensor/src/x.rs", src).is_empty());
        // pub(crate) needs no docs
        let src = "pub(crate) fn g() {}\n";
        assert!(lint("crates/st-tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_tape_in_infer_named_fn() {
        let src = "fn infer_step(&self) {\n let t = Tape::new();\n}\n";
        let f = lint("crates/st-core/src/predict.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::TapeInInfer]);
        assert_eq!(f[0].line, 2);
        let src = "fn gru_infer(&self) {\n let b = Binder::new(&t);\n}\n";
        assert_eq!(
            rules_of(&lint("crates/st-nn/src/gru.rs", src)),
            vec![Rule::TapeInInfer]
        );
    }

    #[test]
    fn flags_any_tape_in_infer_file() {
        let src = "fn helper() {\n let t = Tape::new();\n}\n";
        let f = lint("crates/st-tensor/src/infer.rs", src);
        assert_eq!(rules_of(&f), vec![Rule::TapeInInfer]);
    }

    #[test]
    fn taped_fn_outside_infer_path_is_fine() {
        let src =
            "fn step_state_taped(&self) {\n let t = Tape::new();\n let b = Binder::new(&t);\n}\n";
        assert!(lint("crates/st-core/src/predict.rs", src).is_empty());
        // tests are always out of scope
        let src = "fn infer_x() {}\n#[cfg(test)]\nmod tests {\n fn infer_t() { let t = Tape::new(); }\n}\n";
        assert!(lint("crates/st-core/src/predict.rs", src).is_empty());
    }

    #[test]
    fn flags_unpacked_gemm_in_infer_fn() {
        let src = "fn infer_step(&self) {\n let g = infer::matmul(arena, h, &w.value());\n}\n";
        let f = lint("crates/st-nn/src/gru.rs", src);
        assert!(
            f.iter().any(|x| x.rule == Rule::UnpackedGemmInInfer),
            "{f:?}"
        );
        assert_eq!(
            f.iter()
                .find(|x| x.rule == Rule::UnpackedGemmInInfer)
                .unwrap()
                .line,
            2
        );
    }

    #[test]
    fn packed_and_quantized_gemms_are_fine() {
        let src = "fn infer_step(&self) {\n let g = infer::matmul_packed(arena, h, &w);\n \
                   let q = infer::matmul_quantized(arena, h, &qm);\n}\n";
        let f = lint("crates/st-core/src/predict.rs", src);
        assert!(
            !f.iter().any(|x| x.rule == Rule::UnpackedGemmInInfer),
            "{f:?}"
        );
    }

    #[test]
    fn unpacked_gemm_outside_infer_path_is_fine() {
        let src = "fn decoder(&self) {\n let d = infer::matmul(arena, x, &beta.value());\n}\n";
        let f = lint("crates/st-baselines/src/rnn.rs", src);
        assert!(
            !f.iter().any(|x| x.rule == Rule::UnpackedGemmInInfer),
            "{f:?}"
        );
        // tests are always out of scope
        let src = "#[cfg(test)]\nmod tests {\n fn infer_t() { infer::matmul(a, b, c); }\n}\n";
        assert!(lint("crates/st-core/src/predict.rs", src).is_empty());
    }

    #[test]
    fn plain_comment_is_not_a_doc_comment() {
        let src = "// not a doc comment\npub fn f() {}\n";
        assert_eq!(
            rules_of(&lint("crates/st-tensor/src/x.rs", src)),
            vec![Rule::MissingDocs]
        );
    }
}
