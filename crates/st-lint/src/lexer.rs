//! A minimal Rust source scanner.
//!
//! The linter's rules are line-oriented, but a naive line scan would trip
//! over `"// not a comment"` strings, `'a'` vs `'static`, and nested block
//! comments. This scanner walks the source once, classifying every character
//! as *code*, *comment*, or *literal*, and emits one [`SourceLine`] per input
//! line: the code text with string/char literal contents blanked out, and the
//! comment text separately. Rules then pattern-match on the code text without
//! false positives from comments or literals, and inspect the comment text
//! for `SAFETY:` markers and `st-lint: allow(...)` waivers.
//!
//! The full external-crate ecosystem (`syn` etc.) is unavailable offline, so
//! this is deliberately a lexer, not a parser: it understands exactly the
//! token classes the rules need and nothing more.

/// One input line, split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct SourceLine {
    /// Code text with comments removed and literal contents replaced by
    /// `""` / `' '`. Column positions are NOT preserved.
    pub code: String,
    /// Concatenated comment text on this line, including the `//` / `/*`
    /// markers. Block comments spanning lines contribute to each line.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comment with nesting depth.
    BlockComment(u32),
}

/// Scan `src` into per-line code/comment splits.
pub fn scan(src: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = SourceLine::default();
    let mut state = State::Code;
    let mut i = 0usize;

    // Consume the rest of a normal (escaped) string/char literal starting
    // after the opening delimiter; returns the index just past the closing
    // delimiter (or end of input).
    fn skip_escaped(chars: &[char], mut i: usize, delim: char) -> usize {
        while i < chars.len() {
            match chars[i] {
                '\\' => i += 2,
                c if c == delim => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    cur.comment.push_str("*/");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    cur.comment.push_str("/*");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Code => {
                match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        cur.comment.push_str("//");
                        i += 2;
                        state = State::LineComment;
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        cur.comment.push_str("/*");
                        i += 2;
                        state = State::BlockComment(1);
                    }
                    '"' => {
                        cur.code.push_str("\"\"");
                        i = skip_escaped(&chars, i + 1, '"');
                    }
                    '\'' => {
                        // Char literal or lifetime? `'\...'` and `'x'` are
                        // chars; `'ident` (no closing quote right after one
                        // char) is a lifetime and stays code.
                        if chars.get(i + 1) == Some(&'\\') {
                            cur.code.push_str("' '");
                            i = skip_escaped(&chars, i + 1, '\'');
                        } else if chars.get(i + 2) == Some(&'\'') {
                            cur.code.push_str("' '");
                            i += 3;
                        } else {
                            cur.code.push('\'');
                            i += 1;
                        }
                    }
                    // Raw / byte / C strings: [b|c]r#*" ... "#* and b"..."
                    'r' | 'b' | 'c'
                        if is_literal_prefix(&chars, i) && !prev_is_ident(&chars, i) =>
                    {
                        let (next_i, blanked) = skip_prefixed_string(&chars, i);
                        cur.code.push_str(&blanked);
                        i = next_i;
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Is the `r`/`b`/`c` at `i` the start of a raw/byte/C string literal?
fn is_literal_prefix(chars: &[char], i: usize) -> bool {
    let mut j = i;
    // optional second prefix letter (br"", rb is not valid but harmless)
    if matches!(chars.get(j), Some('b' | 'c')) && matches!(chars.get(j + 1), Some('r')) {
        j += 1;
    }
    match chars.get(j) {
        Some('r') => {
            let mut k = j + 1;
            while chars.get(k) == Some(&'#') {
                k += 1;
            }
            chars.get(k) == Some(&'"')
        }
        Some('b' | 'c') => chars.get(j + 1) == Some(&'"'),
        _ => false,
    }
}

/// Is the character before `i` part of an identifier (so `r`/`b` is just the
/// end of a name like `var` or `sub`, not a literal prefix)?
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Skip a raw/byte/C string starting at `i` (which [`is_literal_prefix`] has
/// already validated); returns (index past the literal, blanked replacement).
fn skip_prefixed_string(chars: &[char], start: usize) -> (usize, String) {
    let mut i = start;
    let mut raw = false;
    // At most two prefix letters ([bc]?r or b/c) before the quote/hashes.
    while let Some('b' | 'c' | 'r') = chars.get(i) {
        raw |= chars[i] == 'r';
        i += 1;
        if matches!(chars.get(i), Some('"' | '#')) {
            break;
        }
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    i += 1; // opening quote
    if !raw {
        // plain b"..." / c"...": escapes are allowed
        while i < chars.len() {
            match chars[i] {
                '\\' => i += 2,
                '"' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        return (i, "\"\"".to_string());
    }
    // raw string: ends at `"` followed by exactly `hashes` #'s
    while i < chars.len() {
        if chars[i] == '"' {
            let mut k = 0usize;
            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return (i + 1 + hashes, "\"\"".to_string());
            }
        }
        i += 1;
    }
    (i, "\"\"".to_string())
}

/// Line ranges (0-based, inclusive) covered by `#[cfg(test)]` items: from the
/// attribute line through the matching close brace of the item it gates.
pub fn test_regions(lines: &[SourceLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut idx = 0usize;
    while idx < lines.len() {
        if lines[idx].code.contains("#[cfg(test") {
            let start = idx;
            // find the opening brace of the gated item
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = idx;
            while j < lines.len() {
                for ch in lines[j].code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            let end = j.min(lines.len() - 1);
            for flag in in_test.iter_mut().take(end + 1).skip(start) {
                *flag = true;
            }
            idx = end + 1;
        } else {
            idx += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_line_comments() {
        let l = scan("let x = 1; // unwrap() here is comment\n");
        assert_eq!(l.len(), 1);
        assert!(l[0].code.contains("let x = 1;"));
        assert!(!l[0].code.contains("unwrap"));
        assert!(l[0].comment.contains("unwrap() here"));
    }

    #[test]
    fn blanks_string_contents() {
        let l = scan("let s = \"call .unwrap() // not code\"; s.len();\n");
        assert!(!l[0].code.contains("unwrap"));
        assert!(!l[0].code.contains("not code"));
        assert!(l[0].code.contains("s.len()"));
        assert!(l[0].comment.is_empty());
    }

    #[test]
    fn handles_escaped_quotes() {
        let l = scan(r#"let s = "a\"b.unwrap()"; x();"#);
        assert!(!l[0].code.contains("unwrap"));
        assert!(l[0].code.contains("x()"));
    }

    #[test]
    fn nested_block_comments() {
        let l = scan("a(); /* outer /* inner */ still comment */ b();\n");
        assert!(l[0].code.contains("a()"));
        assert!(l[0].code.contains("b()"));
        assert!(l[0].comment.contains("inner"));
        assert!(!l[0].code.contains("still"));
    }

    #[test]
    fn block_comment_spans_lines() {
        let l = scan("a(); /* one\ntwo */ b();\n");
        assert_eq!(l.len(), 2);
        assert!(l[0].comment.contains("one"));
        assert!(l[1].comment.contains("two"));
        assert!(l[1].code.contains("b()"));
    }

    #[test]
    fn lifetimes_are_code_chars_are_blanked() {
        let l = scan("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }\n");
        assert!(l[0].code.contains("<'a>"));
        assert!(l[0].code.contains("&'a str"));
        assert!(!l[0].code.contains('x') || !l[0].code.contains("'x'"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = scan("let s = r#\"has \"quotes\" and .unwrap()\"#; t();\n");
        assert!(!l[0].code.contains("unwrap"));
        assert!(l[0].code.contains("t()"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let l = scan("let var = binder\"\";\n"); // pathological but code
        assert!(l[0].code.contains("var"));
        let l = scan("let x = ptr::read(p);\n");
        assert!(l[0].code.contains("ptr::read"));
    }

    #[test]
    fn cfg_test_region_is_brace_matched() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let lines = scan(src);
        let mask = test_regions(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }
}
