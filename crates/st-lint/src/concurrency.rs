//! Concurrency rule family (v2): lock discipline over the whole workspace.
//!
//! The headline rule builds a workspace-wide *lock-acquisition graph*:
//! every `Mutex::lock` / `RwLock::write` site is resolved to a lock
//! identity (struct field via the symbol index, lock-typed static, or a
//! crate-qualified receiver text as fallback), guard lifetimes are
//! approximated from the surrounding statement (`let`-bound guards live to
//! the end of the enclosing block or an explicit `drop(guard)`; temporaries
//! die at the statement's `;`), and an edge `A → B` is recorded whenever
//! `B` is acquired — directly or through a one-level callee — while `A` is
//! held. A cycle in that graph is a potential deadlock: two code paths can
//! each hold one lock of the cycle while waiting on the next.
//!
//! Passthrough wrappers (a function whose only acquisition is of its own
//! parameter, like st-serve's `lock_anyway`) are expanded at their call
//! sites, so the poison-recovery idiom does not hide lock order.
//!
//! Shared `RwLock::read` guards are deliberately not graph nodes: read-read
//! order cannot deadlock on its own, and the workspace's read guards
//! (parameter snapshots) would drown the graph in harmless edges.
//!
//! Three pattern rules ride along: `lock-unwrap` (poison-recovery idiom
//! required), `relaxed-atomic-gate`, and `unbounded-channel` — see
//! [`crate::rules::Rule`].

use crate::parser::{enclosing_block_end, stmt_end, stmt_start, ParsedFile};
use crate::rules::{is_bin_path, Finding, Rule};
use crate::symbols::{crate_ident, WorkspaceIndex};
use std::collections::{BTreeMap, BTreeSet};

/// Run the per-file pattern rules plus the workspace lock-order analysis.
pub fn lint_concurrency(files: &[ParsedFile], index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    for file in files {
        lock_unwrap(file, out);
        relaxed_atomic_gate(file, out);
        unbounded_channel(file, out);
    }
    lock_order_cycles(files, index, out);
}

fn finding(file: &ParsedFile, rule: Rule, tok: usize, message: String) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line: file.tokens[tok].line + 1,
        message,
    }
}

// -------------------------------------------------- pattern rules

/// `.lock().unwrap()` (and `.read()` / `.write()` variants, incl.
/// `.expect`): a panic in any holder poisons every other thread. The
/// workspace idiom is `.unwrap_or_else(|e| e.into_inner())`.
fn lock_unwrap(file: &ParsedFile, out: &mut Vec<Finding>) {
    if is_bin_path(&file.path) {
        return;
    }
    for i in 0..file.tokens.len() {
        if file.tok_in_test(i) {
            continue;
        }
        let acquire = ["lock", "read", "write"]
            .iter()
            .any(|m| file.seq(i, &[".", m, "(", ")", "."]));
        if !acquire {
            continue;
        }
        let nxt = file.tokens.get(i + 5).map(|t| t.text.as_str());
        if matches!(nxt, Some("unwrap" | "expect")) {
            out.push(finding(
                file,
                Rule::LockUnwrap,
                i + 5,
                format!(
                    "`.{}().{}` panics on poison and cascades the failure; use \
                     `.unwrap_or_else(|e| e.into_inner())` to recover the guard",
                    file.tokens[i + 1].text,
                    nxt.unwrap_or("unwrap")
                ),
            ));
        }
    }
}

/// An `Ordering::Relaxed` load gating a branch: the load orders nothing,
/// so data published before the corresponding store may not be visible.
fn relaxed_atomic_gate(file: &ParsedFile, out: &mut Vec<Finding>) {
    if is_bin_path(&file.path) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.tok_in_test(i) || !matches!(toks[i].text.as_str(), "if" | "while") {
            continue;
        }
        // condition = tokens up to the block `{`, skipping nested groups
        let mut j = i + 1;
        let mut cond_end = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => j = file.matches[j],
                "{" => {
                    cond_end = Some(j);
                    break;
                }
                ";" => break,
                _ => {}
            }
            j += 1;
        }
        let Some(cond_end) = cond_end else { continue };
        let has_load = (i + 1..cond_end).any(|k| {
            toks[k].text == "load" && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
        });
        let has_relaxed = (i + 1..cond_end).any(|k| toks[k].text == "Relaxed");
        if has_load && has_relaxed {
            out.push(finding(
                file,
                Rule::RelaxedAtomicGate,
                i,
                "`Ordering::Relaxed` load gates this branch; if the branch consumes data \
                 published by the storing thread, use `Acquire` (paired with `Release`)"
                    .into(),
            ));
        }
    }
}

/// Unbounded `mpsc::channel()` in library code — the serving contract is
/// bounded queues with explicit shedding.
fn unbounded_channel(file: &ParsedFile, out: &mut Vec<Finding>) {
    if is_bin_path(&file.path) {
        return;
    }
    for i in 0..file.tokens.len() {
        if !file.tok_in_test(i) && file.seq(i, &["mpsc", ":", ":", "channel", "("]) {
            out.push(finding(
                file,
                Rule::UnboundedChannel,
                i + 3,
                "unbounded `mpsc::channel()` in library code hides overload until memory \
                 dies; use `sync_channel` with a bound (or waive a vetted protocol bound)"
                    .into(),
            ));
        }
    }
}

// ---------------------------------------------- lock-order graph

/// One exclusive lock acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    /// Resolved lock identity.
    lock: String,
    /// Token index of the acquiring `.` (or call ident for passthrough).
    tok: usize,
    /// Token index where the guard provably dies.
    end: usize,
    /// 1-based source line.
    line: usize,
}

/// A bare-name call site inside a function body.
#[derive(Debug, Clone)]
struct Call {
    name: String,
    tok: usize,
    line: usize,
}

/// Per-function lock summary.
#[derive(Debug, Default, Clone)]
struct FnLocks {
    acqs: Vec<Acq>,
    calls: Vec<Call>,
    /// `Some(param)` when this fn's only acquisitions are of its own
    /// parameter — a passthrough wrapper, expanded at call sites.
    passthrough: Option<String>,
}

/// Receiver chain ending at token `end`, as dot-separated components
/// walking backwards: `self.shared.queue` → `["self", "shared", "queue"]`,
/// `a::A` → `["a::A"]`, `results[i]` → `["results[_]"]`.
fn receiver_chain(file: &ParsedFile, end: usize) -> Vec<String> {
    let toks = &file.tokens;
    let m = &file.matches;
    let mut comps: Vec<String> = Vec::new();
    let mut suffix = String::new();
    let mut j = end as i64;
    while j >= 0 {
        let ju = j as usize;
        match toks[ju].text.as_str() {
            ")" if m[ju] < ju => {
                suffix = format!("(){suffix}");
                j = m[ju] as i64 - 1;
            }
            "]" if m[ju] < ju => {
                suffix = format!("[_]{suffix}");
                j = m[ju] as i64 - 1;
            }
            _ if toks[ju].word() => {
                let mut comp = format!("{}{}", toks[ju].text, suffix);
                suffix.clear();
                // merge path qualifiers backwards: `a :: B` → `a::B`
                while j >= 3
                    && toks[(j - 1) as usize].text == ":"
                    && toks[(j - 2) as usize].text == ":"
                    && toks[(j - 3) as usize].word()
                {
                    comp = format!("{}::{}", toks[(j - 3) as usize].text, comp);
                    j -= 3;
                }
                comps.push(comp);
                if j >= 2 && toks[(j - 1) as usize].text == "." {
                    j -= 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    comps.reverse();
    comps
}

/// Resolve a receiver chain to a lock identity in the context of fn `fi`
/// of `file`. Returns `Err(param)` when the whole receiver is one of the
/// fn's own parameters (the passthrough case).
fn resolve_lock(
    file: &ParsedFile,
    fi: usize,
    comps: &[String],
    index: &WorkspaceIndex,
) -> Result<String, String> {
    let krate = crate_ident(file.crate_name());
    let fallback = || Ok(format!("{krate}:{}", comps.join(".")));
    let Some(head) = comps.first() else {
        return Ok(format!("{krate}:?"));
    };
    let f = &file.items.fns[fi];

    // whole receiver is a parameter → passthrough wrapper
    if comps.len() == 1 {
        if let Some(p) = f.params.iter().find(|p| p.name == *head) {
            return Err(p.name.clone());
        }
    }

    // `a::A` / `crate::A` path to a lock static
    if let Some((qual, name)) = head.rsplit_once("::") {
        let qual = qual.rsplit("::").next().unwrap_or(qual);
        let qual = if qual == "crate" || qual == "self" || qual == "super" {
            krate.clone()
        } else {
            qual.to_string()
        };
        if index.lock_static_crates(name).contains(&qual) {
            return Ok(format!("{qual}::{name}"));
        }
        return fallback();
    }

    // bare lock static of the current crate
    if comps.len() == 1 && index.lock_static_crates(head).contains(&krate) {
        return Ok(format!("{krate}::{head}"));
    }

    // field chain rooted at `self` or a typed parameter
    let (mut cur, rest) = if head == "self" {
        match &f.impl_type {
            Some(t) => (t.clone(), &comps[1..]),
            None => return fallback(),
        }
    } else if let Some(p) = f.params.iter().find(|p| p.name == *head) {
        match &p.base_type {
            Some(t) => (t.clone(), &comps[1..]),
            None => return fallback(),
        }
    } else {
        return fallback();
    };
    for (k, comp) in rest.iter().enumerate() {
        let name = comp.trim_end_matches("[_]").trim_end_matches("()");
        let Some(field) = index.field(&cur, name) else {
            return fallback();
        };
        if k == rest.len() - 1 {
            return Ok(format!("{cur}.{name}"));
        }
        match &field.base_type {
            Some(t) => cur = t.clone(),
            None => return fallback(),
        }
    }
    fallback()
}

/// Guard lifetime for an acquisition at token `site`: `let`-bound guards
/// live to the enclosing block's `}` or an explicit `drop(name)`;
/// temporaries die at the statement end.
fn guard_lifetime(file: &ParsedFile, site: usize) -> usize {
    let toks = &file.tokens;
    let s = stmt_start(toks, &file.matches, site);
    if toks.get(s).map(|t| t.text.as_str()) != Some("let") {
        return stmt_end(toks, &file.matches, site);
    }
    let j = s + 1 + usize::from(toks.get(s + 1).is_some_and(|t| t.text == "mut"));
    let Some(name) = toks.get(j).filter(|t| t.word()).map(|t| t.text.clone()) else {
        // destructuring let: keep the conservative block lifetime
        return enclosing_block_end(toks, &file.matches, site);
    };
    let block_end = enclosing_block_end(toks, &file.matches, site);
    // explicit `drop(name)` ends the guard early
    for k in site..block_end.min(toks.len().saturating_sub(3)) {
        if toks[k].text == "drop"
            && toks[k + 1].text == "("
            && toks[k + 2].text == name
            && toks[k + 3].text == ")"
        {
            return k;
        }
    }
    block_end
}

/// Rust keywords that look like call heads but are not.
const NOT_CALLS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "let", "fn", "move", "in", "as", "else",
];

/// Extract raw acquisitions (unresolved) and call sites from one fn body.
fn scan_fn(file: &ParsedFile, fi: usize) -> FnLocks {
    let mut info = FnLocks::default();
    let Some((open, close)) = file.items.fns[fi].body else {
        return info;
    };
    let toks = &file.tokens;
    let mut param_acq: Option<String> = None;
    let mut other_acq = false;
    let mut i = open + 1;
    while i < close {
        // exclusive acquire: `.lock()` / `.write()` with empty parens
        let is_acq = ["lock", "write"]
            .iter()
            .any(|m| file.seq(i, &[".", m, "(", ")"]));
        if is_acq && i > open + 1 {
            let comps = receiver_chain(file, i - 1);
            match resolve_lock(file, fi, &comps, &crate::symbols::WorkspaceIndex::default()) {
                // resolution against the real index happens later; here we
                // only detect the passthrough shape (param receiver)
                Err(param) => param_acq = Some(param),
                Ok(_) => other_acq = true,
            }
            info.acqs.push(Acq {
                lock: comps.join("."), // placeholder, resolved in pass 2
                tok: i,
                end: guard_lifetime(file, i),
                line: toks[i].line + 1,
            });
            i += 4;
            continue;
        }
        // call site: ident followed by `(`, not a macro / keyword / decl
        if toks[i].word()
            && !NOT_CALLS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && (i == 0 || toks[i - 1].text != "fn")
        {
            info.calls.push(Call {
                name: toks[i].text.clone(),
                tok: i,
                line: toks[i].line + 1,
            });
        }
        i += 1;
    }
    if param_acq.is_some() && !other_acq {
        info.passthrough = param_acq;
    }
    info
}

/// Token index of the last token of the call's first argument (borrows
/// stripped) — the anchor for `receiver_chain`. `None` if no arguments.
fn first_arg_end(file: &ParsedFile, tok: usize) -> Option<usize> {
    let open = tok + 1;
    if file.tokens.get(open)?.text != "(" {
        return None;
    }
    let close = file.matches[open];
    let mut e = open + 1;
    while e < close && matches!(file.tokens[e].text.as_str(), "&" | "mut") {
        e += 1;
    }
    let mut last = None;
    while e < close {
        match file.tokens[e].text.as_str() {
            "(" | "[" | "{" => e = file.matches[e],
            "," => break,
            _ => {}
        }
        last = Some(e);
        e += 1;
    }
    last
}

/// A directed lock-order edge with one witness location.
#[derive(Debug, Clone)]
struct Edge {
    path: String,
    line: usize,
    func: String,
    via: Option<String>,
}

/// Build the workspace lock graph and report every lock-order cycle.
fn lock_order_cycles(files: &[ParsedFile], index: &WorkspaceIndex, out: &mut Vec<Finding>) {
    // pass 1: raw per-fn scans (acquisitions, calls, passthrough shape)
    let mut raw: Vec<Vec<FnLocks>> = Vec::with_capacity(files.len());
    for file in files {
        raw.push(
            (0..file.items.fns.len())
                .map(|fi| scan_fn(file, fi))
                .collect(),
        );
    }
    // passthrough fns by bare name (unambiguous only)
    let mut passthrough: BTreeMap<String, ()> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, info) in raw[fi].iter().enumerate() {
            if info.passthrough.is_some() {
                passthrough.insert(file.items.fns[ni].name.clone(), ());
            }
        }
    }

    // pass 2: resolve acquisitions; expand passthrough call sites
    let mut resolved: Vec<Vec<FnLocks>> = Vec::with_capacity(files.len());
    for (fx, file) in files.iter().enumerate() {
        let mut per_fn = Vec::with_capacity(raw[fx].len());
        for (ni, info) in raw[fx].iter().enumerate() {
            // skip test-region fns entirely
            if file.items.fns[ni]
                .body
                .is_some_and(|(open, _)| file.tok_in_test(open))
            {
                per_fn.push(FnLocks::default());
                continue;
            }
            let mut rinfo = FnLocks {
                passthrough: info.passthrough.clone(),
                ..FnLocks::default()
            };
            if info.passthrough.is_none() {
                for a in &info.acqs {
                    let comps = receiver_chain(file, a.tok - 1);
                    if let Ok(lock) = resolve_lock(file, ni, &comps, index) {
                        rinfo.acqs.push(Acq { lock, ..a.clone() });
                    }
                }
            }
            for c in &info.calls {
                if passthrough.contains_key(&c.name) {
                    // the wrapper acquires its first argument's lock here
                    if let Some(e) = first_arg_end(file, c.tok) {
                        let comps = receiver_chain(file, e);
                        if let Ok(lock) = resolve_lock(file, ni, &comps, index) {
                            rinfo.acqs.push(Acq {
                                lock,
                                tok: c.tok,
                                end: guard_lifetime(file, c.tok),
                                line: c.line,
                            });
                        }
                    }
                } else {
                    rinfo.calls.push(c.clone());
                }
            }
            rinfo.acqs.sort_by_key(|a| a.tok);
            per_fn.push(rinfo);
        }
        resolved.push(per_fn);
    }

    // direct-lock sets per fn, for one-level callee edges
    let direct_locks = |fref: (usize, usize)| -> BTreeSet<String> {
        resolved[fref.0][fref.1]
            .acqs
            .iter()
            .map(|a| a.lock.clone())
            .collect()
    };

    // pass 3: edges
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, e: Edge| {
        edges.entry((from.to_string(), to.to_string())).or_insert(e);
    };
    for (fx, file) in files.iter().enumerate() {
        for (ni, info) in resolved[fx].iter().enumerate() {
            let fname = &file.items.fns[ni].name;
            for a in &info.acqs {
                for b in &info.acqs {
                    if b.tok > a.tok && b.tok < a.end {
                        add_edge(
                            &a.lock,
                            &b.lock,
                            Edge {
                                path: file.path.clone(),
                                line: b.line,
                                func: fname.clone(),
                                via: None,
                            },
                        );
                    }
                }
                for c in &info.calls {
                    if c.tok <= a.tok || c.tok >= a.end {
                        continue;
                    }
                    let mut callee_locks: BTreeSet<String> = BTreeSet::new();
                    for &fref in index.fns_named(&c.name) {
                        callee_locks.extend(direct_locks(fref));
                    }
                    for l in callee_locks {
                        add_edge(
                            &a.lock,
                            &l,
                            Edge {
                                path: file.path.clone(),
                                line: c.line,
                                func: fname.clone(),
                                via: Some(c.name.clone()),
                            },
                        );
                    }
                }
            }
        }
    }

    report_cycles(&edges, out);
}

/// Find strongly connected components over the edge set and emit one
/// finding per cycle (SCC of size > 1, or a self-loop through a callee).
fn report_cycles(edges: &BTreeMap<(String, String), Edge>, out: &mut Vec<Finding>) {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
        adj.entry(a).or_default().push(b);
    }
    // iterative Tarjan SCC
    let ids: Vec<&str> = nodes.iter().copied().collect();
    let idx_of: BTreeMap<&str, usize> = ids.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = ids.len();
    let mut index_ctr = 0usize;
    let mut indices = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for root in 0..n {
        if indices[root] != usize::MAX {
            continue;
        }
        // explicit DFS stack: (node, next-neighbor cursor)
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, cursor)) = dfs.last() {
            if cursor == 0 {
                indices[v] = index_ctr;
                low[v] = index_ctr;
                index_ctr += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let neigh: Vec<usize> = adj
                .get(ids[v])
                .map(|ns| ns.iter().map(|w| idx_of[w]).collect())
                .unwrap_or_default();
            if cursor < neigh.len() {
                if let Some(top) = dfs.last_mut() {
                    top.1 += 1;
                }
                let w = neigh[cursor];
                if indices[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(indices[w]);
                }
            } else {
                if low[v] == indices[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                dfs.pop();
                if let Some(&(u, _)) = dfs.last() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }

    for comp in &mut sccs {
        comp.sort_unstable();
        let cyclic = comp.len() > 1
            || edges.contains_key(&(ids[comp[0]].to_string(), ids[comp[0]].to_string()));
        if !cyclic {
            continue;
        }
        let members: Vec<&str> = comp.iter().map(|&i| ids[i]).collect();
        // witness: every intra-SCC edge, sorted, with its location
        let mut legs: Vec<String> = Vec::new();
        let mut first: Option<&Edge> = None;
        for ((a, b), e) in edges {
            if members.contains(&a.as_str()) && members.contains(&b.as_str()) {
                let via = e
                    .via
                    .as_ref()
                    .map(|v| format!(" via `{v}()`"))
                    .unwrap_or_default();
                legs.push(format!(
                    "{a} → {b} in `{}` ({}:{}{via})",
                    e.func, e.path, e.line
                ));
                first.get_or_insert(e);
            }
        }
        let Some(first) = first else { continue };
        out.push(Finding {
            rule: Rule::LockOrderCycle,
            path: first.path.clone(),
            line: first.line,
            message: format!(
                "lock-order cycle over {{{}}} — potential deadlock: {}",
                members.join(", "),
                legs.join("; ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<ParsedFile> = sources
            .iter()
            .map(|(p, s)| ParsedFile::parse(p, s))
            .collect();
        let index = WorkspaceIndex::build(&files);
        let mut out = Vec::new();
        lint_concurrency(&files, &index, &mut out);
        out
    }

    fn rules_of(f: &[Finding]) -> Vec<Rule> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn flags_lock_unwrap_variants_but_not_recovery_idiom() {
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }\n";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert_eq!(rules_of(&f), vec![Rule::LockUnwrap]);
        let src = "fn f(m: &RwLock<u32>) { let g = m.write().expect(\"w\"); }\n";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert_eq!(rules_of(&f), vec![Rule::LockUnwrap]);
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap_or_else(|e| e.into_inner()); }\n";
        assert!(lint(&[("crates/a/src/l.rs", src)]).is_empty());
    }

    #[test]
    fn io_write_unwrap_is_not_a_lock_unwrap() {
        let src = "fn f(w: &mut W) { w.write(buf).unwrap(); }\n";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert!(!f.iter().any(|x| x.rule == Rule::LockUnwrap), "{f:?}");
    }

    #[test]
    fn flags_relaxed_gate_but_not_acquire() {
        let src = "fn f(done: &AtomicBool) { while !done.load(Ordering::Relaxed) { spin(); } }\n";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert_eq!(rules_of(&f), vec![Rule::RelaxedAtomicGate]);
        let src = "fn f(done: &AtomicBool) { while !done.load(Ordering::Acquire) { spin(); } }\n";
        assert!(lint(&[("crates/a/src/l.rs", src)]).is_empty());
        // a relaxed load that is merely counted, not gating, is fine
        let src = "fn f(n: &AtomicUsize) { let c = n.load(Ordering::Relaxed); record(c); }\n";
        assert!(lint(&[("crates/a/src/l.rs", src)]).is_empty());
    }

    #[test]
    fn flags_unbounded_channel_in_lib_not_bin() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }\n";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert_eq!(rules_of(&f), vec![Rule::UnboundedChannel]);
        assert!(lint(&[("crates/a/src/bin/t.rs", src)]).is_empty());
        let src = "fn f() { let (tx, rx) = mpsc::sync_channel(8); }\n";
        assert!(lint(&[("crates/a/src/l.rs", src)]).is_empty());
    }

    #[test]
    fn detects_two_lock_inversion_in_one_file() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
    }
    fn ba(&self) {
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
    }
}
";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert_eq!(rules_of(&f), vec![Rule::LockOrderCycle], "{f:?}");
        assert!(f[0].message.contains("S.a"), "{}", f[0].message);
        assert!(f[0].message.contains("S.b"), "{}", f[0].message);
    }

    #[test]
    fn dropping_the_first_guard_breaks_the_cycle() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
    }
    fn ba(&self) {
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        drop(gb);
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
    }
}
";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scope_exit_before_second_acquire_is_disjoint() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
    }
    fn ba(&self) {
        {
            let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        }
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
    }
}
";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "
struct S { a: Mutex<Vec<u32>>, b: Mutex<u32> }
impl S {
    fn ab(&self) {
        self.a.lock().unwrap_or_else(|e| e.into_inner()).push(1);
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
    }
    fn ba(&self) {
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
    }
}
";
        // ab's `a` guard is a temporary dead before `b` is taken: only the
        // b→a edge exists, no cycle
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cross_crate_cycle_through_callee_and_statics() {
        let a = "
pub static A: Mutex<u32> = Mutex::new(0);
pub static B: Mutex<u32> = Mutex::new(0);
pub fn a_then_b() {
    let ga = A.lock().unwrap_or_else(|e| e.into_inner());
    let gb = B.lock().unwrap_or_else(|e| e.into_inner());
}
";
        let c = "
pub fn grab_a() -> u32 {
    *a::A.lock().unwrap_or_else(|e| e.into_inner())
}
";
        let b = "
pub fn b_then_a() -> u32 {
    let gb = a::B.lock().unwrap_or_else(|e| e.into_inner());
    let x = c::grab_a();
    x
}
";
        let f = lint(&[
            ("crates/a/src/lib.rs", a),
            ("crates/b/src/lib.rs", b),
            ("crates/c/src/lib.rs", c),
        ]);
        let cycles: Vec<&Finding> = f
            .iter()
            .filter(|x| x.rule == Rule::LockOrderCycle)
            .collect();
        assert_eq!(cycles.len(), 1, "{f:?}");
        assert!(cycles[0].message.contains("a::A"), "{}", cycles[0].message);
        assert!(cycles[0].message.contains("a::B"), "{}", cycles[0].message);
        assert!(
            cycles[0].message.contains("via `grab_a()`"),
            "{}",
            cycles[0].message
        );
    }

    #[test]
    fn passthrough_wrapper_is_expanded_at_call_sites() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
fn lock_anyway<'l, T>(m: &'l Mutex<T>) -> MutexGuard<'l, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
impl S {
    fn ab(&self) {
        let ga = lock_anyway(&self.a);
        let gb = lock_anyway(&self.b);
    }
    fn ba(&self) {
        let gb = lock_anyway(&self.b);
        let ga = lock_anyway(&self.a);
    }
}
";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert_eq!(rules_of(&f), vec![Rule::LockOrderCycle], "{f:?}");
        assert!(f[0].message.contains("S.a"), "{}", f[0].message);
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
    }
    fn ab2(&self) {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
    }
}
";
        assert!(lint(&[("crates/a/src/l.rs", src)]).is_empty());
    }

    #[test]
    fn double_acquire_of_same_lock_is_a_self_cycle() {
        let src = "
struct S { a: Mutex<u32> }
impl S {
    fn oops(&self) {
        let g1 = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let g2 = self.a.lock().unwrap_or_else(|e| e.into_inner());
    }
}
";
        let f = lint(&[("crates/a/src/l.rs", src)]);
        assert_eq!(rules_of(&f), vec![Rule::LockOrderCycle], "{f:?}");
    }
}
