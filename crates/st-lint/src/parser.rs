//! A brace-aware item parser on top of the [`crate::lexer`] scan.
//!
//! PR 3's rules were line-oriented: each rule pattern-matched one
//! comment-stripped line at a time. The v2 rule families (lock-order
//! analysis, taint from wall-clock reads, hash-iteration audits) need more
//! structure than a line can carry, but the build environment has no `syn`.
//! This module is the middle ground: a hand-rolled tokenizer plus a
//! matching-delimiter map, from which it extracts the *items* the rules
//! care about —
//!
//! - every function (`fn` name, parameter names and base types, body token
//!   range, enclosing `impl` type), including functions nested in modules
//!   and impl blocks;
//! - every struct's fields with their base type identifier (so a receiver
//!   chain like `self.shared.queue` can be resolved field-by-field);
//! - every `static`/`const` item whose type mentions `Mutex`/`RwLock`.
//!
//! Token positions keep their 0-based source line so findings point at real
//! lines. The tokenizer works on the lexer's comment-stripped,
//! literal-blanked code text, so strings and comments can never fake a
//! token.

use crate::lexer::SourceLine;

/// One code token: an identifier/number word, or a single punctuation char.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text. Words keep their spelling; every punctuation character
    /// is its own one-char token (`::` arrives as two `:` tokens).
    pub text: String,
    /// 0-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// Is this an identifier/number token (vs punctuation)?
    pub fn word(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }
}

/// Tokenize comment-stripped code lines. Words are `[A-Za-z0-9_]+` runs
/// (numeric literals keep an interior `.` digit separator, so `1.0` is one
/// token but `0..n` splits); everything else is one token per char, with
/// whitespace skipped. Blanked string literals (`""`) survive as a `""`
/// token so argument positions stay countable.
pub fn tokenize(lines: &[SourceLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // keep `1.5`, `0.99e-3` style float literals as one token
                if chars[start].is_ascii_digit() {
                    while i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                        i += 1;
                        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                });
                continue;
            }
            if c == '"' {
                // the lexer blanks literals to `""`
                out.push(Token {
                    text: "\"\"".into(),
                    line: lineno,
                });
                i += 1;
                while i < chars.len() && chars[i] == '"' {
                    i += 1;
                }
                continue;
            }
            out.push(Token {
                text: c.to_string(),
                line: lineno,
            });
            i += 1;
        }
    }
    out
}

/// For each opening `(`/`[`/`{` token index, the index of its matching
/// closer (and vice versa). Unbalanced delimiters map to themselves so a
/// truncated file cannot send a scan out of bounds.
pub fn match_delims(tokens: &[Token]) -> Vec<usize> {
    let mut matches: Vec<usize> = (0..tokens.len()).collect();
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => stack.push((t.text.chars().next().unwrap_or('('), i)),
            ")" | "]" | "}" => {
                let open = match t.text.as_str() {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                if let Some(pos) = stack.iter().rposition(|&(c, _)| c == open) {
                    let (_, oi) = stack.remove(pos);
                    matches[oi] = i;
                    matches[i] = oi;
                }
            }
            _ => {}
        }
    }
    matches
}

/// One function parameter: its binding name and the base identifier of its
/// type (`shared: &Arc<Shared>` → base type `Shared`; wrapper types
/// `& Arc Box Rc Mutex RwLock Option` are peeled).
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for methods).
    pub name: String,
    /// Base type identifier, if one could be extracted.
    pub base_type: Option<String>,
}

/// A parsed function item.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Bare function name.
    pub name: String,
    /// Self type of the enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// Token index of the `fn` keyword.
    pub decl_tok: usize,
    /// Token range of the body: indexes of `{` and `}` (`None` for
    /// bodyless trait-method declarations).
    pub body: Option<(usize, usize)>,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
}

/// A struct field with its base type identifier.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Base type identifier (wrappers peeled), if extractable.
    pub base_type: Option<String>,
    /// Whether the field's type mentions `Mutex` or `RwLock`.
    pub is_lock: bool,
    /// Whether the field's type mentions `HashMap` or `HashSet`.
    pub is_hash: bool,
    /// 0-based declaration line.
    pub line: usize,
}

/// A parsed struct item.
#[derive(Debug, Clone)]
pub struct StructDecl {
    /// Struct name.
    pub name: String,
    /// Named fields (tuple structs yield none).
    pub fields: Vec<Field>,
}

/// A `static` item whose type mentions a lock.
#[derive(Debug, Clone)]
pub struct StaticLock {
    /// Item name.
    pub name: String,
    /// 0-based declaration line.
    pub line: usize,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedItems {
    /// All functions, in source order.
    pub fns: Vec<FnDecl>,
    /// All structs with named fields.
    pub structs: Vec<StructDecl>,
    /// Top-level lock-typed statics.
    pub statics: Vec<StaticLock>,
}

/// Wrapper type identifiers peeled when looking for a base type.
const WRAPPERS: [&str; 8] = [
    "Arc", "Rc", "Box", "Mutex", "RwLock", "Option", "RefCell", "Cell",
];

/// The first non-wrapper identifier in a type token run — `&Arc<Shared>`
/// → `Shared`; `Mutex<VecDeque<QueuedJob>>` → `VecDeque`.
fn base_type_of(tokens: &[Token], mut i: usize, end: usize) -> Option<String> {
    while i < end {
        let t = &tokens[i];
        if t.word() {
            if WRAPPERS.contains(&t.text.as_str()) || t.text == "dyn" || t.text == "mut" {
                i += 1;
                continue;
            }
            // skip path qualifiers: `std::sync::Mutex` — take the last
            // segment before a non-path token
            let mut last = t.text.clone();
            let mut j = i + 1;
            while j + 1 < end && tokens[j].text == ":" && tokens[j + 1].text == ":" {
                if j + 2 < end && tokens[j + 2].word() {
                    last = tokens[j + 2].text.clone();
                    j += 3;
                } else {
                    break;
                }
            }
            if WRAPPERS.contains(&last.as_str()) {
                i = j;
                continue;
            }
            return Some(last);
        }
        match t.text.as_str() {
            // skip the lifetime ident after a tick too (`&'a T`)
            "'" => i += 2,
            "&" | "<" | ">" | "," | ":" => i += 1,
            _ => return None,
        }
    }
    None
}

fn type_run_mentions(tokens: &[Token], i: usize, end: usize, names: &[&str]) -> bool {
    tokens[i..end]
        .iter()
        .any(|t| names.contains(&t.text.as_str()))
}

/// Skip a generics run starting at `<` (angle brackets are not in the
/// delimiter map); returns the index just past the matching `>`.
fn skip_generics(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0i64;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            "(" | "{" | ";" => return i, // malformed; bail before structure
            _ => {}
        }
        i += 1;
    }
    i
}

/// Extract parameters from the token range inside a `(` `)` group.
fn parse_params(tokens: &[Token], open: usize, close: usize, matches: &[usize]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut i = open + 1;
    while i < close {
        // each parameter starts at `i`; find its terminating top-level `,`
        let mut j = i;
        let mut colon = None;
        while j < close {
            match tokens[j].text.as_str() {
                "(" | "[" | "{" => j = matches[j],
                "<" => j = skip_generics(tokens, j).saturating_sub(1),
                ":" if colon.is_none() => colon = Some(j),
                "," => break,
                _ => {}
            }
            j += 1;
        }
        // name = last word before the colon (skips `mut`); `self` receivers
        // have no colon
        let upto = colon.unwrap_or(j);
        let name = tokens[i..upto]
            .iter()
            .rev()
            .find(|t| t.word() && t.text != "mut")
            .map(|t| t.text.clone());
        if let Some(name) = name {
            let base_type = colon.and_then(|c| base_type_of(tokens, c + 1, j));
            let base_type = if name == "self" { None } else { base_type };
            params.push(Param { name, base_type });
        }
        i = j + 1;
    }
    params
}

/// Parse all items from a token stream (with its delimiter map).
pub fn parse_items(tokens: &[Token], matches: &[usize]) -> ParsedItems {
    let mut items = ParsedItems::default();
    // impl spans: (body_open, body_close, self_type)
    let mut impls: Vec<(usize, usize, String)> = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if !t.word() {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                // `impl<G> Type {` | `impl Trait for Type {`
                let mut j = i + 1;
                if j < tokens.len() && tokens[j].text == "<" {
                    j = skip_generics(tokens, j);
                }
                // find the body `{` at this level; remember the last path
                // segment seen, preferring the run after `for`
                let mut self_ty = String::new();
                let mut after_for = false;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "{" => break,
                        "for" => {
                            after_for = true;
                            self_ty.clear();
                            j += 1;
                        }
                        "where" => {
                            // type position is done; scan to the body
                            while j < tokens.len() && tokens[j].text != "{" {
                                j += 1;
                            }
                        }
                        "<" => j = skip_generics(tokens, j),
                        w if tokens[j].word() => {
                            if self_ty.is_empty() || after_for || {
                                // later path segments win: `a::B` → B
                                j >= 2 && tokens[j - 1].text == ":" && tokens[j - 2].text == ":"
                            } {
                                if !w.chars().next().is_some_and(char::is_lowercase)
                                    || self_ty.is_empty()
                                {
                                    self_ty = w.to_string();
                                }
                                after_for = false;
                            }
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                if j < tokens.len() && tokens[j].text == "{" && !self_ty.is_empty() {
                    impls.push((j, matches[j], self_ty));
                }
                i += 1; // descend into the impl body normally
            }
            "fn" => {
                let Some(name_tok) = tokens.get(i + 1).filter(|t| t.word()) else {
                    i += 1;
                    continue;
                };
                let mut j = i + 2;
                if j < tokens.len() && tokens[j].text == "<" {
                    j = skip_generics(tokens, j);
                }
                if tokens.get(j).map(|t| t.text.as_str()) != Some("(") {
                    i += 1;
                    continue;
                }
                let pclose = matches[j];
                let params = parse_params(tokens, j, pclose, matches);
                // scan past the return type to `{` or `;`
                let mut k = pclose + 1;
                let mut body = None;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "(" | "[" => k = matches[k] + 1,
                        "<" => k = skip_generics(tokens, k),
                        "{" => {
                            body = Some((k, matches[k]));
                            break;
                        }
                        ";" => break,
                        "where" => k += 1,
                        _ => k += 1,
                    }
                }
                let impl_type = impls
                    .iter()
                    .rev()
                    .find(|&&(open, close, _)| i > open && i < close)
                    .map(|(_, _, ty)| ty.clone());
                items.fns.push(FnDecl {
                    name: name_tok.text.clone(),
                    impl_type,
                    decl_line: t.line,
                    decl_tok: i,
                    body,
                    params,
                });
                // continue scanning from inside the signature so nested fns
                // (closures with inner fns) are still found
                i += 2;
            }
            "struct" => {
                let Some(name_tok) = tokens.get(i + 1).filter(|t| t.word()) else {
                    i += 1;
                    continue;
                };
                let mut j = i + 2;
                if j < tokens.len() && tokens[j].text == "<" {
                    j = skip_generics(tokens, j);
                }
                let mut fields = Vec::new();
                if tokens.get(j).map(|t| t.text.as_str()) == Some("{") {
                    let close = matches[j];
                    let mut k = j + 1;
                    while k < close {
                        // field pattern: `name :` at depth 1
                        if tokens[k].word()
                            && tokens.get(k + 1).map(|t| t.text.as_str()) == Some(":")
                            && tokens.get(k + 2).map(|t| t.text.as_str()) != Some(":")
                        {
                            // find the end of the type run (top-level `,`)
                            let mut e = k + 2;
                            while e < close {
                                match tokens[e].text.as_str() {
                                    "(" | "[" | "{" => e = matches[e],
                                    "<" => e = skip_generics(tokens, e).saturating_sub(1),
                                    "," => break,
                                    _ => {}
                                }
                                e += 1;
                            }
                            fields.push(Field {
                                name: tokens[k].text.clone(),
                                base_type: base_type_of(tokens, k + 2, e),
                                is_lock: type_run_mentions(tokens, k + 2, e, &["Mutex", "RwLock"]),
                                is_hash: type_run_mentions(
                                    tokens,
                                    k + 2,
                                    e,
                                    &["HashMap", "HashSet"],
                                ),
                                line: tokens[k].line,
                            });
                            k = e + 1;
                        } else {
                            match tokens[k].text.as_str() {
                                "(" | "[" | "{" => k = matches[k] + 1,
                                _ => k += 1,
                            }
                        }
                    }
                }
                items.structs.push(StructDecl {
                    name: name_tok.text.clone(),
                    fields,
                });
                i += 2;
            }
            "static" => {
                // `static NAME: Mutex<...> = ...;` (possibly `pub` handled
                // by arriving here from the `static` token itself)
                let mut j = i + 1;
                if tokens.get(j).map(|t| t.text.as_str()) == Some("mut") {
                    j += 1;
                }
                if let Some(name_tok) = tokens.get(j).filter(|t| t.word()) {
                    if tokens.get(j + 1).map(|t| t.text.as_str()) == Some(":") {
                        let mut e = j + 2;
                        while e < tokens.len() {
                            match tokens[e].text.as_str() {
                                "=" | ";" => break,
                                "(" | "[" | "{" => e = matches[e],
                                "<" => e = skip_generics(tokens, e).saturating_sub(1),
                                _ => {}
                            }
                            e += 1;
                        }
                        if type_run_mentions(tokens, j + 2, e, &["Mutex", "RwLock"]) {
                            items.statics.push(StaticLock {
                                name: name_tok.text.clone(),
                                line: name_tok.line,
                            });
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    items
}

/// First token index of the statement containing `i`: scans backwards,
/// skipping complete delimiter groups, to the nearest `;` or block brace.
pub fn stmt_start(tokens: &[Token], matches: &[usize], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match tokens[j].text.as_str() {
            ")" | "]" | "}" if matches[j] < j => j = matches[j],
            ";" | "{" | "}" => return j + 1,
            _ => {}
        }
    }
    0
}

/// Index of the token terminating the statement containing `i`: the next
/// top-level `;`, or the closing brace of the enclosing block.
pub fn stmt_end(tokens: &[Token], matches: &[usize], i: usize) -> usize {
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" if matches[j] > j => j = matches[j],
            ";" | "}" => return j,
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Token index of the `}` closing the innermost block that contains `i`
/// (or the last token if none does).
pub fn enclosing_block_end(tokens: &[Token], matches: &[usize], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match tokens[j].text.as_str() {
            ")" | "]" | "}" if matches[j] < j => j = matches[j],
            "{" if matches[j] > i => return matches[j],
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// A fully scanned, tokenized, item-parsed file, shared by every v2 rule.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Per-line code/comment split from the lexer.
    pub lines: Vec<SourceLine>,
    /// Raw source lines (for allowlist needle matching).
    pub raw_lines: Vec<String>,
    /// `#[cfg(test)]` region mask, per line.
    pub in_test: Vec<bool>,
    /// Flat token stream.
    pub tokens: Vec<Token>,
    /// Matching-delimiter map over `tokens`.
    pub matches: Vec<usize>,
    /// Extracted items.
    pub items: ParsedItems,
}

impl ParsedFile {
    /// Scan + tokenize + parse one source file.
    pub fn parse(path: &str, src: &str) -> ParsedFile {
        let lines = crate::lexer::scan(src);
        let in_test = crate::lexer::test_regions(&lines);
        let tokens = tokenize(&lines);
        let matches = match_delims(&tokens);
        let items = parse_items(&tokens, &matches);
        ParsedFile {
            path: path.to_string(),
            raw_lines: src.lines().map(str::to_string).collect(),
            lines,
            in_test,
            tokens,
            matches,
            items,
        }
    }

    /// The crate name a workspace path belongs to (`crates/st-core/src/…`
    /// → `st-core`; the root `src/` tree is crate `deepst`).
    pub fn crate_name(&self) -> &str {
        let mut parts = self.path.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or("deepst"),
            _ => "deepst",
        }
    }

    /// Do the tokens starting at `i` spell out `texts` exactly?
    pub fn seq(&self, i: usize, texts: &[&str]) -> bool {
        texts
            .iter()
            .enumerate()
            .all(|(k, t)| self.tokens.get(i + k).is_some_and(|tok| tok.text == *t))
    }

    /// Index (into `items.fns`) of the innermost function whose body
    /// contains token `idx`.
    pub fn innermost_fn(&self, idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (fi, f) in self.items.fns.iter().enumerate() {
            if let Some((open, close)) = f.body {
                if idx > open && idx < close {
                    let tighter = best
                        .and_then(|b| self.items.fns[b].body)
                        .is_none_or(|(bo, _)| open > bo);
                    if tighter {
                        best = Some(fi);
                    }
                }
            }
        }
        best
    }

    /// Is the token at `idx` inside a `#[cfg(test)]` region?
    pub fn tok_in_test(&self, idx: usize) -> bool {
        self.tokens
            .get(idx)
            .map(|t| self.in_test.get(t.line).copied().unwrap_or(false))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse("crates/x/src/lib.rs", src)
    }

    #[test]
    fn tokenizes_words_floats_and_puncts() {
        let f = parse("let x = 1.5e-3; a.b(0..n)\n");
        let texts: Vec<&str> = f.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"1.5e"), "{texts:?}");
        assert!(texts.contains(&"0"), "{texts:?}");
        assert!(texts.contains(&"n"), "{texts:?}");
    }

    #[test]
    fn float_literal_is_one_token() {
        let f = parse("if x == 0.99 {}\n");
        assert!(f.tokens.iter().any(|t| t.text == "0.99"));
    }

    #[test]
    fn extracts_fn_with_params_and_impl_type() {
        let src = "
impl Server {
    fn enqueue(&self, req: RouteRequest, shared: &Arc<Shared>) -> bool {
        true
    }
}
fn free(x: usize) {}
";
        let f = parse(src);
        assert_eq!(f.items.fns.len(), 2);
        let m = &f.items.fns[0];
        assert_eq!(m.name, "enqueue");
        assert_eq!(m.impl_type.as_deref(), Some("Server"));
        assert_eq!(m.params.len(), 3);
        assert_eq!(m.params[0].name, "self");
        assert_eq!(m.params[1].name, "req");
        assert_eq!(m.params[1].base_type.as_deref(), Some("RouteRequest"));
        assert_eq!(m.params[2].base_type.as_deref(), Some("Shared"));
        let free = &f.items.fns[1];
        assert_eq!(free.name, "free");
        assert!(free.impl_type.is_none());
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = "impl Ord for Entry { fn cmp(&self, o: &Self) -> Ordering { x } }\n";
        let f = parse(src);
        assert_eq!(f.items.fns[0].impl_type.as_deref(), Some("Entry"));
    }

    #[test]
    fn extracts_struct_fields_with_lock_and_hash_flags() {
        let src = "
struct Shared {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    index: HashMap<usize, usize>,
    model: Arc<DeepSt>,
}
";
        let f = parse(src);
        let s = &f.items.structs[0];
        assert_eq!(s.name, "Shared");
        assert_eq!(s.fields.len(), 4);
        assert!(s.fields[1].is_lock);
        assert!(s.fields[2].is_hash);
        assert_eq!(s.fields[3].base_type.as_deref(), Some("DeepSt"));
        assert_eq!(s.fields[0].base_type.as_deref(), Some("ServeConfig"));
    }

    #[test]
    fn extracts_lock_statics() {
        let src = "pub static REG: Mutex<u32> = Mutex::new(0);\nstatic PLAIN: usize = 3;\n";
        let f = parse(src);
        assert_eq!(f.items.statics.len(), 1);
        assert_eq!(f.items.statics[0].name, "REG");
    }

    #[test]
    fn generic_fn_and_where_clause_parse() {
        let src = "fn lock_anyway<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> where T: Send {\n m.lock()\n}\n";
        let f = parse(src);
        assert_eq!(f.items.fns.len(), 1);
        assert_eq!(f.items.fns[0].name, "lock_anyway");
        assert_eq!(f.items.fns[0].params[0].name, "m");
        assert!(f.items.fns[0].body.is_some());
    }

    #[test]
    fn crate_name_from_path() {
        let f = ParsedFile::parse("crates/st-serve/src/server.rs", "fn a() {}\n");
        assert_eq!(f.crate_name(), "st-serve");
        let f = ParsedFile::parse("src/main.rs", "fn a() {}\n");
        assert_eq!(f.crate_name(), "deepst");
    }
}
