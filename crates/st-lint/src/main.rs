//! Workspace linter entry point.
//!
//! ```text
//! cargo run -p st-lint [-- --root <path>]
//! ```
//!
//! Scans `crates/*/src/**/*.rs` and `src/**/*.rs` under the workspace root
//! (default: current directory), prints findings as `path:line: [rule]
//! message`, warns about stale `st-lint.allow` entries, and exits nonzero if
//! any unwaived finding remains.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("st-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: st-lint [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("st-lint: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let (findings, allowlist) = match st_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("st-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &findings {
        println!("{f}");
    }
    for stale in allowlist.stale() {
        eprintln!(
            "st-lint: warning: stale allowlist entry (st-lint.allow:{}) matched nothing: {} | {} | {}",
            stale.defined_at,
            stale.rule.name(),
            stale.path_suffix,
            stale.needle
        );
    }
    if findings.is_empty() {
        println!("st-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("st-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
