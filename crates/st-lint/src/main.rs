//! Workspace linter entry point.
//!
//! ```text
//! cargo run -p st-lint [-- --root <path>] [--json] [--allow-stale]
//! ```
//!
//! Scans `crates/*/src/**/*.rs` and `src/**/*.rs` under the workspace root
//! (default: current directory), prints findings as `path:line: [rule]
//! message` (or a machine-readable report with `--json`, shape pinned by
//! `scripts/st-lint-findings.schema.json`), and exits nonzero if any
//! unwaived finding remains.
//!
//! Stale `st-lint.allow` entries — ones that matched nothing — are a hard
//! error: a waiver that no longer waives anything either outlived its bug
//! or silently stopped matching, and both need a human look. Pass
//! `--allow-stale` to downgrade them to warnings during local iteration.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut allow_stale = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("st-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--allow-stale" => allow_stale = true,
            "--help" | "-h" => {
                println!("usage: st-lint [--root <workspace-root>] [--json] [--allow-stale]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("st-lint: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let (findings, allowlist) = match st_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("st-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let stale = allowlist.stale();

    if json {
        let report = st_lint::json_report(&findings, &allowlist);
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("st-lint: serializing report: {}", e.0);
                return ExitCode::from(2);
            }
        }
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    for e in &stale {
        let severity = if allow_stale { "warning" } else { "error" };
        eprintln!(
            "st-lint: {severity}: stale allowlist entry (st-lint.allow:{}) matched nothing: \
             {} | {} | {}",
            e.defined_at,
            e.rule.name(),
            e.path_suffix,
            e.needle
        );
    }

    let stale_fails = !stale.is_empty() && !allow_stale;
    if findings.is_empty() && !stale_fails {
        if !json {
            println!("st-lint: clean");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            println!("st-lint: {} finding(s)", findings.len());
        }
        if stale_fails {
            eprintln!(
                "st-lint: {} stale allowlist entr(ies) — delete them or rerun with --allow-stale",
                stale.len()
            );
        }
        ExitCode::FAILURE
    }
}
