//! The shipped workspace must lint clean — this is the merge gate CI runs
//! via `cargo run -p st-lint`, pinned here as a test so `cargo test` alone
//! catches regressions.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn shipped_workspace_is_lint_clean() {
    let (findings, allowlist) = st_lint::lint_workspace(&workspace_root()).expect("lint runs");
    assert!(
        findings.is_empty(),
        "workspace has unwaived lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let stale = allowlist.stale();
    assert!(
        stale.is_empty(),
        "stale st-lint.allow entries (lines {:?}) — delete them",
        stale.iter().map(|e| e.defined_at).collect::<Vec<_>>()
    );
}

#[test]
fn planted_violations_of_each_rule_are_caught() {
    let mut allow = st_lint::Allowlist::default();
    let planted = "\
pub fn undocumented() {
    let x = maybe().unwrap();
    if x == 0.5 {
        unsafe { touch(x) }
    }
}
";
    // Place the snippet in an st-tensor path so all four rules apply.
    let findings = st_lint::lint_source("crates/st-tensor/src/planted.rs", planted, &mut allow);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule.name()).collect();
    for rule in ["panic-in-lib", "missing-safety", "float-eq", "missing-docs"] {
        assert!(rules.contains(&rule), "{rule} not caught in {rules:?}");
    }
}
