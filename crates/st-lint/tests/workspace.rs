//! The shipped workspace must lint clean — this is the merge gate CI runs
//! via `cargo run -p st-lint`, pinned here as a test so `cargo test` alone
//! catches regressions.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn shipped_workspace_is_lint_clean() {
    let (findings, allowlist) = st_lint::lint_workspace(&workspace_root()).expect("lint runs");
    assert!(
        findings.is_empty(),
        "workspace has unwaived lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let stale = allowlist.stale();
    assert!(
        stale.is_empty(),
        "stale st-lint.allow entries (lines {:?}) — delete them",
        stale.iter().map(|e| e.defined_at).collect::<Vec<_>>()
    );
}

#[test]
fn planted_violations_of_each_rule_are_caught() {
    let mut allow = st_lint::Allowlist::default();
    let planted = "\
pub fn undocumented() {
    let x = maybe().unwrap();
    if x == 0.5 {
        unsafe { touch(x) }
    }
}
";
    // Place the snippet in an st-tensor path so all four rules apply.
    let findings = st_lint::lint_source("crates/st-tensor/src/planted.rs", planted, &mut allow);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule.name()).collect();
    for rule in ["panic-in-lib", "missing-safety", "float-eq", "missing-docs"] {
        assert!(rules.contains(&rule), "{rule} not caught in {rules:?}");
    }
}

/// One planted defect per v2 rule across a synthetic multi-crate workspace;
/// each rule fires exactly once and nothing else fires at all (the
/// zero-false-positive half of the contract — the clean half is
/// `shipped_workspace_is_lint_clean` above).
#[test]
fn planted_v2_defects_are_caught_with_exact_counts() {
    let det = "\
//! Planted determinism defects.
use std::collections::HashMap;

/// FMA breaks cross-target bit identity.
pub fn fused(x: f64) -> f64 {
    x.mul_add(2.0, 1.0)
}

/// Transcendental outside `st-tensor::mathfn`.
pub fn softplus(x: f64) -> f64 {
    (1.0 + x.exp()).ln_1p()
}

/// Hash iteration feeding a float accumulator.
pub fn hash_sum(m: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0f64;
    for v in m.values() {
        acc += *v;
    }
    acc
}

/// Non-total float comparator in a sort key.
pub fn rank(v: &mut [(u32, f64)]) {
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
}
";
    let wallclock = "\
//! Planted wallclock defect in a decode-path module.
use std::time::Instant;

/// Elapsed time leaks into a score.
pub fn decode_score(base: f64) -> f64 {
    let t0 = Instant::now();
    let dt = t0.elapsed();
    base * dt.as_secs_f64()
}
";
    let conc = "\
//! Planted intra-file concurrency defects.
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

/// Guard obtained by panicking on poison.
pub fn peek(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

/// Relaxed load gating a branch.
pub fn gate(flag: &AtomicBool) -> u32 {
    if flag.load(Ordering::Relaxed) {
        1
    } else {
        0
    }
}

/// Unbounded queue in a lib path.
pub fn chan() -> (mpsc::Sender<u32>, mpsc::Receiver<u32>) {
    mpsc::channel()
}
";
    // Cross-crate lock-order cycle: `aa` takes A then B directly; `bb`
    // takes B then reaches A through a callee in a third crate `cc`.
    let aa = "\
//! Lock definitions and the A-then-B leg.
use std::sync::Mutex;

/// Lock A.
pub static A: Mutex<u32> = Mutex::new(0);
/// Lock B.
pub static B: Mutex<u32> = Mutex::new(0);

/// Acquires A, then B, holding both.
pub fn a_then_b() {
    let ga = A.lock().unwrap_or_else(|e| e.into_inner());
    let gb = B.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (*ga, *gb);
}
";
    let cc = "\
//! Innocent-looking helper that takes A.
/// Reads lock A.
pub fn grab_a() -> u32 {
    *aa::A.lock().unwrap_or_else(|e| e.into_inner())
}
";
    let bb = "\
//! The B-then-A leg, one call deep.
/// Acquires B, then A via `cc::grab_a`.
pub fn b_then_a() -> u32 {
    let gb = aa::B.lock().unwrap_or_else(|e| e.into_inner());
    let x = cc::grab_a();
    x + *gb
}
";
    let sources: Vec<(String, String)> = [
        ("crates/st-tensor/src/planted_det.rs", det),
        ("crates/st-core/src/decode_planted.rs", wallclock),
        ("crates/st-core/src/planted_conc.rs", conc),
        ("crates/aa/src/lib.rs", aa),
        ("crates/bb/src/lib.rs", bb),
        ("crates/cc/src/lib.rs", cc),
    ]
    .iter()
    .map(|(p, s)| (p.to_string(), s.to_string()))
    .collect();

    let mut allow = st_lint::Allowlist::default();
    let findings = st_lint::lint_sources(&sources, &mut allow).expect("lint runs");

    let mut counts = std::collections::BTreeMap::new();
    for f in &findings {
        *counts.entry(f.rule.name()).or_insert(0usize) += 1;
    }
    let expected: &[(&str, usize)] = &[
        ("fma-forbidden", 1),
        ("std-transcendental", 2), // exp and ln_1p in `softplus`
        ("hash-iteration-order", 1),
        ("float-sort-key", 1),
        ("wallclock-in-numeric", 1),
        ("lock-unwrap", 1),
        ("relaxed-atomic-gate", 1),
        ("unbounded-channel", 1),
        ("lock-order-cycle", 1),
        ("panic-in-lib", 1), // the same `.lock().unwrap()` line
    ];
    for &(rule, n) in expected {
        assert_eq!(
            counts.get(rule).copied().unwrap_or(0),
            n,
            "{rule}: wrong count in {findings:#?}"
        );
    }
    let total: usize = expected.iter().map(|&(_, n)| n).sum();
    assert_eq!(
        findings.len(),
        total,
        "unexpected extra findings: {findings:#?}"
    );

    let cycle = findings
        .iter()
        .find(|f| f.rule.name() == "lock-order-cycle")
        .expect("cycle finding present");
    assert!(cycle.message.contains("aa::A"), "{}", cycle.message);
    assert!(cycle.message.contains("aa::B"), "{}", cycle.message);
    assert!(
        cycle.message.contains("via `grab_a()`"),
        "{}",
        cycle.message
    );
}
