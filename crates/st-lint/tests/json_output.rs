//! `--json` report shape, pinned by the committed schema.
//!
//! The report produced by [`st_lint::json_report`] must round-trip through
//! the serializer and validate against `scripts/st-lint-findings.schema.json`.
//! The validator below implements the subset of JSON Schema the committed
//! schema uses (`type`, `const`, `required`, `properties`,
//! `additionalProperties: false`, `items`, `minimum`), so a schema edit that
//! drifts outside that subset fails loudly instead of silently passing.

use serde_json::Value;

/// Collect schema violations into `errors`; empty vector means valid.
fn validate(schema: &Value, value: &Value, at: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type").and_then(Value::as_str) {
        let ok = match ty {
            "object" => matches!(value, Value::Obj(_)),
            "array" => matches!(value, Value::Arr(_)),
            "string" => matches!(value, Value::Str(_)),
            "number" => matches!(value, Value::Num(_)),
            "integer" => matches!(value, Value::Num(n) if n.fract() == 0.0),
            "boolean" => matches!(value, Value::Bool(_)),
            "null" => matches!(value, Value::Null),
            other => {
                errors.push(format!("{at}: schema uses unsupported type '{other}'"));
                return;
            }
        };
        if !ok {
            errors.push(format!("{at}: expected type {ty}, got {value:?}"));
            return;
        }
    }
    if let Some(want) = schema.get("const") {
        if value != want {
            errors.push(format!("{at}: expected const {want:?}, got {value:?}"));
        }
    }
    if let Some(min) = schema.get("minimum").and_then(Value::as_f64) {
        match value.as_f64() {
            Some(n) if n >= min => {}
            _ => errors.push(format!("{at}: expected number >= {min}, got {value:?}")),
        }
    }
    if let Value::Obj(obj) = value {
        if let Some(Value::Arr(required)) = schema.get("required") {
            for key in required.iter().filter_map(Value::as_str) {
                if obj.get(key).is_none() {
                    errors.push(format!("{at}: missing required key '{key}'"));
                }
            }
        }
        let props = schema.get("properties");
        if let Some(Value::Obj(props)) = props {
            for (key, sub) in props.iter() {
                if let Some(v) = obj.get(key) {
                    validate(sub, v, &format!("{at}.{key}"), errors);
                }
            }
        }
        if schema.get("additionalProperties") == Some(&Value::Bool(false)) {
            for (key, _) in obj.iter() {
                let declared = matches!(props, Some(Value::Obj(p)) if p.get(key).is_some());
                if !declared {
                    errors.push(format!("{at}: undeclared key '{key}'"));
                }
            }
        }
    }
    if let (Value::Arr(items), Some(item_schema)) = (value, schema.get("items")) {
        for (i, item) in items.iter().enumerate() {
            validate(item_schema, item, &format!("{at}[{i}]"), errors);
        }
    }
}

fn load_schema() -> Value {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scripts/st-lint-findings.schema.json"
    );
    let text = std::fs::read_to_string(path).expect("schema file is committed");
    serde_json::from_str(&text).expect("schema file is valid JSON")
}

/// A report with findings from every rule family plus a stale allowlist
/// entry validates against the committed schema after a serialize/parse
/// round trip.
#[test]
fn populated_report_matches_committed_schema() {
    let sources = vec![(
        "crates/x/src/lib.rs".to_string(),
        concat!(
            "//! Doc.\n",
            "pub fn f(x: f64) -> f64 { x.mul_add(2.0, 1.0) }\n",
            "pub fn g(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
        )
        .to_string(),
    )];
    let mut allow = st_lint::Allowlist::parse(
        "float-eq | crates/never/src/gone.rs | * | waiver for deleted code\n",
    )
    .expect("allowlist parses");
    let findings = st_lint::lint_sources(&sources, &mut allow).expect("lint runs");
    assert!(
        !findings.is_empty(),
        "planted defects must produce findings"
    );
    assert_eq!(allow.stale().len(), 1, "the dangling waiver must be stale");

    let report = st_lint::json_report(&findings, &allow);
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    let parsed: Value = serde_json::from_str(&text).expect("report re-parses");

    let mut errors = Vec::new();
    validate(&load_schema(), &parsed, "$", &mut errors);
    assert!(errors.is_empty(), "schema violations: {errors:#?}");

    // counts mirror the arrays
    let count = parsed
        .get("counts")
        .and_then(|c| c.get("findings"))
        .and_then(Value::as_f64);
    assert_eq!(count, Some(findings.len() as f64));
    let stale_count = parsed
        .get("counts")
        .and_then(|c| c.get("stale_allow_entries"))
        .and_then(Value::as_f64);
    assert_eq!(stale_count, Some(1.0));
}

/// An empty report (clean workspace, no stale entries) also validates.
#[test]
fn empty_report_matches_committed_schema() {
    let allow = st_lint::Allowlist::default();
    let report = st_lint::json_report(&[], &allow);
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    let parsed: Value = serde_json::from_str(&text).expect("report re-parses");
    let mut errors = Vec::new();
    validate(&load_schema(), &parsed, "$", &mut errors);
    assert!(errors.is_empty(), "schema violations: {errors:#?}");
}

/// The validator itself rejects shape drift: a report with a wrong `schema`
/// tag, a missing key, and an undeclared key fails with one error each.
#[test]
fn validator_rejects_shape_drift() {
    let schema = load_schema();
    let bad: Value = serde_json::from_str(
        r#"{
            "schema": "not-st-lint",
            "version": 2,
            "findings": [ { "rule": "float-eq", "path": "a.rs", "line": 1 } ],
            "stale_allow_entries": [],
            "counts": { "findings": 1, "stale_allow_entries": 0, "extra": 9 }
        }"#,
    )
    .expect("test fixture parses");
    let mut errors = Vec::new();
    validate(&schema, &bad, "$", &mut errors);
    assert!(
        errors.iter().any(|e| e.contains("const")),
        "wrong schema tag: {errors:?}"
    );
    assert!(
        errors.iter().any(|e| e.contains("'message'")),
        "missing finding key: {errors:?}"
    );
    assert!(
        errors.iter().any(|e| e.contains("'extra'")),
        "undeclared counts key: {errors:?}"
    );
}
