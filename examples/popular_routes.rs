//! Popular route discovery (one of the paper's listed applications, §I and
//! future work §VI): enumerate the candidate routes between an
//! origin/destination pair with Yen's algorithm and rank them by DeepST's
//! route likelihood — the top-scored routes are the corridors drivers
//! actually use.
//!
//! ```bash
//! cargo run --release --example popular_routes
//! ```

use deepst::eval::{build_examples, train_deepst, SuiteConfig};
use deepst::roadnet::k_shortest_routes;
use deepst::sim::{CityPreset, Dataset};

fn main() {
    println!("Simulating the city and training DeepST...");
    let dataset = Dataset::generate(&CityPreset::tiny_test(), 800, 31);
    let split = dataset.default_split();
    let train = build_examples(&dataset, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 5,
        seed: 31,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&dataset, &train, None, &cfg, true);

    // Pick a frequently traveled origin/destination pair from the data.
    let trip = split
        .test
        .iter()
        .map(|&i| &dataset.trips[i])
        .max_by_key(|t| t.route.len())
        .unwrap();
    let (origin, dest_seg) = (trip.origin_segment(), trip.dest_segment());
    println!(
        "\nOD pair: segment {origin} → segment {dest_seg} ({:.1} km ground-truth route)",
        dataset.net.route_length(&trip.route) / 1000.0
    );

    // Candidate routes by travel distance.
    let candidates = k_shortest_routes(&dataset.net, origin, dest_seg, 6, &|s| {
        dataset.net.segment(s).length
    });
    println!("{} candidate routes from Yen's algorithm", candidates.len());

    // Rank them by DeepST's spatial-transition likelihood (§IV-E), using
    // the live traffic of the trip's slot.
    let slot = dataset.slot_of(trip.start_time);
    let c = model.encode_traffic(dataset.traffic_tensor(slot));
    let ctx = model.encode_context(dataset.unit_coord(&trip.dest_coord), Some(c));
    let mut ranked: Vec<(f64, &deepst::roadnet::Route)> = candidates
        .iter()
        .map(|sr| (model.score_route(&dataset.net, &sr.route, &ctx), &sr.route))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    println!("\nRoutes ranked by DeepST likelihood (higher = more popular):");
    for (rank, (score, route)) in ranked.iter().enumerate() {
        println!(
            "  #{:<2} log-likelihood {:8.2}  {:.2} km  {} segments{}",
            rank + 1,
            score,
            dataset.net.route_length(route) / 1000.0,
            route.len(),
            if route.as_slice() == trip.route.as_slice() {
                "  ← ground truth"
            } else {
                ""
            },
        );
    }

    // The likelihood must discriminate: best and worst differ.
    if ranked.len() >= 2 {
        let spread = ranked[0].0 - ranked.last().unwrap().0;
        println!("\nlikelihood spread across candidates: {spread:.2} nats");
    }
}
