//! Taxi dispatch (the paper's motivating application, §I): given the origin
//! and destination of a booked trip, predict the most likely route *under
//! the current traffic* so potential ride-sharing passengers along that
//! route can be picked up.
//!
//! The example shows the real-time-traffic effect directly: the same
//! origin/destination pair is routed under two different traffic slots, and
//! the model's route likelihoods shift with congestion.
//!
//! ```bash
//! cargo run --release --example taxi_dispatch
//! ```

use deepst::baselines::{DeepStPredictor, PredictQuery, Predictor};
use deepst::eval::{build_examples, train_deepst, SuiteConfig};
use deepst::sim::{CityPreset, Dataset};

fn main() {
    println!("Simulating the city and training DeepST...");
    let dataset = Dataset::generate(&CityPreset::tiny_test(), 800, 11);
    let split = dataset.default_split();
    let train = build_examples(&dataset, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 5,
        seed: 11,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&dataset, &train, None, &cfg, true);

    // A dispatch request: origin segment + rough destination coordinate.
    let trip = &dataset.trips[split.test[0]];
    let origin = trip.origin_segment();
    let dest = trip.dest_coord;
    println!(
        "\nDispatch request: origin segment {origin}, destination ≈ ({:.0} m, {:.0} m)",
        dest.x, dest.y
    );

    // Route the request under several different traffic slots.
    let predictor = DeepStPredictor::new(model);
    let slots: Vec<usize> = (1..dataset.num_slots())
        .step_by(dataset.num_slots() / 4)
        .take(3)
        .collect();
    let mut routes = Vec::new();
    for &slot in &slots {
        let query = PredictQuery {
            start: origin,
            dest_coord: dest,
            dest_norm: dataset.unit_coord(&dest),
            dest_segment: trip.dest_segment(),
            traffic: dataset.traffic_tensor(slot),
            slot_id: slot,
        };
        let route = predictor.predict(&dataset.net, &query);
        println!(
            "\ntraffic slot {slot}: route of {} segments, {:.2} km",
            route.len(),
            dataset.net.route_length(&route) / 1000.0
        );
        println!("  {route:?}");
        routes.push(route);
    }
    let distinct: std::collections::BTreeSet<_> = routes.iter().collect();
    println!(
        "\n{} distinct routes across {} traffic conditions — pickup candidates should be \
         searched along the predicted route for the *current* slot.",
        distinct.len(),
        slots.len()
    );

    // Likelihood scoring: rank two candidate pickup detours.
    let model = predictor.model();
    let slot = dataset.slot_of(trip.start_time);
    let c = model.encode_traffic(dataset.traffic_tensor(slot));
    let ctx = model.encode_context(dataset.unit_coord(&dest), Some(c));
    let direct = &routes[0];
    let score_direct = model.score_route(&dataset.net, direct, &ctx);
    println!("\nroute likelihood scoring (log-probability):");
    println!("  predicted route: {score_direct:.2}");
    println!(
        "  ground truth route: {:.2}",
        model.score_route(&dataset.net, &trip.route, &ctx)
    );
}
