//! Quickstart: simulate a small city, train DeepST for a few epochs, and
//! predict the most likely route for a held-out trip.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use deepst::baselines::{DeepStPredictor, PredictQuery, Predictor};
use deepst::eval::{accuracy, build_examples, recall_at_n, train_deepst, SuiteConfig};
use deepst::sim::{CityPreset, Dataset};

fn main() {
    // 1. Simulate a city with trips driven by habit + destination + traffic.
    println!("Simulating Tinyville...");
    let dataset = Dataset::generate(&CityPreset::tiny_test(), 600, 42);
    println!(
        "  {} road segments, {} trips, {} traffic slots",
        dataset.net.num_segments(),
        dataset.trips.len(),
        dataset.num_slots()
    );

    // 2. Time-ordered train/val/test split, as in the paper (§V-A).
    let split = dataset.default_split();
    let train = build_examples(&dataset, &split.train);
    let val = build_examples(&dataset, &split.val);

    // 3. Train DeepST (Algorithm 1: ELBO maximization with Adam).
    println!("Training DeepST on {} trips...", train.len());
    let cfg = SuiteConfig {
        deepst_epochs: 5,
        seed: 42,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&dataset, &train, Some(&val), &cfg, true);
    let predictor = DeepStPredictor::new(model);

    // 4. Predict the most likely route for a few held-out trips.
    let mut rec_sum = 0.0;
    let mut acc_sum = 0.0;
    let n = 25.min(split.test.len());
    for &i in split.test.iter().take(n) {
        let trip = &dataset.trips[i];
        let slot = dataset.slot_of(trip.start_time);
        let query = PredictQuery {
            start: trip.origin_segment(),
            dest_coord: trip.dest_coord,
            dest_norm: dataset.unit_coord(&trip.dest_coord),
            dest_segment: trip.dest_segment(),
            traffic: dataset.traffic_tensor(slot),
            slot_id: slot,
        };
        let predicted = predictor.predict(&dataset.net, &query);
        rec_sum += recall_at_n(&trip.route, &predicted);
        acc_sum += accuracy(&trip.route, &predicted);
    }
    println!("Held-out performance over {n} trips:");
    println!("  recall@n = {:.3}", rec_sum / n as f64);
    println!("  accuracy = {:.3}", acc_sum / n as f64);

    // 5. Show one prediction in detail.
    let trip = &dataset.trips[split.test[0]];
    let slot = dataset.slot_of(trip.start_time);
    let query = PredictQuery {
        start: trip.origin_segment(),
        dest_coord: trip.dest_coord,
        dest_norm: dataset.unit_coord(&trip.dest_coord),
        dest_segment: trip.dest_segment(),
        traffic: dataset.traffic_tensor(slot),
        slot_id: slot,
    };
    let predicted = predictor.predict(&dataset.net, &query);
    println!("\nExample trip:");
    println!("  truth:     {:?}", trip.route);
    println!("  predicted: {predicted:?}");
}
