//! Traffic explorer: visualize the simulator's time-varying congestion and
//! the observed traffic tensors DeepST conditions on — including how the
//! inferred latent `c` separates congested from free-flowing slots.
//!
//! ```bash
//! cargo run --release --example traffic_explorer
//! ```

use deepst::eval::report::format_heatmap;
use deepst::eval::{build_examples, train_deepst, SuiteConfig};
use deepst::sim::{CityPreset, Dataset, TrafficModel, DAY_SECS};

fn main() {
    let dataset = Dataset::generate(&CityPreset::tiny_test(), 600, 5);

    // 1. Ground-truth congestion at two different times of day.
    println!("Ground-truth mean speed over the network:");
    for &hour in &[3.0f64, 8.0] {
        let t = hour * 3600.0;
        let mean_speed: f64 = (0..dataset.net.num_segments())
            .map(|s| dataset.traffic.speed(&dataset.net, s, t))
            .sum::<f64>()
            / dataset.net.num_segments() as f64;
        println!(
            "  {hour:4.0}:00  {mean_speed:.1} m/s (diurnal factor {:.2})",
            TrafficModel::diurnal_factor(t)
        );
    }

    // 2. Observed traffic tensors for two slots (what the CNN sees).
    let slots = [
        dataset.slot_of(8.5 * 3600.0),
        dataset.slot_of(DAY_SECS + 3.0 * 3600.0),
    ];
    for slot in slots {
        let tensor = dataset.traffic_tensor(slot);
        let grid: Vec<f64> = tensor.iter().map(|&v| v as f64).collect();
        let observed = tensor.iter().filter(|&&v| v > 0.0).count();
        println!(
            "\nObserved traffic tensor, slot {slot} ({observed}/{} cells observed):",
            tensor.len()
        );
        println!(
            "{}",
            format_heatmap(&grid, dataset.grid.width, dataset.grid.height)
        );
    }

    // 3. Train DeepST and check that the traffic latent c distinguishes
    //    slots with different congestion.
    println!("Training DeepST to inspect the traffic latent c...");
    let split = dataset.default_split();
    let train = build_examples(&dataset, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 4,
        seed: 5,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&dataset, &train, None, &cfg, true);
    let c1 = model.encode_traffic(dataset.traffic_tensor(slots[0]));
    let c2 = model.encode_traffic(dataset.traffic_tensor(slots[1]));
    let diff = c1.max_abs_diff(&c2);
    println!(
        "  ‖c(rush hour) − c(night)‖∞ = {diff:.4} (nonzero ⇒ the posterior reacts to traffic)"
    );
}
