//! Route recovery from sparse trajectories (§V-C): downsample a dense GPS
//! trajectory to one fix every few minutes, then reconstruct the traveled
//! route with STRS (Markov spatial prior) and STRS+ (DeepST spatial module).
//!
//! ```bash
//! cargo run --release --example route_recovery
//! ```

use deepst::eval::{accuracy, build_examples, train_deepst, SuiteConfig};
use deepst::recovery::{DeepStSpatial, MarkovSpatial, Recovery, RecoveryConfig, TravelTimeModel};
use deepst::sim::{downsample, CityPreset, Dataset};

fn main() {
    println!("Simulating the city and training DeepST...");
    let dataset = Dataset::generate(&CityPreset::tiny_test(), 800, 23);
    let split = dataset.default_split();
    let train = build_examples(&dataset, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 5,
        seed: 23,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&dataset, &train, None, &cfg, true);

    // Fit the STRS components from the training trips.
    let ttime = TravelTimeModel::fit(
        &dataset.net,
        split
            .train
            .iter()
            .map(|&i| (&dataset.trips[i].route, dataset.trips[i].duration())),
    );
    let markov = MarkovSpatial::fit(split.train.iter().map(|&i| &dataset.trips[i].route));
    let deep_spatial = DeepStSpatial::new(&model);
    let rcfg = RecoveryConfig::default();
    let strs = Recovery::new(&dataset.net, &ttime, &markov, rcfg.clone());
    let strs_plus = Recovery::new(&dataset.net, &ttime, &deep_spatial, rcfg);

    // Take a held-out trip, sparsify its GPS trace, and recover.
    for &rate_min in &[2.0f64, 5.0] {
        let mut a1 = 0.0;
        let mut a2 = 0.0;
        let mut n = 0;
        for &i in split.test.iter().take(40) {
            let trip = &dataset.trips[i];
            let sparse = downsample(&trip.gps, rate_min * 60.0);
            if sparse.len() < 2 {
                continue;
            }
            let dest = dataset.unit_coord(&trip.dest_coord);
            let slot = dataset.slot_of(trip.start_time);
            let tensor = dataset.traffic_tensor(slot);
            let (Some(r1), Some(r2)) = (
                strs.recover(&sparse, dest, tensor, slot),
                strs_plus.recover(&sparse, dest, tensor, slot),
            ) else {
                continue;
            };
            a1 += accuracy(&trip.route, &r1);
            a2 += accuracy(&trip.route, &r2);
            n += 1;
        }
        println!(
            "\nsampling rate {rate_min:.0} min ({n} trajectories):\n  STRS  accuracy = {:.3}\n  STRS+ accuracy = {:.3}",
            a1 / n as f64,
            a2 / n as f64
        );
    }

    // Show one recovery in detail.
    let trip = &dataset.trips[split.test[1]];
    let sparse = downsample(&trip.gps, 180.0);
    println!(
        "\nExample: trip with {} GPS fixes downsampled to {} fixes",
        trip.gps.len(),
        sparse.len()
    );
    let dest = dataset.unit_coord(&trip.dest_coord);
    let slot = dataset.slot_of(trip.start_time);
    if let Some(rec) = strs_plus.recover(&sparse, dest, dataset.traffic_tensor(slot), slot) {
        println!("  truth:     {:?}", trip.route);
        println!("  recovered: {rec:?}");
        println!("  accuracy:  {:.3}", accuracy(&trip.route, &rec));

        // Render the comparison to an SVG map.
        use deepst::eval::{RouteLayer, SvgScene};
        let mut scene = SvgScene::new(&dataset.net, 600.0);
        scene.add_route(&RouteLayer {
            route: &trip.route,
            color: "#1f77b4",
            label: "ground truth",
        });
        scene.add_route(&RouteLayer {
            route: &rec,
            color: "#d62728",
            label: "recovered (STRS+)",
        });
        scene.add_points(sparse.iter().map(|gp| gp.p), "#2ca02c");
        scene.add_marker(&trip.dest_coord, "#9467bd", 6.0);
        let path = std::env::temp_dir().join("deepst_recovery.svg");
        scene.save(&path).expect("write SVG");
        println!("  map saved to {}", path.display());
    }
}
