#!/usr/bin/env python3
"""CI gate: every scale in a BENCH_scale.json must stay under an RSS budget.

Usage: check_peak_rss.py <BENCH_scale.json> <budget-MiB>

The budget catches an accidental whole-corpus materialization (holding
100k trips x ~50 GPS points in memory blows through any sane budget
immediately); it is deliberately loose versus the reference host's
reading to absorb allocator and runner variance.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path, budget_mib = sys.argv[1], int(sys.argv[2])
    budget = budget_mib * 1024 * 1024
    with open(path) as f:
        report = json.load(f)
    ok = True
    for scale in report["scales"]:
        peak = scale["peak_rss_bytes"]
        if peak is None:
            print(f"scale {scale['target_segments']}: peak_rss_bytes missing "
                  "(non-Linux runner?)")
            ok = False
            continue
        verdict = "ok" if peak < budget else f"EXCEEDS {budget_mib} MiB budget"
        print(f"scale {scale['target_segments']}: peak RSS "
              f"{peak / 2**20:.1f} MiB — {verdict}")
        ok = ok and peak < budget
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
