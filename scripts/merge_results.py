#!/usr/bin/env python3
"""Merge per-city result directories into one.

`run_all` can be sharded per city (DEEPST_CITY=Rivertown / Northport with
distinct DEEPST_RESULTS_DIR) to use multiple cores; this script merges the
city-keyed JSON artifacts back into a single `results/` directory.

Usage: scripts/merge_results.py results results_north
"""
import json
import pathlib
import sys


def main() -> None:
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    target = pathlib.Path(sys.argv[1])
    sources = [pathlib.Path(p) for p in sys.argv[2:]]
    target.mkdir(parents=True, exist_ok=True)
    names = set()
    for src in [target, *sources]:
        if src.exists():
            names.update(p.name for p in src.glob("*.json"))
    for name in sorted(names):
        merged = None
        for src in [target, *sources]:
            path = src / name
            if not path.exists():
                continue
            data = json.loads(path.read_text())
            if isinstance(data, dict):
                merged = {**(merged or {}), **data}
            else:
                # non-city-keyed artifacts (table6/fig8 lists): last wins
                merged = data
        (target / name).write_text(json.dumps(merged, indent=2))
        print(f"merged {name}")


if __name__ == "__main__":
    main()
