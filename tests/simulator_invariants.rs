//! Property-based integration tests over the simulator and road network:
//! invariants that must hold for any seed.

use deepst::roadnet::{grid_city, k_shortest_routes, shortest_route, GridConfig, SegmentId};
use deepst::sim::{downsample, CityPreset, Dataset};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed yields a strongly connected city with valid trips whose GPS
    /// stays near the route.
    #[test]
    fn datasets_are_well_formed(seed in 0u64..500) {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 40, seed);
        prop_assert!(ds.trips.len() >= 20, "only {} trips", ds.trips.len());
        for trip in &ds.trips {
            prop_assert!(ds.net.is_valid_route(&trip.route));
            prop_assert!(trip.end_time > trip.start_time);
            prop_assert!(!trip.gps.is_empty());
            // timestamps monotone
            for w in trip.gps.windows(2) {
                prop_assert!(w[1].t >= w[0].t);
            }
            // GPS within plausible distance of the route (6σ of noise + block)
            for gp in trip.gps.iter().step_by(5) {
                let dmin = trip
                    .route
                    .iter()
                    .map(|&s| ds.net.dist_to_segment(&gp.p, s))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(dmin < 200.0, "GPS point {dmin:.0}m from route");
            }
        }
    }

    /// Downsampling never increases point count and preserves endpoints.
    #[test]
    fn downsample_invariants(seed in 0u64..500, period in 10.0f64..600.0) {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 10, seed);
        for trip in &ds.trips {
            let sparse = downsample(&trip.gps, period);
            prop_assert!(sparse.len() <= trip.gps.len());
            prop_assert!(!sparse.is_empty());
            prop_assert_eq!(sparse[0].t.to_bits(), trip.gps[0].t.to_bits());
            let last = sparse.last().unwrap();
            let orig_last = trip.gps.last().unwrap();
            prop_assert_eq!(last.t.to_bits(), orig_last.t.to_bits());
        }
    }

    /// Dijkstra's result is optimal against any k-shortest enumeration.
    #[test]
    fn dijkstra_optimal_vs_yen(seed in 0u64..200, src in 0usize..40, dst in 0usize..40) {
        let net = grid_city(&GridConfig::small_test(), seed);
        let src = src % net.num_segments();
        let dst = dst % net.num_segments();
        let cost = |s: SegmentId| net.segment(s).length;
        if let Some((_, best)) = shortest_route(&net, src, dst, &cost) {
            let routes = k_shortest_routes(&net, src, dst, 4, &cost);
            prop_assert!(!routes.is_empty());
            for sr in &routes {
                prop_assert!(sr.cost + 1e-9 >= best, "Yen found cheaper: {} < {best}", sr.cost);
                prop_assert!(net.is_valid_route(&sr.route));
            }
            prop_assert!((routes[0].cost - best).abs() < 1e-9);
        }
    }

    /// Traffic tensors are bounded and finite for every slot.
    #[test]
    fn traffic_tensors_bounded(seed in 0u64..300) {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 30, seed);
        for slot in 0..ds.num_slots() {
            for &v in ds.traffic_tensor(slot) {
                prop_assert!(v.is_finite());
                prop_assert!((0.0..=2.0).contains(&v), "tensor value {v}");
            }
        }
    }

    /// Splits partition the trips in time order for any fractions.
    #[test]
    fn splits_partition(seed in 0u64..300, train_frac in 0.2f64..0.7, val_frac in 0.05f64..0.25) {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 40, seed);
        let sp = ds.split(train_frac, val_frac);
        let total = sp.train.len() + sp.val.len() + sp.test.len();
        prop_assert_eq!(total, ds.trips.len());
        let mut all: Vec<usize> = sp.train.iter().chain(&sp.val).chain(&sp.test).copied().collect();
        all.sort_unstable();
        prop_assert!(all.windows(2).all(|w| w[1] == w[0] + 1));
    }
}
