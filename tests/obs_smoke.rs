//! Observability smoke test: a short traced train + predict + eval run must
//! produce a balanced, schema-valid JSONL trace.
//!
//! Everything lives in ONE test function: `st-obs` state (recording flag,
//! span buffer, metric registry) is process-global, so concurrent tests in
//! this binary would interleave their spans.

use deepst::baselines::{DeepStPredictor, Predictor};
use deepst::eval::{build_examples, evaluate_methods, train_deepst, SuiteConfig, DISTANCE_BUCKETS};
use deepst::obs;
use deepst::sim::{CityPreset, Dataset};

#[test]
fn traced_pipeline_emits_valid_balanced_jsonl() {
    obs::start_recording();

    // ---- train (tiny but real: spans for fit/epoch/batch, loss gauges) ----
    let ds = Dataset::generate(&CityPreset::tiny_test(), 200, 99);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 2,
        seed: 99,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&ds, &train, None, &cfg, true);

    // ---- predict (route spans + termination counters) ----
    let trip = &ds.trips[split.test[0]];
    let slot = ds.slot_of(trip.start_time);
    let ctx = model.encode_context(
        ds.unit_coord(&trip.dest_coord),
        Some(model.encode_traffic(ds.traffic_tensor(slot))),
    );
    let route = model.predict_route(&ds.net, trip.origin_segment(), &trip.dest_coord, &ctx, None);
    assert!(ds.net.is_valid_route(&route));

    // ---- eval (beam decode spans + bucket-drop accounting) ----
    let methods: Vec<Box<dyn Predictor>> = vec![Box::new(DeepStPredictor::new(model))];
    let summary = evaluate_methods(&ds, &methods, &split.test, &DISTANCE_BUCKETS, Some(6));
    assert_eq!(summary.evaluated, 6);

    obs::stop_recording();
    let trace = obs::drain();

    // Span accounting must balance at quiescence and nothing may be dropped
    // in a run this small.
    assert_eq!(trace.spans_opened, trace.spans_closed, "span imbalance");
    assert_eq!(trace.spans_dropped, 0);
    assert!(!trace.spans.is_empty());

    let names: std::collections::BTreeSet<&str> =
        trace.spans.iter().map(|s| s.name.as_ref()).collect();
    for expected in [
        "train/fit",
        "train/epoch",
        "train/batch",
        "train/shard",
        "predict/route",
        "decode/beam",
        "eval/methods",
    ] {
        assert!(names.contains(expected), "missing span {expected:?}");
    }

    // The training path must have exported its gauges.
    let metric_names: Vec<&str> = trace
        .metrics
        .iter()
        .map(|m| match m {
            obs::MetricSnapshot::Counter { name, .. } => name.as_str(),
            obs::MetricSnapshot::Gauge { name, .. } => name.as_str(),
            obs::MetricSnapshot::Histogram { name, .. } => name.as_str(),
        })
        .collect();
    assert!(metric_names.contains(&"train.batch_loss"));
    assert!(metric_names.contains(&"train.grad_norm"));
    assert!(metric_names.contains(&"predict.step_tape_peak_bytes"));

    // ---- write, read back, validate against the schema ----
    let path = std::env::temp_dir().join(format!("st_obs_smoke_{}.jsonl", std::process::id()));
    let run_meta = serde_json::json!({"bin": "obs_smoke_test"});
    obs::write_jsonl(&path, &run_meta, &trace).expect("write trace");
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let summary = obs::validate_jsonl(&text).expect("trace must validate");
    assert_eq!(summary.opened, summary.closed);
    assert_eq!(summary.spans, trace.spans.len());
    assert!(summary.gauges + summary.counters >= 3);
    let _ = std::fs::remove_file(&path);
}
