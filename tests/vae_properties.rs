//! Integration tests of the VAE machinery: ELBO decomposition, KL
//! non-negativity, proxy learning, and the Gumbel-Softmax relaxation.

use deepst::core::{DeepSt, DeepStConfig, Example, TrainConfig, Trainer};
use deepst::eval::{build_examples, train_deepst, SuiteConfig};
use deepst::sim::{CityPreset, Dataset};
use deepst::tensor::{init, Binder, Tape};

fn tiny(n: usize, seed: u64) -> Dataset {
    Dataset::generate(&CityPreset::tiny_test(), n, seed)
}

#[test]
fn elbo_terms_have_correct_signs() {
    let ds = tiny(60, 1);
    let split = ds.default_split();
    let examples = build_examples(&ds, &split.train);
    let cfg = DeepStConfig::new(
        ds.net.num_segments(),
        ds.net.max_out_degree(),
        ds.grid.height,
        ds.grid.width,
    );
    let model = DeepSt::new(cfg, 0);
    let refs: Vec<&Example> = examples.iter().take(16).collect();
    let mut rng = init::rng(0);
    let tape = Tape::new();
    let binder = Binder::new(&tape);
    let (loss, stats) = model.batch_loss(&binder, &refs, &mut rng, true);
    assert!(loss.scalar_value().is_finite());
    // route log-likelihood is a sum of log-probabilities → non-positive
    assert!(stats.route_ll <= 0.0);
    // KL divergences are non-negative (up to float noise)
    assert!(stats.kl_pi >= -1e-3, "KL(pi) = {}", stats.kl_pi);
    assert!(stats.kl_c >= -1e-3, "KL(c) = {}", stats.kl_c);
    // the ELBO equals its decomposition
    let recomposed = stats.route_ll + stats.dest_ll - stats.kl_c - 2.0 * stats.kl_pi;
    assert!(
        (stats.elbo - recomposed).abs() < 1.0,
        "ELBO {} vs decomposition {recomposed}",
        stats.elbo
    );
}

#[test]
fn eval_loss_is_deterministic() {
    let ds = tiny(60, 2);
    let split = ds.default_split();
    let examples = build_examples(&ds, &split.train);
    let cfg = DeepStConfig::new(
        ds.net.num_segments(),
        ds.net.max_out_degree(),
        ds.grid.height,
        ds.grid.width,
    );
    let model = DeepSt::new(cfg, 1);
    let mut rng1 = init::rng(10);
    let mut rng2 = init::rng(99);
    // eval mode uses posterior means — different RNGs must agree
    let l1 = model.evaluate_loss(&examples, 16, &mut rng1);
    let l2 = model.evaluate_loss(&examples, 16, &mut rng2);
    assert!((l1 - l2).abs() < 1e-5, "{l1} vs {l2}");
}

#[test]
fn training_improves_validation_elbo() {
    let ds = tiny(250, 3);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let val = build_examples(&ds, &split.val);
    let cfg = DeepStConfig::new(
        ds.net.num_segments(),
        ds.net.max_out_degree(),
        ds.grid.height,
        ds.grid.width,
    );
    let model = DeepSt::new(cfg, 2);
    let mut rng = init::rng(3);
    let before = model.evaluate_loss(&val, 32, &mut rng);
    let tc = TrainConfig {
        epochs: 3,
        batch_size: 32,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(model, tc);
    let hist = trainer.fit(&train, None, &mut rng);
    assert!(!hist.is_empty());
    let after = trainer.model.evaluate_loss(&val, 32, &mut rng);
    assert!(
        after < before,
        "validation loss did not improve: {before} -> {after}"
    );
}

#[test]
fn destination_proxies_cover_hotspots() {
    // After training, every trip destination should have a proxy mean
    // nearby (in normalized coordinates) — the adjoint generative model
    // must explain the observed destinations.
    let ds = tiny(300, 4);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 4,
        seed: 4,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&ds, &train, None, &cfg, true);
    // extract proxy means from state
    use deepst::nn::Module;
    let state = model.state();
    let m_proxy = state
        .iter()
        .find(|(n, _)| n == "deepst.m_proxy")
        .map(|(_, v)| v.clone())
        .expect("m_proxy in state");
    let k = m_proxy.shape()[0];
    let mut worst = 0.0f32;
    for e in train.iter().take(100) {
        let mut best = f32::INFINITY;
        for p in 0..k {
            let dx = m_proxy.at2(p, 0) - e.dest[0];
            let dy = m_proxy.at2(p, 1) - e.dest[1];
            best = best.min((dx * dx + dy * dy).sqrt());
        }
        worst = worst.max(best);
    }
    assert!(
        worst < 0.5,
        "some destination is {worst} (normalized) away from every proxy"
    );
}

#[test]
fn gumbel_temperature_sharpens_assignments() {
    // The π used in training is a Gumbel-Softmax sample; at evaluation the
    // posterior q(π|x) must be a proper distribution over K proxies.
    let ds = tiny(100, 5);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 2,
        seed: 5,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&ds, &train, None, &cfg, true);
    let (pi, fx) = model.encode_dest([0.3, 0.7]);
    let sum: f32 = pi.data().iter().sum();
    assert!((sum - 1.0).abs() < 1e-4);
    assert!(pi.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    assert!(fx.all_finite());
    // nearby destinations share similar representations (statistical
    // strength sharing, §IV-C)
    let (_, fx_near) = model.encode_dest([0.31, 0.71]);
    let (_, fx_far) = model.encode_dest([0.9, 0.1]);
    let d_near = fx.max_abs_diff(&fx_near);
    let d_far = fx.max_abs_diff(&fx_far);
    assert!(
        d_near <= d_far + 1e-6,
        "nearby destination representation ({d_near}) further than distant one ({d_far})"
    );
}
