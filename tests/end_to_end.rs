//! End-to-end integration tests: simulate → train → predict across crates.

use deepst::baselines::{DeepStPredictor, Mmi, PredictQuery, Predictor, Wsp};
use deepst::eval::{accuracy, build_examples, recall_at_n, train_deepst, SuiteConfig};
use deepst::sim::{CityPreset, Dataset};

fn tiny(n: usize, seed: u64) -> Dataset {
    Dataset::generate(&CityPreset::tiny_test(), n, seed)
}

fn make_query<'a>(ds: &'a Dataset, i: usize) -> PredictQuery<'a> {
    let trip = &ds.trips[i];
    let slot = ds.slot_of(trip.start_time);
    PredictQuery {
        start: trip.origin_segment(),
        dest_coord: trip.dest_coord,
        dest_norm: ds.unit_coord(&trip.dest_coord),
        dest_segment: trip.dest_segment(),
        traffic: ds.traffic_tensor(slot),
        slot_id: slot,
    }
}

#[test]
fn deepst_trains_and_predicts_valid_routes() {
    let ds = tiny(300, 1);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 3,
        seed: 1,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&ds, &train, None, &cfg, true);
    let predictor = DeepStPredictor::new(model);
    for &i in split.test.iter().take(15) {
        let q = make_query(&ds, i);
        let route = predictor.predict(&ds.net, &q);
        assert!(ds.net.is_valid_route(&route), "invalid predicted route");
        assert_eq!(route[0], q.start);
        assert!(route.len() <= 150);
    }
}

#[test]
fn deepst_beats_destination_blind_markov() {
    // The decisive capability test: with destinations concentrated at
    // hotspots, a destination-aware model must out-predict a first-order
    // Markov chain.
    let ds = tiny(800, 2);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 8,
        seed: 2,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&ds, &train, None, &cfg, true);
    let deepst = DeepStPredictor::new(model);
    let routes: Vec<_> = train.iter().map(|e| e.route.clone()).collect();
    let mmi = Mmi::fit(&ds.net, routes.iter());

    let mut d_acc = 0.0;
    let mut m_acc = 0.0;
    let n = 40.min(split.test.len());
    for &i in split.test.iter().take(n) {
        let q = make_query(&ds, i);
        let truth = &ds.trips[i].route;
        d_acc += accuracy(truth, &deepst.predict(&ds.net, &q));
        m_acc += accuracy(truth, &mmi.predict(&ds.net, &q));
    }
    assert!(
        d_acc > m_acc,
        "DeepST ({:.3}) did not beat MMI ({:.3})",
        d_acc / n as f64,
        m_acc / n as f64
    );
}

#[test]
fn wsp_produces_connected_routes_to_exact_destination() {
    let ds = tiny(200, 3);
    let split = ds.default_split();
    let wsp = Wsp::fit(
        &ds.net,
        split
            .train
            .iter()
            .map(|&i| (&ds.trips[i].route, ds.trips[i].duration())),
    );
    for &i in split.test.iter().take(20) {
        let q = make_query(&ds, i);
        let route = wsp.predict(&ds.net, &q);
        assert!(ds.net.is_valid_route(&route));
        assert_eq!(*route.last().unwrap(), q.dest_segment);
    }
}

#[test]
fn metrics_consistent_on_predictions() {
    let ds = tiny(200, 4);
    let split = ds.default_split();
    let routes: Vec<_> = split
        .train
        .iter()
        .map(|&i| ds.trips[i].route.clone())
        .collect();
    let mmi = Mmi::fit(&ds.net, routes.iter());
    for &i in split.test.iter().take(20) {
        let q = make_query(&ds, i);
        let truth = &ds.trips[i].route;
        let pred = mmi.predict(&ds.net, &q);
        let r = recall_at_n(truth, &pred);
        let a = accuracy(truth, &pred);
        assert!((0.0..=1.0).contains(&r));
        assert!((0.0..=1.0).contains(&a));
        // the prediction always starts on the true first segment, so both
        // metrics are strictly positive
        assert!(r > 0.0 && a > 0.0);
        // self-comparison is perfect
        assert_eq!(recall_at_n(truth, truth), 1.0);
        assert_eq!(accuracy(truth, truth), 1.0);
    }
}

#[test]
fn deepst_c_trains_without_traffic_tensors() {
    let ds = tiny(200, 5);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 2,
        seed: 5,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&ds, &train, None, &cfg, false);
    assert!(!model.cfg.use_traffic);
    let predictor = DeepStPredictor::new(model);
    assert_eq!(predictor.name(), "DeepST-C");
    let q = make_query(&ds, split.test[0]);
    let route = predictor.predict(&ds.net, &q);
    assert!(ds.net.is_valid_route(&route));
}
