//! Integration tests of the route-recovery pipeline (map matching +
//! candidate generation + STRS scoring).

use deepst::eval::{accuracy, build_examples, train_deepst, SuiteConfig};
use deepst::mapmatch::{MapMatcher, MatchConfig};
use deepst::recovery::{DeepStSpatial, MarkovSpatial, Recovery, RecoveryConfig, TravelTimeModel};
use deepst::sim::{downsample, CityPreset, Dataset};

fn setup() -> (Dataset, TravelTimeModel, MarkovSpatial) {
    let ds = Dataset::generate(&CityPreset::tiny_test(), 300, 17);
    let split = ds.default_split();
    let ttime = TravelTimeModel::fit(
        &ds.net,
        split
            .train
            .iter()
            .map(|&i| (&ds.trips[i].route, ds.trips[i].duration())),
    );
    let markov = MarkovSpatial::fit(split.train.iter().map(|&i| &ds.trips[i].route));
    (ds, ttime, markov)
}

#[test]
fn recovery_accuracy_degrades_gracefully_with_sparsity() {
    let (ds, ttime, markov) = setup();
    let strs = Recovery::new(&ds.net, &ttime, &markov, RecoveryConfig::default());
    let split = ds.default_split();
    let mut acc_by_rate = Vec::new();
    for rate in [30.0f64, 300.0] {
        let mut total = 0.0;
        let mut n = 0;
        for &i in split.test.iter().take(25) {
            let trip = &ds.trips[i];
            let sparse = downsample(&trip.gps, rate);
            if sparse.len() < 2 {
                continue;
            }
            let Some(rec) = strs.recover(&sparse, [0.5, 0.5], &[], 0) else {
                continue;
            };
            assert!(ds.net.is_valid_route(&rec));
            total += accuracy(&trip.route, &rec);
            n += 1;
        }
        assert!(n >= 10, "too few recoveries at rate {rate}");
        acc_by_rate.push(total / n as f64);
    }
    // Dense sampling must be at least as accurate as sparse sampling.
    assert!(
        acc_by_rate[0] + 0.02 >= acc_by_rate[1],
        "denser sampling worse: {acc_by_rate:?}"
    );
    // And dense recovery should be quite good in absolute terms.
    assert!(
        acc_by_rate[0] > 0.7,
        "dense recovery too weak: {acc_by_rate:?}"
    );
}

#[test]
fn strs_plus_uses_deepst_scores() {
    let (ds, ttime, markov) = setup();
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = SuiteConfig {
        deepst_epochs: 3,
        seed: 17,
        ..SuiteConfig::default()
    };
    let model = train_deepst(&ds, &train, None, &cfg, true);
    let deep = DeepStSpatial::new(&model);
    let rcfg = RecoveryConfig::default();
    let strs = Recovery::new(&ds.net, &ttime, &markov, rcfg.clone());
    let strsp = Recovery::new(&ds.net, &ttime, &deep, rcfg);
    let mut recovered = 0;
    for &i in split.test.iter().take(15) {
        let trip = &ds.trips[i];
        let sparse = downsample(&trip.gps, 120.0);
        if sparse.len() < 2 {
            continue;
        }
        let slot = ds.slot_of(trip.start_time);
        let dest = ds.unit_coord(&trip.dest_coord);
        let tensor = ds.traffic_tensor(slot);
        let a = strs.recover(&sparse, dest, tensor, slot);
        let b = strsp.recover(&sparse, dest, tensor, slot);
        if let (Some(a), Some(b)) = (a, b) {
            assert!(ds.net.is_valid_route(&a));
            assert!(ds.net.is_valid_route(&b));
            recovered += 1;
        }
    }
    assert!(recovered >= 10, "recovery pipeline broke: {recovered}");
}

#[test]
fn map_matching_feeds_recovery_consistently() {
    let (ds, _, _) = setup();
    let matcher = MapMatcher::new(&ds.net, MatchConfig::default());
    let trip = &ds.trips[0];
    let sparse = downsample(&trip.gps, 60.0);
    let anchors = matcher.match_points(&sparse).expect("match failed");
    assert_eq!(anchors.len(), sparse.len());
    // every anchor must be near its GPS fix
    for (gp, &seg) in sparse.iter().zip(&anchors) {
        let d = ds.net.dist_to_segment(&gp.p, seg);
        assert!(d < 200.0, "anchor {seg} is {d}m from its fix");
    }
}

#[test]
fn gap_recovery_prefers_time_consistent_candidates() {
    let (ds, ttime, markov) = setup();
    let strs = Recovery::new(&ds.net, &ttime, &markov, RecoveryConfig::default());
    // pick a trip and recover its whole span as one gap with the TRUE time;
    // the recovered route's expected time must be near the observed time
    let trip = ds.trips.iter().find(|t| t.route.len() >= 6).unwrap();
    let (from, to) = (trip.route[0], *trip.route.last().unwrap());
    let t_obs = trip.duration();
    let rec = strs
        .recover_gap(from, to, t_obs, [0.5, 0.5], &[], 0)
        .unwrap();
    let t_exp: f64 = rec.iter().map(|&s| ttime.mean(s)).sum();
    assert!(
        (t_exp - t_obs).abs() / t_obs < 1.0,
        "recovered route time {t_exp:.0}s far from observed {t_obs:.0}s"
    );
}
